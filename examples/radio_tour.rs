//! Tour of the FM physical layer: program audio + SONIC data + RDS share
//! one multiplex, transmitted at several RSSI levels.
//!
//! Shows what makes SONIC practical: the data rides the ordinary mono
//! channel while RDS keeps carrying station metadata, and reception quality
//! degrades exactly the way a car radio does.
//!
//! Run with: `cargo run --release --example radio_tour`

use sonic::core::link;
use sonic::dsp::goertzel;
use sonic::modem::profile::Profile;
use sonic::radio::rds::{decode_groups, encode_group, Group};
use sonic::radio::stack::FmLink;
use sonic::sim::linksim::test_frames;

fn main() {
    let profile = Profile::sonic_10k();
    println!("== FM radio tour: music + SONIC data + RDS on one carrier ==");

    // "Program audio": a 440 Hz tone standing in for the music.
    let n = 6 * 44_100;
    let music: Vec<f32> = (0..n)
        .map(|i| 0.05 * (std::f64::consts::TAU * 440.0 * i as f64 / 44_100.0).sin() as f32)
        .collect();

    // SONIC data on the 9.2 kHz carrier, mixed with the music.
    let frames = test_frames(40, 1);
    let data_audio = link::modulate(&profile, &frames);
    let mut mono = music;
    let g = 0.08 / (data_audio.iter().map(|&x| x * x).sum::<f32>() / data_audio.len() as f32).sqrt();
    for (i, d) in data_audio.iter().enumerate() {
        if i < mono.len() {
            mono[i] += d * g;
        }
    }

    // RDS: the station identifies itself.
    let group = Group([0x5350, 0x0408, 0x4F4E, 0x4943]); // "SP…ONIC"
    let mut rds_bits = Vec::new();
    for _ in 0..8 {
        rds_bits.extend(encode_group(&group));
    }

    for rssi in [-70.0, -85.0, -95.0] {
        let link_ = FmLink::new(rssi, 42);
        let out = link_.transmit(&mono, Some(rds_bits.clone()));
        let (rx, stats) = link::demodulate(&profile, &out.mono);
        let groups = decode_groups(&out.rds_bits);
        let tone = goertzel::power(&out.mono[..44_100.min(out.mono.len())], 44_100.0, 440.0);
        println!(
            "RSSI {rssi:>5.0} dB | music tone {} | SONIC frames {:>2}/40 (bursts failed {}) | RDS groups {}",
            if tone > 1e-5 { "audible" } else { "buried " },
            rx.len(),
            stats.bursts_failed,
            groups.len()
        );
    }
    println!("expected: everything clean at -70; RDS (uncoded 26-bit blocks) dies first near the threshold; SONIC data holds to ~-86 thanks to its FEC; below -90 only the strongest audio tones survive");
}
