//! One national broadcast day, listener's-eye view: a down-scaled
//! country-scale scenario run (24 h × 20 000 listeners on a nine-site
//! region) through `sonic::sim::scenario`, printing the paper-style
//! tables the full 72-hour engine emits — the Figure 4a analogue (frame
//! fate by RSSI band), the Figure 5 analogue (per-listener-hour delivery
//! and quality quantiles), per-site coverage and the SMS uplink under
//! diurnal carrier congestion.
//!
//! Everything folds into constant-memory aggregates as the day streams:
//! the run below evaluates ~half a billion frame fates and retains a few
//! tens of kilobytes. Same seed ⇒ byte-identical tables, at any worker
//! count.
//!
//! Run with: `cargo run --release --example national_day`

use sonic::sim::scenario::{self, ScenarioConfig};

fn main() {
    let cfg = ScenarioConfig {
        hours: 24,
        listeners: 20_000,
        dsp_cohort_per_hour: 1,
        ..ScenarioConfig::national(0xDA7_2024)
    };
    println!(
        "== national day: {} h x {} listeners, {} sites, {} carousel pages ==",
        cfg.hours,
        cfg.listeners,
        cfg.terrain.sites,
        cfg.pages,
    );
    println!(
        "   (fast path batched per burst; {} full-DSP escalation run(s)/hour)\n",
        cfg.dsp_cohort_per_hour,
    );

    let report = scenario::run(&cfg);
    print!("{}", report.text);
    println!(
        "\nengine state {} kB resident for {} listener-hours simulated",
        report.state_bytes / 1024,
        report.listener_hours,
    );
}
