//! A day in the life of a SONIC transmitter: 24 hours of hourly content
//! churn, popularity pushes, and SMS-driven requests, simulated with the
//! discrete-event core. Prints the hourly backlog and request statistics.
//!
//! The popularity push runs through the content-addressed broadcast
//! artifact cache: the first push of the day builds every page cold
//! (render → strip encode → chunk → OFDM), the next hour's push reuses
//! unchanged pages verbatim and strip-delta rebuilds the changed ones —
//! both pushes are timed so the cache win is visible from the quickstart.
//!
//! Run with: `cargo run --release --example broadcast_day`

use sonic::core::server::render::Renderer;
use sonic::core::SonicServer;
use sonic::pagegen::Corpus;
use sonic::sim::des::Simulator;
use sonic::sim::workload::{generate, PageRequest};
use sonic::sms::gateway;
use sonic::sms::geo::Coverage;
use sonic::sms::{Delivery, SmsNetwork};

#[derive(Debug)]
enum Ev {
    /// A user's SMS request arrives at the gateway.
    Request(PageRequest),
    /// Hourly tick: popularity push + stats snapshot.
    HourTick(u64),
}

fn main() {
    let corpus = Corpus::standard();
    let cities = vec![
        sonic::sms::GeoPoint::new(31.52, 74.35),
        sonic::sms::GeoPoint::new(24.86, 67.00),
        sonic::sms::GeoPoint::new(33.68, 73.05),
    ];
    let requests = generate(&corpus, 24, 12.0, &cities, 0xDA7);
    println!(
        "== broadcast day: {} SMS requests over 24 h, 3 cities, 4 transmitters ==",
        requests.len()
    );

    let renderer = Renderer::new(corpus, 0.05);
    let mut server = SonicServer::new(renderer, Coverage::pakistan_demo(), 10_000.0);
    let mut sms = SmsNetwork::typical(1);
    let mut sim: Simulator<Ev> = Simulator::new();
    for r in requests {
        sim.schedule_at(r.at_s, Ev::Request(r));
    }
    for h in 0..24u64 {
        sim.schedule_at(h as f64 * 3600.0 + 1.0, Ev::HourTick(h));
    }

    let mut acked = 0usize;
    let mut errors = 0usize;
    let mut lost = 0usize;
    let mut last_drain = 0.0f64;
    while let Some(ev) = sim.next() {
        // Drain all transmitters for the elapsed wall time.
        let dt = sim.now() - last_drain;
        last_drain = sim.now();
        for sched in server.schedulers.values_mut() {
            let _ = sched.advance(dt);
        }
        match ev.payload {
            Ev::Request(r) => {
                let hour = (r.at_s / 3600.0) as u64;
                let url = server
                    .renderer()
                    .corpus()
                    .layout(r.page, hour)
                    .url;
                let msg = gateway::format_request(&url, &r.location);
                match sms.send(&msg, r.at_s).expect("gsm7") {
                    Delivery::Lost => lost += 1,
                    Delivery::Delivered { at, .. } => {
                        let reply = server.handle_sms(&msg, at);
                        if reply.starts_with("ACK") {
                            acked += 1;
                        } else {
                            errors += 1;
                        }
                    }
                }
            }
            Ev::HourTick(h) => {
                // Morning push of the most popular landing pages (§3.1),
                // repeated the following hour: the artifact cache serves
                // unchanged pages verbatim and delta-rebuilds the rest.
                if h == 6 || h == 7 {
                    let before = server.artifact_cache().stats;
                    let t = std::time::Instant::now();
                    server.push_popular(h, 5, sim.now());
                    let elapsed = t.elapsed().as_secs_f64();
                    let s = server.artifact_cache().stats;
                    println!(
                        "hour {h:>2}: popularity push (top 5) {} in {:.3} s — {} cold / {} delta / {} reused verbatim",
                        if h == 6 { "built cold" } else { "warm via artifact cache" },
                        elapsed,
                        s.misses - before.misses,
                        s.delta_hits - before.delta_hits,
                        s.full_hits - before.full_hits,
                    );
                }
                let backlog_mb: f64 = server
                    .schedulers
                    .values()
                    .map(|s| s.backlog_bytes() as f64)
                    .sum::<f64>()
                    / 1e6;
                let sent_mb: f64 = server
                    .schedulers
                    .values()
                    .map(|s| s.transmitted_bytes as f64)
                    .sum::<f64>()
                    / 1e6;
                println!(
                    "hour {h:>2}: backlog {backlog_mb:>6.2} MB | transmitted {sent_mb:>6.2} MB | acks {acked} | errs {errors} | sms lost {lost}"
                );
            }
        }
    }
    println!("== done: {acked} pages acknowledged, {errors} gateway errors, {lost} SMS lost ==");
}
