//! A full SONIC browsing session (Figure 3 of the paper).
//!
//! User-C requests cnn-equivalent news via SMS (1); the SONIC server renders
//! it (2), schedules it on the Lahore transmitter (3), broadcasts it over
//! sound (4); user-C — and user-B, a downlink-only listener — receive it (5).
//! User-C then taps a hyperlink: cached pages load instantly, uncached ones
//! trigger a new SMS request.
//!
//! Run with: `cargo run --release --example browse_session`

use sonic::core::client::browser::ClickOutcome;
use sonic::core::link;
use sonic::core::server::render::Renderer;
use sonic::core::{SonicClient, SonicServer};
use sonic::modem::profile::Profile;
use sonic::pagegen::{Corpus, PageId};
use sonic::sms::geo::Coverage;
use sonic::sms::{gateway, Delivery, GeoPoint, SmsNetwork};

fn main() {
    let profile = Profile::sonic_10k();
    let corpus = Corpus::standard();
    let landing_url = corpus.layout(PageId { site: 0, page: 0 }, 9).url;
    println!("== SONIC browse session ==");

    // Server with four transmitters (the paper's Pakistan scenario).
    let renderer = Renderer::new(corpus, 0.08);
    let mut server = SonicServer::new(renderer, Coverage::pakistan_demo(), 10_000.0);

    // User-C: smartphone + jack cable + paid SMS, in Lahore.
    let lahore = GeoPoint::new(31.52, 74.35);
    let mut user_c = SonicClient::new(720, Some(lahore));
    // User-B: integrated FM tuner, no SMS.
    let mut user_b = SonicClient::new(720, None);

    // (1) user-C requests the page via SMS.
    let mut sms = SmsNetwork::typical(7);
    let request = user_c.compose_request(&landing_url).expect("uplink user");
    println!("user-C -> SMS: {request}");
    let now = 9.0 * 3600.0;
    let arrival = match sms.send(&request, now).expect("gsm7") {
        Delivery::Delivered { at, segments } => {
            println!("carrier delivered in {:.1} s ({segments} segment)", at - now);
            at
        }
        Delivery::Lost => {
            println!("carrier lost the SMS; retrying once");
            now + 30.0
        }
    };

    // (2)(3) server renders and schedules; replies with an ACK.
    let reply = server.handle_sms(&request, arrival);
    println!("server -> SMS: {reply}");
    let ack = gateway::parse_ack(&reply).expect("ack");
    println!("user-C tunes to {:.1} MHz, page ETA {} s", ack.freq_mhz, ack.eta_s);

    // (4) the Lahore transmitter drains its queue into link frames, which we
    // modulate into audio and play over both users' paths.
    let lahore_sched = server
        .schedulers
        .get_mut(&1)
        .expect("Lahore transmitter id 1");
    let mut frames = Vec::new();
    while lahore_sched.backlog_bytes() > 0 {
        frames.extend(lahore_sched.advance(10.0));
    }
    println!("broadcasting {} frames", frames.len());
    let audio = link::modulate(&profile, &frames);
    println!("{:.1} s of air time", audio.len() as f64 / profile.sample_rate);

    // (5) both clients hear the same broadcast (cable-quality here).
    let (rx_frames, stats) = link::demodulate(&profile, &audio);
    println!(
        "tuner output: {} bursts, {} frames recovered",
        stats.bursts_detected, stats.frames_ok
    );
    for f in rx_frames {
        user_c.receive_frame(f.clone());
        user_b.receive_frame(f);
    }
    let hour = (arrival / 3600.0) as u64;
    for (name, client) in [("user-C", &mut user_c), ("user-B", &mut user_b)] {
        for page_id in client.pending_pages() {
            let report = client.finalize_page(page_id, hour).expect("complete");
            println!(
                "{name} received {} (pixel loss {:.2}%)",
                report.url,
                report.pixel_loss * 100.0
            );
        }
    }

    // User-C taps the hero region (a hyperlink to an internal page).
    let cached = user_c.cache.get(&landing_url, hour).expect("cached");
    let hero = cached
        .clickmap
        .regions
        .iter()
        .find(|r| r.y > 100)
        .expect("hero link");
    let (dx, dy) = (
        ((hero.x + hero.w / 2) as f64 * 720.0 / 1080.0) as u16,
        ((hero.y + hero.h / 2) as f64 * 720.0 / 1080.0) as u16,
    );
    match user_c.click(&landing_url, dx, dy, hour) {
        ClickOutcome::SendRequest(next_sms) => {
            println!("user-C taps a story -> not cached -> SMS: {next_sms}");
        }
        ClickOutcome::CachedHit(url) => println!("user-C taps a story -> cached hit: {url}"),
        other => println!("user-C taps a story -> {other:?}"),
    }

    // User-B cannot request anything — downlink only.
    match user_b.click(&landing_url, dx, dy, hour) {
        ClickOutcome::UnavailableOffline(url) => {
            println!("user-B taps the same story -> offline, must wait for {url} to be broadcast");
        }
        other => println!("user-B -> {other:?}"),
    }
    println!("OK");
}
