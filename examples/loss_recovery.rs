//! Figure 1, live: a page transmitted over ~1 m of air, with real losses,
//! repaired by nearest-neighbor interpolation. Writes three PPM images
//! (received-with-holes, blacked-out, interpolated) under `target/`.
//!
//! Run with: `cargo run --release --example loss_recovery`

use sonic::core::link;
use sonic::core::page::SimplifiedPage;
use sonic::core::reassembly::Reassembler;
use sonic::image::interpolate::recover;
use sonic::image::metrics::{edge_integrity, psnr};
use sonic::image::pgm::save_ppm;
use sonic::modem::profile::Profile;
use sonic::pagegen::{Corpus, PageId};
use sonic::radio::channel::AcousticChannel;
use std::path::Path;

fn main() {
    let profile = Profile::sonic_10k();
    let corpus = Corpus::standard();
    let rendered = corpus.render(PageId { site: 1, page: 0 }, 9, 0.06);
    println!(
        "page {} at {}x{}",
        rendered.url,
        rendered.raster.width(),
        rendered.raster.height()
    );
    let page = SimplifiedPage::from_raster(
        &rendered.url,
        &rendered.raster,
        rendered.clickmap,
        9,
        24,
    );
    let frames = sonic::core::chunker::page_to_frames(&page);
    println!("{} frames to transmit", frames.len());

    // Transmit over ~1 m of air; losses are expected.
    let audio = link::modulate(&profile, &frames);
    let distance = 0.9;
    let received_audio = AcousticChannel::new(distance, 0xF1).transmit(&audio);
    let (rx_frames, stats) = link::demodulate(&profile, &received_audio);
    println!(
        "over {distance} m: {} of {} frames recovered ({} bursts failed)",
        rx_frames.len(),
        frames.len(),
        stats.bursts_failed
    );

    let mut reassembler = Reassembler::new();
    for f in rx_frames {
        reassembler.push(f);
    }
    match reassembler.take(page.page_id) {
        Some(Ok(received)) => {
            let repaired = recover(&received.raster, &received.mask);
            println!(
                "pixel loss {:.1}% -> after interpolation: PSNR {:.1} dB, edges {:.3}",
                received.mask.loss_rate() * 100.0,
                psnr(&rendered.raster, &repaired),
                edge_integrity(&rendered.raster, &repaired)
            );
            let dir = Path::new("target/loss_recovery");
            std::fs::create_dir_all(dir).expect("mkdir");
            save_ppm(&rendered.raster, &dir.join("original.ppm")).expect("write");
            save_ppm(&received.raster, &dir.join("received.ppm")).expect("write");
            save_ppm(&repaired, &dir.join("interpolated.ppm")).expect("write");
            println!("images written to {}", dir.display());
        }
        Some(Err(e)) => println!("page lost: {e} (metadata frames did not survive)"),
        None => println!("no frames of the page arrived at all"),
    }
    println!("OK");
}
