//! Quickstart: one webpage, end to end, over a perfect audio path.
//!
//! Renders a synthetic webpage, strip-encodes it into SONIC's 100-byte
//! frames, modulates them with the 10 kbps OFDM profile, "plays" the audio
//! over a cable connection, and reassembles the page on the client.
//!
//! Run with: `cargo run --release --example quickstart`

use sonic::core::link;
use sonic::core::page::SimplifiedPage;
use sonic::core::SonicClient;
use sonic::modem::profile::Profile;
use sonic::pagegen::{Corpus, PageId};

fn main() {
    let profile = Profile::sonic_10k();
    println!("SONIC quickstart — profile {}, {:.1} kbps raw", profile.name, profile.raw_rate_bps() / 1000.0);

    // 1. The server side: render a page from the corpus at a small scale so
    //    the example runs in seconds (full pages are 1080 px wide).
    let corpus = Corpus::standard();
    let rendered = corpus.render(PageId { site: 0, page: 0 }, 9, 0.08);
    println!(
        "rendered {} ({}x{} px, {} click regions)",
        rendered.url,
        rendered.raster.width(),
        rendered.raster.height(),
        rendered.clickmap.regions.len()
    );
    let page = SimplifiedPage::from_raster(&rendered.url, &rendered.raster, rendered.clickmap, 9, 24);
    let frames = sonic::core::chunker::page_to_frames(&page);
    println!(
        "strip-coded to {} bytes -> {} link frames of 100 B",
        page.broadcast_bytes(),
        frames.len()
    );

    // 2. Modulate onto the 9.2 kHz audio carrier.
    let audio = link::modulate(&profile, &frames);
    println!(
        "modulated into {:.1} s of audio at {} Hz",
        audio.len() as f64 / profile.sample_rate,
        profile.sample_rate
    );

    // 3. The client side: demodulate (cable = lossless audio) and rebuild.
    let (received, stats) = link::demodulate(&profile, &audio);
    println!(
        "demodulated {} bursts, {} frames ok, {} failed bursts",
        stats.bursts_detected, stats.frames_ok, stats.bursts_failed
    );

    let mut client = SonicClient::new(720, None);
    for f in received {
        client.receive_frame(f);
    }
    let page_id = client.pending_pages()[0];
    let report = client.finalize_page(page_id, 9).expect("page complete");
    println!(
        "client reassembled {} — pixel loss {:.2}%, frame loss {:.2}%",
        report.url,
        report.pixel_loss * 100.0,
        report.frame_loss * 100.0
    );
    println!("catalog: {:?}", client.catalog(9));
    assert!(report.pixel_loss < 1e-9, "cable must deliver losslessly");
    println!("OK");
}
