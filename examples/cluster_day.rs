//! Cluster day runner: 50 transmitter sites behind one coordinator, a
//! broadcast day of kills, severed links and a gateway flood.
//!
//! ```text
//! cargo run --release --example cluster_day            # full 24 h day
//! cargo run --release --example cluster_day -- --smoke # 1 h CI smoke
//! ```

use sonic_sim::cluster::{run_cluster_soak, ClusterSoakConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = ClusterSoakConfig {
        hours: if smoke { 1 } else { 24 },
        sites: if smoke { 12 } else { 50 },
        kills_per_hour: 1,
        ..ClusterSoakConfig::default()
    };
    println!(
        "cluster day: {} h, {} sites, seed {:#x}, {} bps/site",
        cfg.hours, cfg.sites, cfg.seed, cfg.rate_bps
    );
    let report = run_cluster_soak(&cfg);
    println!(
        "air       : {} frames aired over {} ticks; {} distinct (site,page) heard",
        report.frames_aired, report.ticks, report.distinct_pages_heard
    );
    println!(
        "chaos     : {} kills / {} restarts; {} downs, {} recoveries, {} resumes ({} jobs reloaded)",
        report.kills, report.restarts, report.downs, report.recoveries, report.resumes,
        report.resumed_jobs
    );
    println!(
        "rpc       : {} retries, {} expired, {} gave up; {} repair failovers",
        report.rpc_retries, report.rpc_expired, report.rpc_gave_up, report.failovers
    );
    println!(
        "gateway   : {} SMS accepted, {} shed (peak depth {}); {} site refusals",
        report.sms_accepted, report.sms_shed, report.peak_ingress_depth,
        report.refused_overloaded
    );
    println!(
        "bounds    : peak rpc queue {}, peak site backlog {} pages, {} hung",
        report.peak_rpc_queued, report.peak_site_backlog_pages, report.hung_pages
    );
    assert!(report.kills >= 1, "the day must include a site kill");
    assert_eq!(report.restarts, report.kills, "every kill must restart");
    assert!(report.recoveries >= 1, "killed sites must be re-detected Up");
    assert!(report.resumes >= 1, "recovery must trigger a carousel Resume");
    assert_eq!(report.hung_pages, 0, "no site may end the day with a stuck backlog");
    println!("replaying with the same seed…");
    assert_eq!(report, run_cluster_soak(&cfg), "same seed must replay exactly");
    println!("OK: cluster survived the day; replay is byte-identical");
}
