//! Chaos soak runner: a hostile broadcast day end to end.
//!
//! ```text
//! cargo run --release --example chaos_soak            # full 24 h day
//! cargo run --release --example chaos_soak -- --smoke # 1 h CI smoke
//! ```

use sonic_sim::chaos::{run_chaos_soak, ChaosSoakConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = ChaosSoakConfig {
        hours: if smoke { 1 } else { 24 },
        ..ChaosSoakConfig::default()
    };
    println!(
        "chaos soak: {} h, seed {:#x}, {} bps",
        cfg.hours, cfg.seed, cfg.rate_bps
    );
    let report = run_chaos_soak(&cfg);
    println!(
        "air       : {} frames sent — {} delivered / {} corrupted / {} lost",
        report.frames_sent, report.frames_delivered, report.frames_corrupted, report.frames_lost
    );
    println!(
        "sms       : {} GET, {} NACK sent; {} ACK, {} ERR received",
        report.requests_sent, report.nacks_sent, report.acks_received, report.errs_received
    );
    println!(
        "pages     : {} clean, {} degraded, {} failed, {} hung ({} of {} URLs landed)",
        report.pages_clean,
        report.pages_degraded,
        report.pages_failed,
        report.pages_hung,
        report.urls_received,
        report.urls_requested
    );
    println!(
        "repair    : {} bursts / {} frames, max {} attempts on one page",
        report.repair_bursts, report.repair_frames, report.max_repair_attempts
    );
    println!(
        "memory    : peak {} B buffered, {} assemblies evicted",
        report.peak_reassembler_bytes, report.evicted_pages
    );
    assert_eq!(report.pages_hung, 0, "no reception may hang");
    assert_eq!(
        report.urls_received, report.urls_requested,
        "every requested page must finalize"
    );
    println!("OK: every requested page finalized, nothing hung");
}
