//! Offline stand-in for the `criterion` crate.
//!
//! Provides `Criterion`, `Bencher::iter`, `criterion_group!` and
//! `criterion_main!` with wall-clock timing: each benchmark is auto-calibrated
//! to a target sample duration, run `sample_size` times, and reported as
//! min/median/max ns per iteration. No plots, no statistics beyond the
//! three-point summary — enough to compare hot-path changes offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    target_sample: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample: Duration::from_millis(40),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target wall-clock duration of one sample (calibration knob).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.target_sample = d;
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters_per_sample: 0,
            samples: Vec::new(),
            sample_size: self.sample_size,
            target_sample: self.target_sample,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    sample_size: usize,
    target_sample: Duration,
}

impl Bencher {
    /// Times `routine`, auto-calibrating the per-sample iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: double iterations until one sample exceeds ~1/4 target.
        let mut iters: u64 = 1;
        loop {
            let t = Self::time(&mut routine, iters);
            if t >= self.target_sample.as_secs_f64() / 4.0 || iters > (1 << 30) {
                let per_iter = t / iters as f64;
                let want = self.target_sample.as_secs_f64() / per_iter.max(1e-12);
                iters = (want as u64).clamp(1, 1 << 32);
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Self::time(&mut routine, iters);
            self.samples.push(t / iters as f64);
        }
    }

    fn time<O, R: FnMut() -> O>(routine: &mut R, iters: u64) -> f64 {
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        start.elapsed().as_secs_f64()
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let ns = |x: f64| x * 1e9;
        println!(
            "{name:<40} time: [{} {} {}]  ({} iters x {} samples)",
            format_ns(ns(s[0])),
            format_ns(ns(s[s.len() / 2])),
            format_ns(ns(s[s.len() - 1])),
            self.iters_per_sample,
            s.len(),
        );
    }

    /// Median seconds per iteration of the last `iter` call (for harnesses).
    pub fn median_s(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        s[s.len() / 2]
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(2));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    fn target(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group! {
        name = quick;
        config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(1));
        targets = target
    }

    #[test]
    fn group_macro_compiles() {
        quick();
    }
}
