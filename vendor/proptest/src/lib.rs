//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use — the `proptest!` macro, `any::<T>()`, integer/float range strategies,
//! `collection::{vec, hash_set}`, simple character-class string strategies,
//! tuple strategies and `prop::sample::Index` — on top of a deterministic
//! per-test RNG. No shrinking: a failing case panics with the generated
//! values' seed so it reproduces on re-run (cases are a pure function of the
//! test path and case number).

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Deterministic per-case RNG handed to strategies by the macro.
#[derive(Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the RNG for `case` of the test identified by `path`.
    pub fn for_case(path: &str, case: u32) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in path.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn uniform_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.inner.random_range(0..n)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Values with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, spread over a useful dynamic range.
        (rng.uniform_f64() * 2e6 - 1e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.uniform_f64() * 2e12 - 1e12
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

/// `&str` strategies: a single character class with a repetition count,
/// e.g. `"[a-z0-9./:-]{1,40}"`. This covers every pattern the workspace's
/// tests use; unsupported patterns panic loudly.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
        let len = if max > min {
            min + rng.below(max - min + 1)
        } else {
            min
        };
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

/// Parses `[class]{m}` / `[class]{m,n}` into (choices, min, max).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` is a range unless the dash is the first or last character.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, min, max))
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Length bound accepted by [`vec`] and [`hash_set`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>`; size is best-effort when the element
    /// domain is smaller than the requested minimum.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let want = self.size.min + rng.below(self.size.max - self.size.min + 1);
            let mut out = HashSet::new();
            let mut attempts = 0usize;
            while out.len() < want && attempts < want * 50 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Sampling helpers (`proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use-site.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Resolves against a collection of `len` elements.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index {
                raw: super::Arbitrary::arbitrary(rng),
            }
        }
    }
}

/// Namespace mirror so `prop::sample::Index` paths resolve.
pub mod prop {
    pub use crate::sample;
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

pub use prelude as _prelude_reexport_guard;

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests. Mirrors upstream's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_prop(x in 0u8..10, v in collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // The closure gives `prop_assume!` an early-exit `return`
                // without leaving the case loop.
                let mut __run = move || $body;
                __run();
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_hold(x in 3u8..9, y in 10usize..=12, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=12).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_hold(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn strings_match_class(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_skips(x in 0u8..10) {
            prop_assume!(x < 250);
            prop_assert!(x < 10);
        }

        #[test]
        fn index_resolves(i in any::<prop::sample::Index>()) {
            let idx = i.index(7);
            prop_assert!(idx < 7);
        }
    }

    #[test]
    fn class_parser_handles_trailing_dash() {
        let (chars, min, max) = super::parse_class_pattern("[a-z./:-]{1,40}").expect("parse");
        assert!(chars.contains(&'-') && chars.contains(&'q'));
        assert_eq!((min, max), (1, 40));
    }

    #[test]
    fn deterministic_cases() {
        let mut a = TestRng::for_case("x", 1);
        let mut b = TestRng::for_case("x", 1);
        let sa: Vec<u8> = (0..8).map(|_| u8::arbitrary(&mut a)).collect();
        let sb: Vec<u8> = (0..8).map(|_| u8::arbitrary(&mut b)).collect();
        assert_eq!(sa, sb);
    }
}
