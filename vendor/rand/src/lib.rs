//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to the crates.io registry, so the
//! workspace vendors the small API surface SONIC actually uses: a seedable
//! deterministic generator (`rngs::StdRng`), `Rng::random` and
//! `Rng::random_range`. The generator is xoshiro256++ seeded via SplitMix64,
//! which matches the statistical quality the simulations need; all SONIC
//! experiments fix their seeds, so determinism — not compatibility with
//! upstream `rand`'s exact stream — is the requirement.

/// Types that can be sampled uniformly from an RNG's raw 64-bit output.
pub trait Standard: Sized {
    /// Draws one value from `next_u64` output(s).
    fn from_u64(bits: u64) -> Self;
}

impl Standard for u8 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 56) as u8
    }
}

impl Standard for u16 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 48) as u16
    }
}

impl Standard for u32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_u64(bits: u64) -> Self {
        bits
    }
}

impl Standard for usize {
    fn from_u64(bits: u64) -> Self {
        bits as usize
    }
}

impl Standard for i32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 32) as i32
    }
}

impl Standard for i64 {
    fn from_u64(bits: u64) -> Self {
        bits as i64
    }
}

impl Standard for bool {
    fn from_u64(bits: u64) -> Self {
        bits >> 63 != 0
    }
}

impl Standard for f32 {
    /// Uniform in [0, 1) with 24 bits of precision.
    fn from_u64(bits: u64) -> Self {
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn from_u64(bits: u64) -> Self {
        ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut impl Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return <$t as Standard>::from_u64(rng.next_u64());
                }
                lo + (reject_sample(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: $t = Standard::from_u64(rng.next_u64());
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u: $t = Standard::from_u64(rng.next_u64());
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Unbiased `[0, span)` sampling by rejection (span 0 means the full u64 range).
fn reject_sample(rng: &mut impl Rng, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Core RNG interface (the subset of upstream `rand::Rng` SONIC uses).
pub trait Rng {
    /// Raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (floats in [0,1), integers over the full range).
    fn random<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Uniform sample from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Legacy spelling kept for drop-in compatibility.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable constructor interface.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next_raw(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }
}

/// Convenience module mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(1u16..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(11);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let v: f64 = r.random();
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi, "samples must spread across [0,1)");
    }
}
