//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` locks with parking_lot's non-poisoning API (`lock()` /
//! `read()` / `write()` return guards directly). Poisoned locks are
//! recovered rather than propagated, matching parking_lot's behavior of not
//! having poisoning at all.

use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with a panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with panic-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
