//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements `crossbeam::channel`'s core: MPMC `bounded`/`unbounded`
//! channels with blocking `send`/`recv`, `try_recv`, iteration, and
//! disconnect semantics, built on `Mutex` + two `Condvar`s. This is not a
//! lock-free queue — at the SONIC pipeline's message granularity (whole
//! pages, frame batches, audio bursts) channel overhead is irrelevant; what
//! matters is correct back-pressure and clean shutdown, which this provides.

pub mod channel {
    //! MPMC channels with the crossbeam-channel API subset SONIC uses.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        not_empty: Condvar,
        /// Signalled when space frees or all receivers disconnect.
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a channel holding at most `cap` in-flight items.
    ///
    /// `cap == 0` is rendered as capacity 1 (this stand-in has no
    /// zero-capacity rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Creates a channel without a capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the item is enqueued or every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self
                    .inner
                    .cap
                    .is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .inner
                    .not_full
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .inner
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.lock();
            if let Some(v) = st.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Owning blocking iterator.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.lock().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.lock().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Sender {{ len: {} }}", self.len())
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Receiver {{ len: {} }}", self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn roundtrip_fifo() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).expect("send");
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_and_resumes() {
        let (tx, rx) = channel::bounded(2);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).expect("send");
            }
        });
        let mut got = Vec::new();
        for v in rx.iter() {
            got.push(v);
        }
        producer.join().expect("join");
        assert_eq!(got.len(), 100);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_distributes_all_items() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            handles.push(thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for i in 0..300 {
            tx.send(i).expect("send");
        }
        drop(tx);
        let total: usize = handles.into_iter().map(|h| h.join().expect("join")).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = channel::bounded(1);
        drop(rx);
        assert!(tx.send(7u8).is_err());
    }

    #[test]
    fn try_recv_reports_state() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(3).expect("send");
        assert_eq!(rx.try_recv(), Ok(3));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
