//! Distributed chaos soak acceptance (fault-tolerant cluster tentpole).
//!
//! Drives 50 transmitter sites behind a coordinator over fault-injected
//! links ([`sonic_core::net`]) through a broadcast day: seeded site
//! kill/restart cycles, severed-link windows, and a gateway flood hour.
//! Asserts the contract:
//!
//! * no hung pages — every site backlog drains once the day ends,
//! * every queue stays within its bound (ingress, RPC send, site backlog),
//! * killed sites are detected Down, restart from the shared disk tier,
//!   and receive a carousel `Resume`,
//! * the flood is shed at the ingress bound instead of growing memory,
//! * the report is byte-identical across reruns with the same seed at
//!   any worker count.
//!
//! The default run is smoke-sized (2 h). Set `SONIC_SOAK_HOURS=24` for the
//! full broadcast day.

use sonic_sim::cluster::{run_cluster_soak, ClusterSoakConfig};

#[test]
fn cluster_day_survives_kills_floods_and_severed_links() {
    let hours = std::env::var("SONIC_SOAK_HOURS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let mut cfg = ClusterSoakConfig {
        hours,
        workers: 1,
        ..ClusterSoakConfig::default()
    };
    cfg.store_dir = Some(std::env::temp_dir().join(format!(
        "sonic-cluster-accept-w1-{}",
        std::process::id()
    )));
    let report = run_cluster_soak(&cfg);

    // The cluster actually broadcast, and the listener stage folded every
    // aired frame.
    assert!(report.frames_aired > 0, "{report:?}");
    assert_eq!(report.frames_heard, report.frames_aired, "{report:?}");
    assert!(report.distinct_pages_heard > 0, "{report:?}");

    // The chaos actually bit: sites died, were detected, and came back.
    assert!(report.kills >= 1, "{report:?}");
    assert_eq!(report.restarts, report.kills, "{report:?}");
    assert!(report.downs >= 1, "silence must trip health checks: {report:?}");
    assert!(report.recoveries >= 1, "{report:?}");
    assert!(report.resumes >= 1, "recovery must trigger Resume: {report:?}");
    assert!(
        report.resumed_jobs >= 1,
        "restarted sites must reload carousel jobs from the disk tier: {report:?}"
    );
    assert!(report.rpc_retries > 0, "deadlines must fire and retry: {report:?}");

    // The flood exceeded the gateway and was shed at the bound.
    assert!(report.sms_shed > 0, "{report:?}");
    assert!(report.peak_ingress_depth <= 256, "{report:?}");

    // Bounded queues everywhere.
    assert!(report.peak_rpc_queued <= 64, "{report:?}");
    assert!(report.peak_site_backlog_pages <= 512, "{report:?}");

    // No hung pages: every surviving backlog drained.
    assert_eq!(report.hung_pages, 0, "{report:?}");

    // Identical seed ⇒ identical report, at any worker count.
    let mut four = cfg.clone();
    four.workers = 4;
    four.store_dir = Some(std::env::temp_dir().join(format!(
        "sonic-cluster-accept-w4-{}",
        std::process::id()
    )));
    assert_eq!(report, run_cluster_soak(&four), "soak must replay exactly");
}
