//! Property-based tests of the stack's core invariants (proptest).

use proptest::prelude::*;
use sonic::core::frame::{Frame, FRAME_PAYLOAD};
use sonic::fec::bits::bits_to_soft;
use sonic::fec::rs::RsCodec;
use sonic::fec::{CodeSpec, FecPipeline};
use sonic::image::clickmap::{ClickMap, ClickRegion};
use sonic::image::interpolate::{recover, LossMask};
use sonic::image::raster::{Raster, Rgb};
use sonic::image::strip;
use sonic::sms::pdu;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CRC-32 never collides with a single bit flip anywhere in the frame.
    #[test]
    fn frame_roundtrip_any_payload(
        page_id in any::<u32>(),
        column in 0u16..2048,
        seq in 0u16..0x7FFF,
        last in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..=FRAME_PAYLOAD),
    ) {
        let f = Frame::Strip { page_id, column, seq, last, payload };
        let wire = f.encode();
        prop_assert_eq!(Frame::decode(&wire), Ok(f));
    }

    /// The FEC pipeline is the identity over a clean channel for any payload.
    #[test]
    fn fec_clean_roundtrip(payload in proptest::collection::vec(any::<u8>(), 1..600)) {
        let p = FecPipeline::new(CodeSpec::sonic_default());
        let coded = p.encode(&payload);
        let soft = bits_to_soft(&coded);
        prop_assert_eq!(p.decode_soft(&soft, payload.len()).expect("clean"), payload);
    }

    /// Reed-Solomon corrects any pattern of ≤ t symbol errors.
    #[test]
    fn rs_corrects_any_t_errors(
        data in proptest::collection::vec(any::<u8>(), 32..223),
        positions in proptest::collection::hash_set(0usize..255, 1..=16),
        xor in 1u8..=255,
    ) {
        let rs = RsCodec::new(32);
        let parity = rs.encode(&data);
        let mut cw = data.clone();
        cw.extend_from_slice(&parity);
        let n = cw.len();
        let mut real_errors = 0usize;
        for &p in positions.iter() {
            if p < n {
                cw[p] ^= xor;
                real_errors += 1;
            }
        }
        prop_assume!(real_errors > 0);
        let fixed = rs.decode(&mut cw, &[]).expect("<= t errors must correct");
        prop_assert_eq!(fixed, real_errors);
        prop_assert_eq!(&cw[..data.len()], &data[..]);
    }

    /// GSM-7 segmentation + reassembly is the identity for ASCII text.
    #[test]
    fn sms_segment_reassemble(text in "[a-zA-Z0-9 .,:/-]{0,400}") {
        let segs = pdu::segment(&text, 7).expect("ascii subset is GSM-7");
        prop_assert_eq!(pdu::reassemble(&segs), Some(text));
    }

    /// Click maps survive serialization for arbitrary region sets.
    #[test]
    fn clickmap_roundtrip(
        regions in proptest::collection::vec(
            (any::<u16>(), any::<u16>(), 1u16..500, 1u16..500, "[a-z./:]{1,40}"),
            0..12,
        )
    ) {
        let cm = ClickMap {
            regions: regions
                .into_iter()
                .map(|(x, y, w, h, target)| ClickRegion { x, y, w, h, target })
                .collect(),
        };
        prop_assert_eq!(ClickMap::decode(&cm.encode()), Some(cm));
    }

    /// Strip coding: any per-column byte-prefix truncation loses only a
    /// pixel suffix of that column, never anything else.
    #[test]
    fn strip_prefix_property(
        w in 2usize..10,
        h in 8usize..40,
        cut_col in 0usize..10,
        keep_frac in 0.0f64..1.0,
    ) {
        let cut_col = cut_col % w;
        let mut img = Raster::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, Rgb::new((x * 40) as u8, (y * 11) as u8, ((x + y) * 7) as u8));
            }
        }
        let coded = strip::encode(&img);
        let clean = strip::decode(&coded);
        let mut received: Vec<usize> = coded.strips.iter().map(Vec::len).collect();
        received[cut_col] = (received[cut_col] as f64 * keep_frac) as usize;
        let (out, mask) = strip::decode_partial(&coded, &received);
        for x in 0..w {
            let lost: Vec<usize> = (0..h).filter(|&y| mask.is_lost(x, y)).collect();
            if x != cut_col {
                prop_assert!(lost.is_empty(), "column {} must be intact", x);
                for y in 0..h {
                    prop_assert_eq!(out.get(x, y), clean.get(x, y));
                }
            } else if let Some(&first) = lost.first() {
                // Suffix property.
                prop_assert_eq!(lost.clone(), (first..h).collect::<Vec<_>>());
            }
        }
    }

    /// Interpolation never leaves a lost pixel untouched when at least one
    /// pixel was received, and never modifies received pixels.
    #[test]
    fn interpolation_covers_and_preserves(
        w in 2usize..24,
        h in 2usize..24,
        rate in 0.05f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut img = Raster::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, Rgb::new((x * 9) as u8, (y * 13) as u8, 200));
            }
        }
        let mask = LossMask::random(w, h, rate, seed);
        prop_assume!(mask.loss_rate() < 1.0);
        let out = recover(&img, &mask);
        for y in 0..h {
            for x in 0..w {
                if !mask.is_lost(x, y) {
                    prop_assert_eq!(out.get(x, y), img.get(x, y), "received pixel modified");
                }
            }
        }
    }

    /// The scheduler conserves bytes: enqueued == transmitted + backlog.
    #[test]
    fn scheduler_conserves_bytes(
        heights in proptest::collection::vec(8usize..60, 1..5),
        dt in 0.01f64..5.0,
    ) {
        use sonic::core::server::scheduler::BroadcastScheduler;
        use sonic::core::page::SimplifiedPage;
        let mut s = BroadcastScheduler::new(16_000.0);
        let mut total = 0usize;
        for (i, h) in heights.iter().enumerate() {
            let img = Raster::filled(6, *h, Rgb::new(i as u8, 0, 0));
            let p = SimplifiedPage::from_raster(&format!("u{i}"), &img, ClickMap::default(), 0, 1);
            s.enqueue(p, 0.0);
            total = s.backlog_bytes().max(total);
        }
        let initial = s.backlog_bytes();
        let mut emitted = 0usize;
        for _ in 0..200 {
            emitted += s.advance(dt).len() * sonic::core::FRAME_SIZE;
        }
        prop_assert_eq!(emitted + s.backlog_bytes(), initial);
    }
}
