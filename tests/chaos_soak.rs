//! End-to-end chaos soak acceptance (robustness tentpole).
//!
//! Drives a broadcast day through a hostile [`sonic_radio::faults::FaultPlan`]
//! and a misbehaving SMS network, with the client NACK-repair loop closed
//! against the server's `RepairPlanner`. Asserts the contract:
//!
//! * every requested page finalizes — degraded is allowed, hung is not,
//! * the reassembler never exceeds its byte budget,
//! * per-page repair stays within the retry budget,
//! * an identical seed replays to an identical outcome.
//!
//! The default run is smoke-sized (2 h). Set `SONIC_SOAK_HOURS=24` for the
//! full broadcast day.

use sonic_core::server::repair::RepairConfig;
use sonic_sim::chaos::{run_chaos_soak, ChaosSoakConfig};

#[test]
fn hostile_broadcast_day_converges_deterministically() {
    let hours = std::env::var("SONIC_SOAK_HOURS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let cfg = ChaosSoakConfig {
        hours,
        ..ChaosSoakConfig::default()
    };
    let report = run_chaos_soak(&cfg);

    // The weather actually bit: frames died in mute windows and the loss
    // map saw corrupted frames, so the repair loop was truly exercised.
    assert!(report.frames_lost > 0, "{report:?}");
    assert!(report.frames_corrupted > 0, "{report:?}");

    // Every requested page finalized — degraded allowed, never hung.
    assert_eq!(report.pages_hung, 0, "{report:?}");
    assert_eq!(
        report.urls_received, report.urls_requested,
        "every wanted URL must land in the cache: {report:?}"
    );

    // Bounded recovery: memory and repair budgets both held.
    assert!(
        report.peak_reassembler_bytes <= cfg.reassembler.max_bytes,
        "{report:?}"
    );
    assert!(
        report.max_repair_attempts <= RepairConfig::default().max_attempts_per_page,
        "{report:?}"
    );

    // Identical seed ⇒ identical outcome.
    assert_eq!(report, run_chaos_soak(&cfg), "soak must replay exactly");
}
