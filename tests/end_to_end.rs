//! Cross-crate integration: the full SONIC pipeline, server to client,
//! over physical channel models.

use sonic::core::client::browser::ClickOutcome;
use sonic::core::link;
use sonic::core::server::render::Renderer;
use sonic::core::{SonicClient, SonicServer};
use sonic::modem::profile::Profile;
use sonic::pagegen::{Corpus, PageId};
use sonic::radio::channel::AcousticChannel;
use sonic::sms::geo::Coverage;
use sonic::sms::{gateway, GeoPoint};

/// Renders a small page, broadcasts it over a cable path and checks the
/// client sees a pixel-perfect (up to strip quantization) page.
#[test]
fn cable_end_to_end_is_lossless() {
    let profile = Profile::sonic_10k();
    let corpus = Corpus::small(2);
    let renderer = Renderer::new(corpus, 0.05);
    let mut server = SonicServer::new(renderer, Coverage::pakistan_demo(), 10_000.0);

    let url = server
        .renderer()
        .corpus()
        .layout(PageId { site: 1, page: 1 }, 3)
        .url;
    let page = server.get_page(&url, 3).expect("render");
    let frames = sonic::core::chunker::page_to_frames(&page);
    let audio = link::modulate(&profile, &frames);
    let (rx, stats) = link::demodulate(&profile, &audio);
    assert_eq!(stats.bursts_failed, 0);
    assert_eq!(rx.len(), frames.len());

    let mut client = SonicClient::new(720, None);
    for f in rx {
        client.receive_frame(f);
    }
    let report = client.finalize_page(page.page_id, 3).expect("complete");
    assert_eq!(report.url, url);
    assert!(report.pixel_loss < 1e-12);
}

/// SMS request → ACK → broadcast via the scheduler → client cache →
/// click resolution, all through public APIs.
#[test]
fn sms_request_to_click_roundtrip() {
    let profile = Profile::sonic_10k();
    let corpus = Corpus::small(3);
    let renderer = Renderer::new(corpus, 0.05);
    let mut server = SonicServer::new(renderer, Coverage::pakistan_demo(), 20_000.0);
    let lahore = GeoPoint::new(31.52, 74.35);
    let mut client = SonicClient::new(720, Some(lahore));

    let url = server
        .renderer()
        .corpus()
        .layout(PageId { site: 0, page: 0 }, 9)
        .url;
    let request = client.compose_request(&url).expect("uplink");
    let reply = server.handle_sms(&request, 9.0 * 3600.0);
    let ack = gateway::parse_ack(&reply).expect("ack reply");
    assert_eq!(ack.url, url);

    // Drain the Lahore scheduler fully and deliver over cable.
    let sched = server.schedulers.get_mut(&1).expect("lahore");
    let mut frames = Vec::new();
    while sched.backlog_bytes() > 0 {
        frames.extend(sched.advance(5.0));
    }
    let audio = link::modulate(&profile, &frames);
    let (rx, _) = link::demodulate(&profile, &audio);
    for f in rx {
        client.receive_frame(f);
    }
    for id in client.pending_pages() {
        client.finalize_page(id, 9).expect("complete");
    }
    assert_eq!(client.catalog(9), vec![url.clone()]);

    // A click on any region either hits cache or asks for an SMS.
    let cached = client.cache.get(&url, 9).expect("cached");
    let r = cached.clickmap.regions.first().expect("clickable page");
    let dx = ((r.x + r.w / 2) as f64 * 2.0 / 3.0) as u16;
    let dy = ((r.y + r.h / 2) as f64 * 2.0 / 3.0) as u16;
    match client.click(&url, dx, dy, 9) {
        ClickOutcome::SendRequest(sms) => assert!(gateway::parse_request(&sms).is_some()),
        ClickOutcome::CachedHit(_) | ClickOutcome::NotInteractive => {}
        other => panic!("unexpected outcome {other:?}"),
    }
}

/// A noisy over-the-air hop: losses appear, interpolation repairs, and the
/// loss statistics stay consistent.
#[test]
fn acoustic_hop_losses_are_repaired() {
    let profile = Profile::sonic_10k();
    let corpus = Corpus::small(2);
    let rendered = corpus.render(PageId { site: 0, page: 1 }, 9, 0.05);
    let page = sonic::core::page::SimplifiedPage::from_raster(
        &rendered.url,
        &rendered.raster,
        rendered.clickmap,
        9,
        12,
    );
    let frames = sonic::core::chunker::page_to_frames(&page);
    let audio = link::modulate(&profile, &frames);
    // Choose a seed where the mid-range hop loses some but not all bursts.
    let rx_audio = AcousticChannel::new(0.8, 11).transmit(&audio);
    let (rx, _) = link::demodulate(&profile, &rx_audio);

    let mut client = SonicClient::new(720, None);
    let got = rx.len();
    for f in rx {
        client.receive_frame(f);
    }
    if got == 0 {
        return; // deep fade: nothing to assert beyond "no panic"
    }
    match client.finalize_page(page.page_id, 9) {
        Ok(report) => {
            assert!((0.0..=1.0).contains(&report.pixel_loss));
            let cached = client.cache.get(&rendered.url, 9).expect("stored");
            assert_eq!(cached.raster.width(), rendered.raster.width());
            assert_eq!(cached.raster.height(), rendered.raster.height());
        }
        Err(_) => {
            // Metadata lost entirely — acceptable outcome of a bad channel.
        }
    }
}

/// The same audio can carry frames for two different pages back-to-back.
#[test]
fn interleaved_pages_share_the_air() {
    let profile = Profile::audible_7k();
    let corpus = Corpus::small(2);
    let mk = |site: usize, page: usize| {
        let r = corpus.render(PageId { site, page }, 0, 0.03);
        sonic::core::page::SimplifiedPage::from_raster(&r.url, &r.raster, r.clickmap, 0, 12)
    };
    let a = mk(0, 0);
    let b = mk(1, 0);
    let mut frames = sonic::core::chunker::page_to_frames(&a);
    frames.extend(sonic::core::chunker::page_to_frames(&b));
    let audio = link::modulate(&profile, &frames);
    let (rx, _) = link::demodulate(&profile, &audio);
    let mut client = SonicClient::new(1080, None);
    for f in rx {
        client.receive_frame(f);
    }
    let mut pending = client.pending_pages();
    pending.sort_unstable();
    assert_eq!(pending.len(), 2);
    for id in pending {
        let report = client.finalize_page(id, 0).expect("complete");
        assert!(report.pixel_loss < 1e-12, "{}", report.url);
    }
    assert_eq!(client.catalog(0).len(), 2);
}
