//! # SONIC — Connect the Unconnected via FM Radio & SMS
//!
//! A full-system Rust reproduction of the CoNEXT'24 paper: pre-rendered
//! webpages are encoded over sound, broadcast on FM radio (downlink), and
//! requested via SMS (uplink). This facade crate re-exports the whole
//! stack; see `DESIGN.md` for the architecture and the hardware/data
//! substitutions, and `EXPERIMENTS.md` for the figure-by-figure
//! reproduction.
//!
//! ## The stack, bottom-up
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | DSP | [`dsp`] | FFT, FIR/IIR, resampling, NCO, Goertzel |
//! | FEC | [`fec`] | CRC-32, K=9 Viterbi ("v29"), RS(255,223) ("rs8") |
//! | modem | [`modem`] | 92-subcarrier OFDM @ 9.2 kHz, FSK/chirp baselines |
//! | radio | [`radio`] | FM multiplex, FM mod/demod, RDS, channel models |
//! | image | [`image`] | SWP (WebP-analog) codec, strip coding, interpolation |
//! | pages | [`pagegen`] | deterministic webpage renderer + corpus |
//! | sms | [`sms`] | GSM-7, segmentation, delivery model, gateway grammar |
//! | system | [`core`] | SONIC server & client, 100-byte frames, scheduling |
//! | eval | [`sim`] | experiment harnesses reproducing §4 |
//!
//! ## Quickstart
//!
//! ```
//! use sonic::core::page::SimplifiedPage;
//! use sonic::core::{chunker, reassembly::PageAssembly};
//! use sonic::image::clickmap::ClickMap;
//! use sonic::image::raster::Raster;
//!
//! // Render (here: a tiny blank page), strip-encode, frame, and recover.
//! let raster = Raster::new(32, 24);
//! let page = SimplifiedPage::from_raster("https://example.pk/", &raster, ClickMap::default(), 0, 12);
//! let mut assembly = PageAssembly::new();
//! for frame in chunker::page_to_frames(&page) {
//!     assembly.push(frame);
//! }
//! let received = assembly.finalize().expect("complete broadcast");
//! assert_eq!(received.url, "https://example.pk/");
//! assert_eq!(received.mask.loss_rate(), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sonic_core as core;
pub use sonic_dsp as dsp;
pub use sonic_fec as fec;
pub use sonic_image as image;
pub use sonic_modem as modem;
pub use sonic_pagegen as pagegen;
pub use sonic_radio as radio;
pub use sonic_sim as sim;
pub use sonic_sms as sms;
