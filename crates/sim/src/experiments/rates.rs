//! Rate table: SONIC profiles vs. the related-work baselines (§2, §3.3).
//!
//! Reproduces the numbers the paper positions itself against: Quiet's
//! audible ≈7 kbps, SONIC's 10 kbps profile, the multi-frequency 20/40 kbps
//! argument, GGwave's 128 bps FSK, chirp signalling at ~16 bps, and RDS's
//! 1187.5 bps subcarrier. Rates are *measured* by timing real modulated
//! audio, not just computed.

use sonic_modem::chirp::ChirpConfig;
use sonic_modem::frame::modulate_frame;
use sonic_modem::fsk::FskConfig;
use sonic_modem::multi::MultiCarrier;
use sonic_modem::profile::Profile;
use sonic_radio::rds::RDS_BPS;

/// One row of the rate table.
#[derive(Debug, Clone)]
pub struct RateRow {
    /// System name.
    pub name: String,
    /// Theoretical raw rate in bps.
    pub raw_bps: f64,
    /// Measured net payload rate in bps (payload bits / audio duration),
    /// where measurable; `None` for aggregate/theoretical rows.
    pub measured_bps: Option<f64>,
    /// Notes (modulation, band).
    pub notes: String,
}

/// Measures the net rate of an OFDM profile by modulating a payload.
pub fn measure_ofdm_net_bps(profile: &Profile, payload_len: usize) -> f64 {
    let payload = vec![0xA5u8; payload_len];
    let audio = modulate_frame(profile, &payload);
    let seconds = audio.len() as f64 / profile.sample_rate;
    payload_len as f64 * 8.0 / seconds
}

/// Builds the full table.
pub fn run_experiment() -> Vec<RateRow> {
    let mut rows = Vec::new();

    for profile in [Profile::audible_7k(), Profile::sonic_10k(), Profile::cable_64k()] {
        let measured = measure_ofdm_net_bps(&profile, 4000);
        rows.push(RateRow {
            name: profile.name.to_string(),
            raw_bps: profile.raw_rate_bps(),
            measured_bps: Some(measured),
            notes: format!(
                "OFDM {} sc, {}, {:.1} kHz @ {:.1} kHz",
                profile.data_carriers,
                profile.modulation.name(),
                profile.bandwidth() / 1000.0,
                profile.center_freq / 1000.0
            ),
        });
    }

    for k in [2usize, 3] {
        let mc = MultiCarrier::sonic(k);
        rows.push(RateRow {
            name: format!("sonic-10k x{k}"),
            raw_bps: mc.raw_rate_bps(),
            measured_bps: None,
            notes: format!("{k} carriers (multi-frequency argument of §3.3)"),
        });
    }

    let fsk = FskConfig::ggwave_like();
    rows.push(RateRow {
        name: "fsk (ggwave-like)".into(),
        raw_bps: fsk.raw_rate_bps(),
        measured_bps: Some({
            let payload = vec![0x5Au8; 32];
            let audio = sonic_modem::fsk::modulate(&fsk, &payload);
            32.0 * 8.0 / (audio.len() as f64 / fsk.sample_rate)
        }),
        notes: "16-FSK, 32 baud".into(),
    });

    let chirp = ChirpConfig::default();
    rows.push(RateRow {
        name: "chirp (Lee et al.)".into(),
        raw_bps: chirp.raw_rate_bps(),
        measured_bps: Some({
            let payload = vec![0xC3u8; 4];
            let audio = sonic_modem::chirp::modulate(&chirp, &payload);
            4.0 * 8.0 / (audio.len() as f64 / chirp.sample_rate)
        }),
        notes: "1 bit/chirp, 2–6 kHz sweeps".into(),
    });

    rows.push(RateRow {
        name: "rds (RevCast)".into(),
        raw_bps: RDS_BPS,
        measured_bps: None,
        notes: "57 kHz subcarrier, biphase".into(),
    });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [RateRow], name: &str) -> &'a RateRow {
        rows.iter().find(|r| r.name == name).expect("row exists")
    }

    #[test]
    fn sonic_profile_nets_around_nine_kbps() {
        let rows = run_experiment();
        let sonic = row(&rows, "sonic-10k");
        let measured = sonic.measured_bps.expect("measured");
        // Paper's "10 kbps" profile: net after FEC/overhead in 8–11 kbps.
        assert!(
            measured > 8_000.0 && measured < 11_500.0,
            "measured {measured}"
        );
    }

    #[test]
    fn audible_7k_raw_matches_quiet() {
        let rows = run_experiment();
        let a = row(&rows, "audible-7k");
        assert!((a.raw_bps - 7_000.0).abs() < 300.0, "{}", a.raw_bps);
    }

    #[test]
    fn multi_frequency_scales_rates() {
        let rows = run_experiment();
        let x2 = row(&rows, "sonic-10k x2").raw_bps;
        let x3 = row(&rows, "sonic-10k x3").raw_bps;
        let x1 = row(&rows, "sonic-10k").raw_bps;
        assert!((x2 / x1 - 2.0).abs() < 1e-9);
        assert!((x3 / x1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn baselines_match_the_papers_citations() {
        let rows = run_experiment();
        assert!((row(&rows, "fsk (ggwave-like)").raw_bps - 128.0).abs() < 2.0);
        assert!((row(&rows, "chirp (Lee et al.)").raw_bps - 16.0).abs() < 0.5);
        assert!((row(&rows, "rds (RevCast)").raw_bps - 1187.5).abs() < 1e-9);
    }

    #[test]
    fn sonic_is_two_orders_over_ggwave() {
        let rows = run_experiment();
        let sonic = row(&rows, "sonic-10k").measured_bps.expect("measured");
        let fsk = row(&rows, "fsk (ggwave-like)").raw_bps;
        assert!(sonic / fsk > 60.0, "ratio {}", sonic / fsk);
    }
}
