//! Figure 4(a): frame loss rate vs. radio-to-receiver air distance.
//!
//! "Each experiment is repeated 10 times, and we assume high RSSI (−70 dB
//! or higher) at the FM receiver. The figure shows no frame loss recorded
//! over cable, and up to 10–20 % frame losses (at the median) when
//! considering about one meter … We also observe a 100 % loss rate at
//! distances above 1.1 m."

use crate::linksim::{run_batch, ChannelSetup, LinkJob};
use crate::stats::BoxStats;
use sonic_modem::profile::Profile;

/// Distances evaluated in the paper (meters; 0 = cable).
pub const PAPER_DISTANCES: [f64; 6] = [0.0, 0.1, 0.2, 0.5, 1.0, 1.1];

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Distances in meters (0 = cable).
    pub distances_m: Vec<f64>,
    /// Repetitions per distance (paper: 10).
    pub reps: usize,
    /// OFDM bursts per repetition (each = 40 frames ≈ 4 KB).
    pub bursts_per_rep: usize,
    /// Modem profile.
    pub profile: Profile,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            distances_m: PAPER_DISTANCES.to_vec(),
            reps: super::env_or("SONIC_FIG4A_REPS", 10),
            bursts_per_rep: super::env_or("SONIC_FIG4A_BURSTS", 5),
            profile: Profile::sonic_10k(),
            seed: 0xF164A,
        }
    }
}

/// One distance's loss distribution.
#[derive(Debug, Clone)]
pub struct DistanceResult {
    /// Distance in meters (0 = cable).
    pub distance_m: f64,
    /// Frame loss per repetition.
    pub losses: Vec<f64>,
    /// Boxplot summary.
    pub summary: BoxStats,
}

/// Runs the full figure.
///
/// Every distance × repetition receiver runs as an independent job on the
/// worker pool (per-job channel seeds), so the result is identical to the
/// serial loop for any worker count.
pub fn run_experiment(cfg: &Config) -> Vec<DistanceResult> {
    let frames = cfg.bursts_per_rep * sonic_core::link::FRAMES_PER_BURST;
    let jobs: Vec<LinkJob> = cfg
        .distances_m
        .iter()
        .flat_map(|&d| {
            (0..cfg.reps).map(move |rep| LinkJob {
                setup: if d <= 0.0 {
                    ChannelSetup::Cable
                } else {
                    ChannelSetup::Acoustic { distance_m: d }
                },
                n_frames: frames,
                seed: cfg.seed ^ ((d * 1000.0) as u64) << 8 ^ rep as u64,
            })
        })
        .collect();
    let results = run_batch(&cfg.profile, jobs);
    cfg.distances_m
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let runs = &results[i * cfg.reps..(i + 1) * cfg.reps];
            let losses: Vec<f64> = runs.iter().map(|r| r.frame_loss).collect();
            DistanceResult {
                distance_m: d,
                summary: BoxStats::of(&losses),
                losses,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Calibration smoke test at reduced repetitions (the full run is the
    /// bench target `fig4a_distance_loss`).
    #[test]
    fn shape_matches_paper() {
        let cfg = Config {
            reps: 3,
            bursts_per_rep: 2,
            ..Default::default()
        };
        let results = run_experiment(&cfg);
        let at = |d: f64| -> &DistanceResult {
            results
                .iter()
                .find(|r| (r.distance_m - d).abs() < 1e-9)
                .expect("distance present")
        };
        // Cable: zero loss.
        assert_eq!(at(0.0).summary.max, 0.0, "cable must be lossless");
        // Close range: near-zero median.
        assert!(at(0.1).summary.median < 0.08, "{:?}", at(0.1).summary);
        // ~1 m: paper reports 10–20 % at the median; accept a broad band
        // at this reduced sample count.
        let m1 = at(1.0).summary.median;
        assert!(m1 > 0.02 && m1 < 0.65, "1 m median {m1}");
        // Beyond 1.1 m the paper sees total loss; at 1.1 m expect heavy.
        assert!(at(1.1).summary.median >= m1, "loss must grow with distance");
    }
}
