//! Ablations for the design choices DESIGN.md calls out.
//!
//! * **A1 — FEC chain**: the paper configures crc32 + v29 + rs8 without
//!   justifying the pairing; this ablation measures frame loss with each
//!   stage disabled, over a mid-range acoustic hop.
//! * **A2 — interpolation strategy**: left-priority (the paper's pick,
//!   motivated by left-to-right text) vs. above-priority vs. no repair,
//!   scored by PSNR and edge integrity on real page renders under column-
//!   segment losses (the loss shape strip coding actually produces).

use crate::linksim::{run, ChannelSetup};
use crate::stats::mean;
use sonic_fec::CodeSpec;
use sonic_image::interpolate::{blackout, recover_with, LossMask, Strategy};
use sonic_image::metrics::{edge_integrity, psnr};
use sonic_modem::profile::Profile;
use sonic_pagegen::{Corpus, PageId};

/// A1 result row.
#[derive(Debug, Clone)]
pub struct FecRow {
    /// Chain name.
    pub name: &'static str,
    /// Code rate at 1000-byte payloads.
    pub code_rate: f64,
    /// Mean frame loss over the acoustic hop.
    pub frame_loss: f64,
}

/// Runs the FEC ablation at `distance_m` over `reps` repetitions.
pub fn run_fec_ablation(distance_m: f64, reps: usize, seed: u64) -> Vec<FecRow> {
    let chains: [(&'static str, CodeSpec); 4] = [
        ("none", CodeSpec::none()),
        ("v29 only", CodeSpec::conv_only()),
        ("rs8 only", CodeSpec::rs_only()),
        ("v29 + rs8 (paper)", CodeSpec::sonic_default()),
    ];
    chains
        .iter()
        .map(|&(name, fec)| {
            let profile = Profile {
                fec,
                ..Profile::sonic_10k()
            };
            let losses: Vec<f64> = (0..reps)
                .map(|rep| {
                    run(
                        &profile,
                        ChannelSetup::Acoustic { distance_m },
                        3 * sonic_core::link::FRAMES_PER_BURST,
                        seed ^ (rep as u64) << 4,
                    )
                    .frame_loss
                })
                .collect();
            FecRow {
                name,
                code_rate: fec.rate(1000),
                frame_loss: mean(&losses),
            }
        })
        .collect()
}

/// A2 result row.
#[derive(Debug, Clone)]
pub struct InterpRow {
    /// Strategy name.
    pub name: &'static str,
    /// Mean PSNR over the sampled pages (dB).
    pub psnr_db: f64,
    /// Mean edge integrity.
    pub edge: f64,
}

/// Runs the interpolation ablation: `loss` fraction of columns lose their
/// lower halves (the strip-coding loss shape).
pub fn run_interp_ablation(loss: f64, n_pages: usize, scale: f64, seed: u64) -> Vec<InterpRow> {
    let corpus = Corpus::standard();
    type Case = (&'static str, Option<Strategy>, Vec<f64>, Vec<f64>);
    let mut cases: Vec<Case> = vec![
        ("no repair", None, Vec::new(), Vec::new()),
        ("left priority (paper)", Some(Strategy::LeftPriority), Vec::new(), Vec::new()),
        ("above priority", Some(Strategy::AbovePriority), Vec::new(), Vec::new()),
    ];
    for k in 0..n_pages {
        let id = PageId {
            site: k % corpus.sites.len(),
            page: k / corpus.sites.len(),
        };
        let rendered = corpus.render(id, 0, scale);
        let (w, h) = (rendered.raster.width(), rendered.raster.height());
        // Column-segment losses: each affected column loses a suffix.
        let mut segs = Vec::new();
        let mut x = seed ^ k as u64;
        for col in 0..w {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if (x >> 33) as f64 / (1u64 << 31) as f64 % 1.0 < loss {
                let start = (x >> 17) as usize % h;
                segs.push((col, start, h));
            }
        }
        let mask = LossMask::column_segments(w, h, &segs);
        for (_, strategy, psnrs, edges) in cases.iter_mut() {
            let repaired = match strategy {
                None => blackout(&rendered.raster, &mask),
                Some(s) => recover_with(&rendered.raster, &mask, *s),
            };
            psnrs.push(psnr(&rendered.raster, &repaired));
            edges.push(edge_integrity(&rendered.raster, &repaired));
        }
    }
    cases
        .into_iter()
        .map(|(name, _, psnrs, edges)| InterpRow {
            name,
            psnr_db: mean(&psnrs),
            edge: mean(&edges),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_chain_beats_uncoded_on_noisy_hop() {
        let rows = run_fec_ablation(0.6, 2, 7);
        let get = |n: &str| rows.iter().find(|r| r.name == n).expect("row").frame_loss;
        let full = get("v29 + rs8 (paper)");
        let none = get("none");
        assert!(
            full <= none,
            "full chain {full} must not lose more than uncoded {none}"
        );
    }

    #[test]
    fn code_rates_are_ordered() {
        let rows = run_fec_ablation(0.1, 1, 1);
        let get = |n: &str| rows.iter().find(|r| r.name == n).expect("row").code_rate;
        assert!(get("none") > get("rs8 only"));
        assert!(get("rs8 only") > get("v29 only"));
        assert!(get("v29 only") > get("v29 + rs8 (paper)"));
    }

    #[test]
    fn any_repair_beats_none() {
        let rows = run_interp_ablation(0.2, 4, 0.1, 3);
        let get = |n: &str| rows.iter().find(|r| r.name == n).expect("row");
        assert!(get("left priority (paper)").psnr_db > get("no repair").psnr_db);
        assert!(get("above priority").psnr_db > get("no repair").psnr_db);
        assert!(get("left priority (paper)").edge > get("no repair").edge);
    }
}
