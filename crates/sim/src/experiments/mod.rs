//! One module per paper experiment. Each exposes a `Config` with defaults
//! matching the paper's methodology (scaled where the full run would take
//! hours — every scaling knob is overridable via `SONIC_*` environment
//! variables, documented in EXPERIMENTS.md) and a `run()` returning typed
//! results that the bench binaries print as tables.

pub mod ablation;
pub mod fig4a;
pub mod fig4b;
pub mod fig4c;
pub mod fig5;
pub mod rates;
pub mod rssi;
pub mod sizes;

/// Reads a scaling knob from the environment.
pub fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_or_falls_back() {
        assert_eq!(env_or("SONIC_DOES_NOT_EXIST_XYZ", 7usize), 7);
    }

    #[test]
    fn env_or_parses() {
        std::env::set_var("SONIC_TEST_KNOB_42", "13");
        assert_eq!(env_or("SONIC_TEST_KNOB_42", 7usize), 13);
        std::env::remove_var("SONIC_TEST_KNOB_42");
    }
}
