//! §4 "Variable RSSI": frame loss across receiver signal strengths.
//!
//! "At approximately 5 dB intervals, we transmit a single webpage up to 10
//! times and measure SONIC's frame loss rate. For the RSSI range from −65
//! to −85 dB, we consistently observe no frame losses. For the −85 to
//! −90 dB range, we record a fluctuating frame loss rate between 2 and
//! 15 %. … for RSSI below −90 dB, we are unable to receive any frames."

use crate::linksim::{run_batch, ChannelSetup, LinkJob};
use crate::stats::{mean, BoxStats};
use sonic_modem::profile::Profile;

/// RSSI points evaluated (5 dB steps, −65 … −95).
pub const PAPER_RSSI_DB: [f64; 7] = [-65.0, -70.0, -75.0, -80.0, -85.0, -88.0, -92.0];

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// RSSI points in dB.
    pub rssi_db: Vec<f64>,
    /// Repetitions per point (paper: up to 10).
    pub reps: usize,
    /// Bursts per repetition.
    pub bursts_per_rep: usize,
    /// Modem profile.
    pub profile: Profile,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            rssi_db: PAPER_RSSI_DB.to_vec(),
            reps: super::env_or("SONIC_RSSI_REPS", 10),
            bursts_per_rep: super::env_or("SONIC_RSSI_BURSTS", 3),
            profile: Profile::sonic_10k(),
            seed: 0x2551,
        }
    }
}

/// One RSSI point's result.
#[derive(Debug, Clone)]
pub struct RssiResult {
    /// The RSSI in dB.
    pub rssi_db: f64,
    /// Loss per repetition.
    pub losses: Vec<f64>,
    /// Mean loss.
    pub mean_loss: f64,
    /// Boxplot summary.
    pub summary: BoxStats,
}

/// Runs the sweep (client in "cable" mode, per the paper's setup).
///
/// All point × repetition receivers are independent (per-job channel seeds),
/// so the whole sweep fans out on the worker pool; results are regrouped in
/// point order and are identical to the serial loop for any worker count.
pub fn run_experiment(cfg: &Config) -> Vec<RssiResult> {
    let frames = cfg.bursts_per_rep * sonic_core::link::FRAMES_PER_BURST;
    let jobs: Vec<LinkJob> = cfg
        .rssi_db
        .iter()
        .flat_map(|&rssi| {
            (0..cfg.reps).map(move |rep| LinkJob {
                setup: ChannelSetup::Fm { rssi_db: rssi },
                n_frames: frames,
                seed: cfg.seed ^ ((-rssi * 10.0) as u64) << 10 ^ rep as u64,
            })
        })
        .collect();
    let results = run_batch(&cfg.profile, jobs);
    cfg.rssi_db
        .iter()
        .enumerate()
        .map(|(i, &rssi)| {
            let runs = &results[i * cfg.reps..(i + 1) * cfg.reps];
            let losses: Vec<f64> = runs.iter().map(|r| r.frame_loss).collect();
            RssiResult {
                rssi_db: rssi,
                mean_loss: mean(&losses),
                summary: BoxStats::of(&losses),
                losses,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced-rep band check; the bench runs the paper configuration.
    #[test]
    fn paper_bands_hold() {
        let cfg = Config {
            rssi_db: vec![-70.0, -90.0, -94.0],
            reps: 4,
            bursts_per_rep: 2,
            ..Default::default()
        };
        let res = run_experiment(&cfg);
        assert!(res[0].mean_loss < 0.01, "-70 dB must be clean: {:?}", res[0].summary);
        assert!(
            res[1].mean_loss > res[0].mean_loss,
            "loss must grow as RSSI falls: {:?}",
            res[1].summary
        );
        assert!(res[2].mean_loss > 0.9, "-94 dB must be dead: {:?}", res[2].summary);
    }
}
