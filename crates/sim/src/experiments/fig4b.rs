//! Figure 4(b): CDF of rendered-webpage image sizes vs. quality and crop.
//!
//! "CDF of the size of images (WebP) of rendered webpages, assuming
//! variable image quality (Q) and pixel height (PH)." Paper curves:
//! (Q10, PH10k), (Q10, PH None), (Q50, PH10k), (Q90, PH10k). Claims to
//! reproduce: at Q10 most pages < 200 KB vs ~700 KB at Q90; the 10k-px crop
//! saves ~100 KB for 75 % of pages; CDF tails ≈ 2× the 90th percentile.

use super::sizes::{calibration_factor, measure_scaled, SizeConfig};
use crate::stats;
use sonic_pagegen::Corpus;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Render scale (sizes are extrapolated to full scale).
    pub scale: f64,
    /// Hourly snapshots (paper: 72 over three days).
    pub hours: u64,
    /// The (Q, PH) curves.
    pub configs: Vec<SizeConfig>,
    /// Pages used to measure the calibration factor.
    pub calibration_samples: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: super::env_or("SONIC_FIG4B_SCALE", 0.2),
            hours: super::env_or("SONIC_FIG4B_HOURS", 12),
            configs: vec![
                SizeConfig { quality: 10, pixel_height: Some(10_000) },
                SizeConfig { quality: 10, pixel_height: None },
                SizeConfig { quality: 50, pixel_height: Some(10_000) },
                SizeConfig { quality: 90, pixel_height: Some(10_000) },
            ],
            calibration_samples: 3,
        }
    }
}

/// One curve's samples (full-scale-equivalent bytes).
#[derive(Debug, Clone)]
pub struct Curve {
    /// The (Q, PH) point.
    pub config: SizeConfig,
    /// One size per (page, hour) sample.
    pub sizes_bytes: Vec<f64>,
}

impl Curve {
    /// Percentile in bytes.
    pub fn percentile(&self, p: f64) -> f64 {
        stats::percentile(&self.sizes_bytes, p)
    }
}

/// Full experiment result.
#[derive(Debug)]
pub struct Fig4bResult {
    /// One curve per (Q, PH).
    pub curves: Vec<Curve>,
    /// The measured extrapolation calibration factor.
    pub calibration: f64,
    /// Render scale used.
    pub scale: f64,
}

/// Runs the figure over the standard corpus.
pub fn run_experiment(cfg: &Config) -> Fig4bResult {
    let corpus = Corpus::standard();
    let base = SizeConfig::paper_default();
    let calibration = calibration_factor(&corpus, cfg.scale, base, cfg.calibration_samples);
    let extrapolate = calibration / (cfg.scale * cfg.scale);
    let pages = corpus.pages();

    // Parallelize over pages with scoped threads (renders dominate).
    let n_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut curves: Vec<Curve> = cfg
        .configs
        .iter()
        .map(|&c| Curve {
            config: c,
            sizes_bytes: Vec::new(),
        })
        .collect();

    let chunks: Vec<Vec<sonic_pagegen::PageId>> = pages
        .chunks(pages.len().div_ceil(n_workers))
        .map(|c| c.to_vec())
        .collect();
    let results: Vec<Vec<Vec<f64>>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let corpus = &corpus;
                let configs = &cfg.configs;
                s.spawn(move || {
                    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
                    for &id in chunk {
                        for hour in 0..cfg.hours {
                            // Only measure fresh versions; carry sizes across
                            // unchanged hours like the paper's hourly snapshots.
                            let fresh = hour == 0 || corpus.changed(id, hour - 1, hour);
                            for (k, &sc) in configs.iter().enumerate() {
                                if fresh {
                                    let b = measure_scaled(corpus, id, hour, cfg.scale, sc)
                                        * extrapolate;
                                    per_cfg[k].push(b);
                                } else if let Some(&prev) = per_cfg[k].last() {
                                    per_cfg[k].push(prev);
                                }
                            }
                        }
                    }
                    per_cfg
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });
    for per_cfg in results {
        for (k, sizes) in per_cfg.into_iter().enumerate() {
            curves[k].sizes_bytes.extend(sizes);
        }
    }

    Fig4bResult {
        curves,
        calibration,
        scale: cfg.scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced-scale shape check; the bench runs the full figure.
    #[test]
    fn q_and_ph_order_the_curves() {
        let cfg = Config {
            scale: 0.1,
            hours: 2,
            calibration_samples: 1,
            ..Default::default()
        };
        let res = run_experiment(&cfg);
        let median = |q: u8, ph: Option<usize>| -> f64 {
            res.curves
                .iter()
                .find(|c| c.config.quality == q && c.config.pixel_height == ph)
                .expect("curve")
                .percentile(50.0)
        };
        let q10 = median(10, Some(10_000));
        let q50 = median(50, Some(10_000));
        let q90 = median(90, Some(10_000));
        let q10_full = median(10, None);
        assert!(q10 < q50 && q50 < q90, "{q10} {q50} {q90}");
        assert!(q10_full >= q10, "crop can only shrink");
        // Paper: Q10 mostly under 200 KB, Q90 ≈ 700 KB typical. At this
        // tiny scale just require the right order of magnitude.
        assert!(q10 > 5_000.0 && q10 < 600_000.0, "q10 median {q10}");
        assert!(q90 / q10 > 2.0, "Q90/Q10 ratio {}", q90 / q10);
    }
}
