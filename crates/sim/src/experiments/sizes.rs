//! Shared size measurement: corpus page → SWP ("WebP") bytes.
//!
//! Pages are rendered at a reduced scale and the encoded size extrapolated
//! to full scale with a measured calibration factor (a handful of pages are
//! rendered at both scales and compared). Experiments report the factor so
//! the extrapolation is auditable.

use crate::broadcast::CachedSizes;
use sonic_image::codec::{self, SwpCache};
use sonic_pagegen::{Corpus, PageId};
use std::collections::BTreeMap;

/// Quality/crop configuration matching the paper's (Q, PH) axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeConfig {
    /// WebP-style quality (0–95).
    pub quality: u8,
    /// Pixel-height crop at full scale (None = full page).
    pub pixel_height: Option<usize>,
}

impl SizeConfig {
    /// The paper's operating point: Q=10, PH=10k.
    pub fn paper_default() -> Self {
        SizeConfig {
            quality: 10,
            pixel_height: Some(10_000),
        }
    }
}

/// Measures one page version's encoded size at `scale`, in bytes (scaled
/// resolution — not yet extrapolated).
pub fn measure_scaled(corpus: &Corpus, id: PageId, hour: u64, scale: f64, cfg: SizeConfig) -> f64 {
    let mut cache = SwpCache::new();
    measure_scaled_cached(corpus, id, hour, scale, cfg, &mut cache)
}

/// [`measure_scaled`] against a persistent band cache: hourly re-measurement
/// of a mostly-unchanged catalog re-encodes only the bands whose pixels (or
/// DC prediction chain) changed; output bytes are identical to the uncached
/// encoder's.
pub fn measure_scaled_cached(
    corpus: &Corpus,
    id: PageId,
    hour: u64,
    scale: f64,
    cfg: SizeConfig,
    cache: &mut SwpCache,
) -> f64 {
    let rendered = corpus.render(id, hour, scale);
    let raster = match cfg.pixel_height {
        Some(ph) => rendered.raster.crop_height(((ph as f64) * scale) as usize),
        None => rendered.raster,
    };
    codec::encode_cached(&raster, cfg.quality, cache).len() as f64
}

/// Measures the full-scale/naive-extrapolation calibration factor on
/// `n_samples` pages: `factor = full_bytes / (scaled_bytes / scale²)`.
pub fn calibration_factor(corpus: &Corpus, scale: f64, cfg: SizeConfig, n_samples: usize) -> f64 {
    if (scale - 1.0).abs() < 1e-9 {
        return 1.0;
    }
    let pages = corpus.pages();
    let mut ratio_sum = 0.0;
    let mut n = 0usize;
    for id in pages.into_iter().take(n_samples) {
        let full = measure_scaled(corpus, id, 0, 1.0, cfg);
        let scaled = measure_scaled(corpus, id, 0, scale, cfg);
        let naive = scaled / (scale * scale);
        if naive > 0.0 {
            ratio_sum += full / naive;
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        ratio_sum / n as f64
    }
}

/// Band-cache effectiveness over a [`sizes_from_corpus`] sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeMeasureStats {
    /// Page-version encodes performed (page changes × hours measured).
    pub encodes: usize,
    /// SWP band encodes answered from the cache.
    pub band_hits: u64,
    /// SWP band encodes computed fresh.
    pub band_misses: u64,
}

impl SizeMeasureStats {
    /// Fraction of band encodes served from the cache (0 when none ran).
    pub fn band_hit_rate(&self) -> f64 {
        let total = self.band_hits + self.band_misses;
        if total == 0 {
            0.0
        } else {
            self.band_hits as f64 / total as f64
        }
    }
}

/// Builds a full-scale-equivalent size cache for the backlog simulation:
/// each page's size is measured once per content version (sizes repeat
/// until the page changes).
pub fn sizes_from_corpus(
    corpus: &Corpus,
    pages: &[PageId],
    hours: u64,
    scale: f64,
    cfg: SizeConfig,
    calibration: f64,
) -> CachedSizes {
    sizes_from_corpus_with_stats(corpus, pages, hours, scale, cfg, calibration).0
}

/// [`sizes_from_corpus`] plus band-cache statistics: one [`SwpCache`]
/// persists across the whole sweep, so an hourly page change that leaves
/// most 8-row bands untouched only re-encodes the dirty bands. Sizes are
/// bit-identical to the uncached measurement.
pub fn sizes_from_corpus_with_stats(
    corpus: &Corpus,
    pages: &[PageId],
    hours: u64,
    scale: f64,
    cfg: SizeConfig,
    calibration: f64,
) -> (CachedSizes, SizeMeasureStats) {
    let mut map = BTreeMap::new();
    let extrapolate = calibration / (scale * scale);
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut cache = SwpCache::new();
    for &id in pages {
        let mut last_bytes = 0.0f64;
        for hour in 0..hours {
            let fresh = hour == 0 || corpus.changed(id, hour - 1, hour);
            if fresh {
                last_bytes =
                    measure_scaled_cached(corpus, id, hour, scale, cfg, &mut cache) * extrapolate;
                total += last_bytes;
                count += 1;
            }
            map.insert((id.site, id.page, hour), last_bytes);
        }
    }
    let default_bytes = if count > 0 { total / count as f64 } else { 150_000.0 };
    let stats = SizeMeasureStats {
        encodes: count,
        band_hits: cache.hits(),
        band_misses: cache.misses(),
    };
    (
        CachedSizes {
            map,
            default_bytes,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::SizeModel;

    #[test]
    fn quality_orders_sizes() {
        let c = Corpus::small(2);
        let id = PageId { site: 0, page: 1 };
        let q10 = measure_scaled(
            &c,
            id,
            0,
            0.15,
            SizeConfig {
                quality: 10,
                pixel_height: None,
            },
        );
        let q90 = measure_scaled(
            &c,
            id,
            0,
            0.15,
            SizeConfig {
                quality: 90,
                pixel_height: None,
            },
        );
        assert!(q90 > q10 * 1.5, "q10 {q10} q90 {q90}");
    }

    #[test]
    fn crop_reduces_size_for_tall_pages() {
        let c = Corpus::small(1); // rank 1 = news, tall landing page
        let id = PageId { site: 0, page: 0 };
        let full = measure_scaled(
            &c,
            id,
            0,
            0.15,
            SizeConfig {
                quality: 10,
                pixel_height: None,
            },
        );
        let cropped = measure_scaled(
            &c,
            id,
            0,
            0.15,
            SizeConfig {
                quality: 10,
                pixel_height: Some(5_000),
            },
        );
        assert!(cropped < full, "cropped {cropped} full {full}");
    }

    #[test]
    fn size_cache_repeats_until_change() {
        let c = Corpus::small(3);
        let pages = [PageId { site: 2, page: 0 }];
        let sizes = sizes_from_corpus(&c, &pages, 4, 0.1, SizeConfig::paper_default(), 1.0);
        let b0 = sizes.bytes(pages[0], 0);
        assert!(b0 > 0.0);
        for h in 1..4 {
            let b = sizes.bytes(pages[0], h);
            if !c.changed(pages[0], h - 1, h) {
                assert_eq!(b, sizes.bytes(pages[0], h - 1), "hour {h}");
            }
            assert!(b > 0.0);
        }
    }

    #[test]
    fn cached_sweep_matches_uncached_and_reuses_bands() {
        let c = Corpus::small(3);
        let pages: Vec<PageId> = (0..3).map(|s| PageId { site: s, page: 0 }).collect();
        let cfg = SizeConfig::paper_default();
        let plain = sizes_from_corpus(&c, &pages, 6, 0.1, cfg, 1.0);
        let (cached, stats) = sizes_from_corpus_with_stats(&c, &pages, 6, 0.1, cfg, 1.0);
        for &id in &pages {
            for h in 0..6 {
                assert_eq!(
                    plain.bytes(id, h),
                    cached.bytes(id, h),
                    "page {id:?} hour {h}"
                );
            }
        }
        assert!(stats.encodes >= pages.len(), "at least one encode per page");
        assert!(stats.band_misses > 0);
        // Hourly page mutations leave most 8-row bands untouched, so the
        // persistent cache must see real reuse across the sweep.
        assert!(
            stats.band_hits > 0,
            "persistent band cache must hit across hours: {stats:?}"
        );
        assert!(stats.band_hit_rate() > 0.0 && stats.band_hit_rate() < 1.0);
    }

    #[test]
    fn calibration_factor_is_near_unity() {
        // Naive area extrapolation should be within ~3x of truth; the factor
        // corrects the residual.
        let c = Corpus::small(2);
        let f = calibration_factor(&c, 0.25, SizeConfig::paper_default(), 1);
        assert!(f > 0.2 && f < 5.0, "factor {f}");
    }
}
