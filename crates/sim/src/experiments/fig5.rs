//! Figure 5: the user study — median Likert ratings per page under
//! synthetic losses, with and without pixel interpolation.
//!
//! "We create screenshots of the top 50 Pakistani webpages … with synthetic
//! variable losses (5 %, 10 %, 20 %, and 50 %) … 400 screenshots … 151
//! students … 20 randomly selected screenshots … at least 7 ratings per
//! screenshot." The human raters are replaced by the perceptual panel model
//! in [`crate::study`] (DESIGN.md substitution table).

use crate::stats::BoxStats;
use crate::study::{measure, Panel, Question};
use sonic_image::interpolate::{blackout, recover, LossMask};
use sonic_pagegen::{Corpus, PageId};

/// Loss rates evaluated in the paper.
pub const PAPER_LOSS_RATES: [f64; 4] = [0.05, 0.10, 0.20, 0.50];

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of pages ("top 50").
    pub n_pages: usize,
    /// Render scale for the screenshots.
    pub scale: f64,
    /// Loss rates.
    pub loss_rates: Vec<f64>,
    /// Panel size (paper: 151).
    pub raters: usize,
    /// Ratings gathered per screenshot (paper: ≈7).
    pub ratings_per_shot: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n_pages: super::env_or("SONIC_FIG5_PAGES", 50),
            scale: super::env_or("SONIC_FIG5_SCALE", 0.2),
            loss_rates: PAPER_LOSS_RATES.to_vec(),
            raters: 151,
            ratings_per_shot: 7,
            seed: 0xF165,
        }
    }
}

/// One boxplot cell of the figure.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Loss rate.
    pub loss: f64,
    /// Whether interpolation was applied.
    pub interpolated: bool,
    /// Which question.
    pub question: Question,
    /// Median rating per page (the boxplot's underlying sample).
    pub medians: Vec<f64>,
    /// Boxplot summary.
    pub summary: BoxStats,
}

/// "Top 50 pages": the 25 landing pages plus the first internal page of
/// each site.
fn top_pages(corpus: &Corpus, n: usize) -> Vec<PageId> {
    let mut pages = Vec::new();
    for site in 0..corpus.sites.len() {
        pages.push(PageId { site, page: 0 });
    }
    for site in 0..corpus.sites.len() {
        pages.push(PageId { site, page: 1 });
    }
    pages.truncate(n);
    pages
}

/// Runs the study.
///
/// The expensive half — render, synthetic loss, interpolate, measure — is a
/// pure function per (loss rate, interpolation, page) and fans out on the
/// worker pool. The panel then consumes the precomputed degradations
/// serially in the original (loss, interpolation, question, page) order, so
/// its RNG stream — and therefore every rating — is identical to the serial
/// implementation for any worker count.
pub fn run_experiment(cfg: &Config) -> Vec<Cell> {
    let corpus = Corpus::standard();
    let pages = top_pages(&corpus, cfg.n_pages);
    let mut panel = Panel::new(cfg.raters, cfg.seed);

    // Measurement jobs, one per (loss, interpolated, page).
    let n_pages = pages.len();
    let jobs: Vec<(f64, bool, usize)> = cfg
        .loss_rates
        .iter()
        .flat_map(|&loss| {
            [false, true]
                .into_iter()
                .flat_map(move |interp| (0..n_pages).map(move |k| (loss, interp, k)))
        })
        .collect();
    let degradations = crate::pool::run_ordered(
        jobs,
        crate::pool::default_workers(),
        |(loss, interpolated, k)| {
            let rendered = corpus.render(pages[k], 0, cfg.scale);
            let w = rendered.raster.width();
            let h = rendered.raster.height();
            let mask = LossMask::random(
                w,
                h,
                loss,
                cfg.seed ^ ((loss * 1e4) as u64) << 16 ^ k as u64,
            );
            let distorted = if interpolated {
                recover(&rendered.raster, &mask)
            } else {
                blackout(&rendered.raster, &mask)
            };
            measure(&rendered.raster, &distorted, &rendered.text_mask)
        },
    );

    let mut cells: Vec<Cell> = Vec::new();
    for (li, &loss) in cfg.loss_rates.iter().enumerate() {
        for (ii, interpolated) in [false, true].into_iter().enumerate() {
            for question in [Question::Content, Question::Text] {
                let mut medians = Vec::with_capacity(pages.len());
                for k in 0..pages.len() {
                    let d = &degradations[(li * 2 + ii) * pages.len() + k];
                    let ratings = panel.rate(question, d, cfg.ratings_per_shot);
                    medians.push(crate::stats::median(&ratings));
                }
                cells.push(Cell {
                    loss,
                    interpolated,
                    question,
                    summary: BoxStats::of(&medians),
                    medians,
                });
            }
        }
    }
    cells
}

/// Looks up a cell.
pub fn cell(cells: &[Cell], loss: f64, interpolated: bool, question: Question) -> &Cell {
    cells
        .iter()
        .find(|c| {
            (c.loss - loss).abs() < 1e-9 && c.interpolated == interpolated && c.question == question
        })
        .expect("cell exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced-size shape check; the bench runs the paper-size study.
    #[test]
    fn interpolation_helps_and_loss_hurts() {
        let cfg = Config {
            n_pages: 6,
            scale: 0.1,
            loss_rates: vec![0.10, 0.50],
            raters: 31,
            ratings_per_shot: 7,
            seed: 42,
        };
        let cells = run_experiment(&cfg);
        for q in [Question::Content, Question::Text] {
            for &loss in &cfg.loss_rates {
                let with = cell(&cells, loss, true, q).summary.median;
                let without = cell(&cells, loss, false, q).summary.median;
                assert!(
                    with > without,
                    "{q:?}@{loss}: interpolation {with} must beat blackout {without}"
                );
            }
            let light = cell(&cells, 0.10, false, q).summary.median;
            let heavy = cell(&cells, 0.50, false, q).summary.median;
            assert!(light > heavy, "{q:?}: more loss must rate lower");
        }
    }
}
