//! Figure 4(c): broadcast backlog over time vs. rate and catalog size.
//!
//! Series: (10 kbps, N=100), (20 kbps, N=100), (40 kbps, N=100),
//! (20 kbps, N=200). Claims: 10 kbps rarely reaches zero but stays bounded;
//! 20/40 kbps drain; N=200@20 kbps ≈ N=100@10 kbps.

use super::sizes::{
    calibration_factor, sizes_from_corpus_with_stats, SizeConfig, SizeMeasureStats,
};
use crate::broadcast::{mean_inflow_bps, simulate, BacklogTrace};
use sonic_pagegen::{Corpus, PageId};

/// One plotted series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Series {
    /// Transmission rate in bits/second.
    pub rate_bps: u64,
    /// Catalog size (100 = the standard corpus, 200 = doubled).
    pub n_pages: usize,
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Simulated hours (paper plots 48 h of its 72 h of data).
    pub hours: u64,
    /// Render scale for the size measurements.
    pub scale: f64,
    /// Series to simulate.
    pub series: Vec<Series>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            hours: super::env_or("SONIC_FIG4C_HOURS", 48),
            scale: super::env_or("SONIC_FIG4C_SCALE", 0.15),
            series: vec![
                Series { rate_bps: 10_000, n_pages: 100 },
                Series { rate_bps: 20_000, n_pages: 100 },
                Series { rate_bps: 40_000, n_pages: 100 },
                Series { rate_bps: 20_000, n_pages: 200 },
            ],
        }
    }
}

/// Full result.
#[derive(Debug)]
pub struct Fig4cResult {
    /// (series, trace) pairs.
    pub traces: Vec<(Series, BacklogTrace)>,
    /// Mean content inflow of the N=100 catalog in bps.
    pub inflow_bps_n100: f64,
    /// Calibration factor used for sizes.
    pub calibration: f64,
    /// SWP band-cache effectiveness over the size sweep (the expensive part
    /// of the figure) — reported so the measurement cost is auditable.
    pub size_stats: SizeMeasureStats,
}

/// Builds the N-page catalog (N=200 duplicates the corpus, modeling a
/// second region's 100 pages sharing the frequency).
fn catalog(corpus: &Corpus, n: usize) -> Vec<PageId> {
    let base = corpus.pages();
    base.iter().cycle().take(n).copied().collect()
}

/// Runs the figure.
pub fn run_experiment(cfg: &Config) -> Fig4cResult {
    let corpus = Corpus::standard();
    let size_cfg = SizeConfig::paper_default();
    let calibration = calibration_factor(&corpus, cfg.scale, size_cfg, 3);
    let pages100 = catalog(&corpus, 100);
    let (sizes, size_stats) =
        sizes_from_corpus_with_stats(&corpus, &pages100, cfg.hours, cfg.scale, size_cfg, calibration);
    let inflow = mean_inflow_bps(&corpus, &pages100, &sizes, cfg.hours);

    let traces = cfg
        .series
        .iter()
        .map(|&s| {
            let pages = catalog(&corpus, s.n_pages);
            let trace = simulate(&corpus, &pages, &sizes, s.rate_bps as f64, cfg.hours);
            (s, trace)
        })
        .collect();
    Fig4cResult {
        traces,
        inflow_bps_n100: inflow,
        calibration,
        size_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced-scale shape check; the bench runs the full figure.
    #[test]
    fn rates_order_the_backlog() {
        let cfg = Config {
            hours: 24,
            scale: 0.08,
            ..Default::default()
        };
        let res = run_experiment(&cfg);
        let get = |rate: u64, n: usize| -> &BacklogTrace {
            &res.traces
                .iter()
                .find(|(s, _)| s.rate_bps == rate && s.n_pages == n)
                .expect("series")
                .1
        };
        let peak = |t: &BacklogTrace| t.hourly_backlog.iter().copied().fold(0.0f64, f64::max);
        let t10 = get(10_000, 100);
        let t20 = get(20_000, 100);
        let t40 = get(40_000, 100);
        let t20x2 = get(20_000, 200);
        assert!(peak(t10) >= peak(t20) && peak(t20) >= peak(t40), "rates must order peaks");
        // Doubling the catalog at 20 kbps looks like 10 kbps at N=100.
        assert!(
            t20x2.idle_hours <= t20.idle_hours,
            "N=200 must idle less than N=100 at the same rate"
        );
        // 40 kbps should reach zero at least sometimes.
        assert!(t40.idle_hours > 0, "40 kbps must drain");
    }
}
