//! Broadcast backlog simulation (Figure 4c).
//!
//! "Evolution over time of the amount of data to be broadcasted as a
//! function of transmission rates and number of webpages." Every hour each
//! corpus page is re-rendered; if its content changed, its bytes join the
//! backlog. The transmitter drains at the configured rate. The paper's
//! claims to reproduce: at 10 kbps the backlog rarely reaches zero but stays
//! bounded; 20/40 kbps drain to zero periodically; N=200 at 20 kbps behaves
//! like N=100 at 10 kbps.

use sonic_pagegen::{Corpus, PageId};
use std::collections::BTreeMap;

/// One backlog trace.
#[derive(Debug, Clone)]
pub struct BacklogTrace {
    /// Backlog in bytes sampled at the *end* of each hour.
    pub hourly_backlog: Vec<f64>,
    /// Total bytes enqueued over the run.
    pub total_enqueued: f64,
    /// Hours where the backlog hit zero.
    pub idle_hours: usize,
}

/// Size provider: page → broadcast bytes at a given hour.
///
/// The full pipeline (render + strip-encode) is too slow to run 100 pages ×
/// 48 hours inside a bench loop, so callers may pass measured-and-cached
/// sizes or a calibrated model; `sizes_from_corpus` below builds the cache.
pub trait SizeModel {
    /// Broadcast bytes of a page version at `hour`.
    fn bytes(&self, id: PageId, hour: u64) -> f64;
}

/// A size model backed by a per-(page, version-epoch) cache.
#[derive(Debug)]
pub struct CachedSizes {
    /// Page sizes keyed by (site, page, hour) — caller fills via closure.
    pub map: BTreeMap<(usize, usize, u64), f64>,
    /// Fallback when a key is missing.
    pub default_bytes: f64,
}

impl SizeModel for CachedSizes {
    fn bytes(&self, id: PageId, hour: u64) -> f64 {
        *self
            .map
            .get(&(id.site, id.page, hour))
            .unwrap_or(&self.default_bytes)
    }
}

/// Runs the hour-by-hour backlog recurrence.
///
/// `pages` is the broadcast catalog (N=100 uses the whole corpus; N=200
/// duplicates it, modeling a second 25-site region on the same frequency).
pub fn simulate(
    corpus: &Corpus,
    pages: &[PageId],
    sizes: &dyn SizeModel,
    rate_bps: f64,
    hours: u64,
) -> BacklogTrace {
    let drain_per_hour = rate_bps * 3600.0 / 8.0;
    let mut backlog = 0.0f64;
    let mut trace = Vec::with_capacity(hours as usize);
    let mut total = 0.0f64;
    let mut idle = 0usize;
    for hour in 0..hours {
        // New content this hour.
        for &id in pages {
            let fresh = hour == 0 || corpus.changed(id, hour - 1, hour);
            if fresh {
                let b = sizes.bytes(id, hour);
                backlog += b;
                total += b;
            }
        }
        // Drain.
        backlog = (backlog - drain_per_hour).max(0.0);
        if backlog == 0.0 {
            idle += 1;
        }
        trace.push(backlog);
    }
    BacklogTrace {
        hourly_backlog: trace,
        total_enqueued: total,
        idle_hours: idle,
    }
}

/// Mean inflow rate in bits/second implied by the corpus churn and sizes.
pub fn mean_inflow_bps(
    corpus: &Corpus,
    pages: &[PageId],
    sizes: &dyn SizeModel,
    hours: u64,
) -> f64 {
    let mut total = 0.0;
    for hour in 1..hours {
        for &id in pages {
            if corpus.changed(id, hour - 1, hour) {
                total += sizes.bytes(id, hour);
            }
        }
    }
    total * 8.0 / ((hours - 1) as f64 * 3600.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlatSizes(f64);
    impl SizeModel for FlatSizes {
        fn bytes(&self, _: PageId, _: u64) -> f64 {
            self.0
        }
    }

    fn setup() -> (Corpus, Vec<PageId>) {
        let c = Corpus::standard();
        let pages = c.pages();
        (c, pages)
    }

    #[test]
    fn higher_rate_drains_more() {
        let (c, pages) = setup();
        let sizes = FlatSizes(150_000.0);
        let slow = simulate(&c, &pages, &sizes, 10_000.0, 48);
        let fast = simulate(&c, &pages, &sizes, 40_000.0, 48);
        let peak = |t: &BacklogTrace| {
            t.hourly_backlog
                .iter()
                .copied()
                .fold(0.0f64, f64::max)
        };
        assert!(peak(&slow) > peak(&fast));
        assert!(fast.idle_hours > slow.idle_hours);
    }

    #[test]
    fn backlog_is_bounded_not_divergent() {
        let (c, pages) = setup();
        let sizes = FlatSizes(150_000.0);
        let t = simulate(&c, &pages, &sizes, 10_000.0, 96);
        // "SONIC is scalable, meaning that the amount of data to be sent
        // does not grow indefinitely": second-half peak ≈ first-half peak.
        let half = t.hourly_backlog.len() / 2;
        let peak1 = t.hourly_backlog[..half].iter().copied().fold(0.0f64, f64::max);
        let peak2 = t.hourly_backlog[half..].iter().copied().fold(0.0f64, f64::max);
        assert!(peak2 < peak1 * 1.5 + 1.0, "diverging: {peak1} -> {peak2}");
    }

    #[test]
    fn double_catalog_doubles_inflow() {
        let (c, pages) = setup();
        let sizes = FlatSizes(100_000.0);
        let single = mean_inflow_bps(&c, &pages, &sizes, 48);
        let doubled: Vec<PageId> = pages.iter().chain(pages.iter()).copied().collect();
        let double = mean_inflow_bps(&c, &doubled, &sizes, 48);
        assert!((double / single - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inflow_sits_in_the_figure_4c_regime() {
        // The paper's core Fig 4c observation: at 10 kbps the queue almost
        // never empties (daytime inflow exceeds 10 kbps) while 20–40 kbps
        // drain. With the nightly content freeze the 24 h average must land
        // just below 10 kbps (bounded) with daytime peaks above it.
        let (c, pages) = setup();
        // ~330 KB is the measured mean size of *changed* pages (changes are
        // dominated by the tall news landing pages; cf. Fig 4b tails).
        let sizes = FlatSizes(330_000.0);
        let inflow = mean_inflow_bps(&c, &pages, &sizes, 48);
        assert!(
            inflow > 7_000.0 && inflow < 13_000.0,
            "inflow {inflow} bps out of band"
        );
        // Daytime-only inflow exceeds the 10 kbps drain.
        let mut day_bytes = 0.0;
        for hour in 30..40 {
            for &id in &pages {
                if c.changed(id, hour - 1, hour) {
                    day_bytes += 330_000.0;
                }
            }
        }
        let day_bps = day_bytes * 8.0 / (10.0 * 3600.0);
        assert!(day_bps > 10_000.0, "daytime inflow {day_bps} bps");
    }

    #[test]
    fn missing_size_uses_default() {
        let sizes = CachedSizes {
            map: BTreeMap::new(),
            default_bytes: 123.0,
        };
        assert_eq!(sizes.bytes(PageId { site: 0, page: 0 }, 5), 123.0);
    }
}
