//! Constant-memory aggregation for population runs.
//!
//! A 72-hour × 100 k-listener run evaluates billions of frame fates; none
//! of them are kept. Every observation folds into [`ScenarioAggregates`]:
//! fixed-size per-RSSI-band and per-site counters (the Figure 4a analogue:
//! delivery vs signal strength) plus mergeable [`QuantileSketch`]es for the
//! per-listener-hour delivery ratio, the Figure 5 quality-rating analogue,
//! and SMS latency. Aggregate size is **independent of hours and
//! listeners** — bounded by band count, site count and the sketches' bucket
//! caps — and [`ScenarioAggregates::merge`] is the same bucket-wise fold
//! the engine applies per epoch, so partial aggregates from any split of
//! the work combine to the identical result.

use crate::report::{pct, Table};
use crate::stats::QuantileSketch;
use sonic_radio::rssi::{band_center_db, RSSI_BANDS};

/// Everything a population run retains. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioAggregates {
    /// Simulated listener-hours (listeners × hours, idle included).
    pub listener_hours: u64,
    /// Listener-hours actually spent listening (diurnal mask on).
    pub active_listener_hours: u64,
    /// Frames offered per RSSI band (delivered + corrupted + lost).
    pub band_offered: Vec<u64>,
    /// Frames decoded per RSSI band.
    pub band_delivered: Vec<u64>,
    /// Frames detected but CRC-failed per RSSI band.
    pub band_corrupted: Vec<u64>,
    /// Frames never detected (receiver muted) per RSSI band.
    pub band_lost: Vec<u64>,
    /// Frames offered per transmitter site.
    pub site_offered: Vec<u64>,
    /// Frames decoded per transmitter site.
    pub site_delivered: Vec<u64>,
    /// Active listener-hours served per site.
    pub site_listener_hours: Vec<u64>,
    /// Per-listener-hour delivery ratio, percent (Fig 4a-style CDF).
    pub ratio_pct: QuantileSketch,
    /// Per-listener-hour quality rating 1–9 (Fig 5 analogue: the paper's
    /// interpolation-on panel stays ≥ 7 through ~20 % loss; we map rating
    /// = 9 − 10·loss, clamped to [1, 9]).
    pub quality: QuantileSketch,
    /// SMS end-to-end latency, seconds.
    pub sms_latency_s: QuantileSketch,
    /// SMS segments offered to the carrier.
    pub sms_sent: u64,
    /// SMS segments delivered.
    pub sms_delivered: u64,
    /// SMS segments shed by the congested carrier.
    pub sms_shed: u64,
    /// Worst carrier utilization seen in any hour.
    pub sms_peak_utilization: f64,
    /// Full-DSP escalation runs performed.
    pub dsp_runs: u64,
    /// Frames pushed through the full DSP chain.
    pub dsp_sent: u64,
    /// Frames the full DSP chain recovered.
    pub dsp_delivered: u64,
    /// What the fast path expected those same cohort cells to deliver.
    pub dsp_fast_expected: f64,
}

impl ScenarioAggregates {
    /// Empty aggregates for a region with `sites` transmitters.
    pub fn new(sites: usize) -> ScenarioAggregates {
        ScenarioAggregates {
            listener_hours: 0,
            active_listener_hours: 0,
            band_offered: vec![0; RSSI_BANDS],
            band_delivered: vec![0; RSSI_BANDS],
            band_corrupted: vec![0; RSSI_BANDS],
            band_lost: vec![0; RSSI_BANDS],
            site_offered: vec![0; sites],
            site_delivered: vec![0; sites],
            site_listener_hours: vec![0; sites],
            ratio_pct: QuantileSketch::new(),
            quality: QuantileSketch::new(),
            sms_latency_s: QuantileSketch::new(),
            sms_sent: 0,
            sms_delivered: 0,
            sms_shed: 0,
            sms_peak_utilization: 0.0,
            dsp_runs: 0,
            dsp_sent: 0,
            dsp_delivered: 0,
            dsp_fast_expected: 0.0,
        }
    }

    /// Folds another aggregate in (bucket-wise adds + sketch merges).
    /// Associative over any split of the underlying observations.
    pub fn merge(&mut self, other: &ScenarioAggregates) {
        self.listener_hours += other.listener_hours;
        self.active_listener_hours += other.active_listener_hours;
        for (a, b) in self.band_offered.iter_mut().zip(&other.band_offered) {
            *a += b;
        }
        for (a, b) in self.band_delivered.iter_mut().zip(&other.band_delivered) {
            *a += b;
        }
        for (a, b) in self.band_corrupted.iter_mut().zip(&other.band_corrupted) {
            *a += b;
        }
        for (a, b) in self.band_lost.iter_mut().zip(&other.band_lost) {
            *a += b;
        }
        for (a, b) in self.site_offered.iter_mut().zip(&other.site_offered) {
            *a += b;
        }
        for (a, b) in self.site_delivered.iter_mut().zip(&other.site_delivered) {
            *a += b;
        }
        for (a, b) in self
            .site_listener_hours
            .iter_mut()
            .zip(&other.site_listener_hours)
        {
            *a += b;
        }
        self.ratio_pct.merge(&other.ratio_pct);
        self.quality.merge(&other.quality);
        self.sms_latency_s.merge(&other.sms_latency_s);
        self.sms_sent += other.sms_sent;
        self.sms_delivered += other.sms_delivered;
        self.sms_shed += other.sms_shed;
        self.sms_peak_utilization = self.sms_peak_utilization.max(other.sms_peak_utilization);
        self.dsp_runs += other.dsp_runs;
        self.dsp_sent += other.dsp_sent;
        self.dsp_delivered += other.dsp_delivered;
        self.dsp_fast_expected += other.dsp_fast_expected;
    }

    /// Total frames offered across all bands.
    pub fn frames_offered(&self) -> u64 {
        self.band_offered.iter().sum()
    }

    /// Total frames delivered across all bands.
    pub fn frames_delivered(&self) -> u64 {
        self.band_delivered.iter().sum()
    }

    /// Resident size of the aggregates in bytes — the number the bench
    /// holds under its constant-memory budget.
    pub fn bytes(&self) -> usize {
        let counters = (self.band_offered.len()
            + self.band_delivered.len()
            + self.band_corrupted.len()
            + self.band_lost.len()
            + self.site_offered.len()
            + self.site_delivered.len()
            + self.site_listener_hours.len())
            * std::mem::size_of::<u64>();
        counters
            + self.ratio_pct.bytes()
            + self.quality.bytes()
            + self.sms_latency_s.bytes()
            + std::mem::size_of::<ScenarioAggregates>()
    }

    /// Renders the paper-style report: a Figure 4a analogue (delivery by
    /// RSSI), a Figure 5 analogue (quality-rating quantiles), per-site
    /// coverage and the SMS table. All numbers are fixed-precision, so the
    /// text is byte-identical across replays and worker counts.
    pub fn render(&self) -> String {
        let mut out = String::new();

        out.push_str("== Fig 4a analogue: frame fate by RSSI band ==\n");
        let mut fig4 = Table::new(&["rssi", "offered", "delivered", "corrupted", "lost"]);
        // Group the half-dB bands into 3 dB rows over the interesting range.
        let group_db = 3.0;
        let mut b = 0usize;
        while b < RSSI_BANDS {
            let lo_db = band_center_db(b as u8) - 0.25;
            let mut hi = b;
            while hi + 1 < RSSI_BANDS
                && band_center_db((hi + 1) as u8) < lo_db + group_db
            {
                hi += 1;
            }
            let (mut off, mut del, mut cor, mut lost) = (0u64, 0u64, 0u64, 0u64);
            for i in b..=hi {
                off += self.band_offered[i];
                del += self.band_delivered[i];
                cor += self.band_corrupted[i];
                lost += self.band_lost[i];
            }
            if off > 0 {
                let label = format!("{:.0}..{:.0} dB", lo_db, band_center_db(hi as u8) + 0.25);
                fig4.row(&[
                    label,
                    off.to_string(),
                    pct(del as f64 / off as f64),
                    pct(cor as f64 / off as f64),
                    pct(lost as f64 / off as f64),
                ]);
            }
            b = hi + 1;
        }
        out.push_str(&fig4.render());

        out.push_str("\n== Fig 5 analogue: per listener-hour experience ==\n");
        let mut fig5 = Table::new(&["metric", "p10", "p25", "p50", "p75", "p90"]);
        for (name, sk) in [("delivery %", &self.ratio_pct), ("rating 1-9", &self.quality)] {
            fig5.row(&[
                name.to_string(),
                format!("{:.2}", sk.quantile(0.10)),
                format!("{:.2}", sk.quantile(0.25)),
                format!("{:.2}", sk.quantile(0.50)),
                format!("{:.2}", sk.quantile(0.75)),
                format!("{:.2}", sk.quantile(0.90)),
            ]);
        }
        out.push_str(&fig5.render());

        out.push_str("\n== Coverage by site ==\n");
        let mut sites = Table::new(&["site", "listener-hours", "offered", "delivered"]);
        for i in 0..self.site_offered.len() {
            sites.row(&[
                i.to_string(),
                self.site_listener_hours[i].to_string(),
                self.site_offered[i].to_string(),
                if self.site_offered[i] > 0 {
                    pct(self.site_delivered[i] as f64 / self.site_offered[i] as f64)
                } else {
                    "-".to_string()
                },
            ]);
        }
        out.push_str(&sites.render());

        out.push_str("\n== SMS uplink ==\n");
        let mut sms = Table::new(&["sent", "delivered", "shed", "peak util", "p50 s", "p99 s"]);
        sms.row(&[
            self.sms_sent.to_string(),
            self.sms_delivered.to_string(),
            if self.sms_sent > 0 {
                pct(self.sms_shed as f64 / self.sms_sent as f64)
            } else {
                "-".to_string()
            },
            format!("{:.2}", self.sms_peak_utilization),
            format!("{:.2}", self.sms_latency_s.quantile(0.50)),
            format!("{:.2}", self.sms_latency_s.quantile(0.99)),
        ]);
        out.push_str(&sms.render());

        out.push_str("\n== Totals ==\n");
        let offered = self.frames_offered();
        let delivered = self.frames_delivered();
        out.push_str(&format!(
            "listener-hours {} (active {}), frames offered {}, delivered {} ({}), aggregate bytes {}\n",
            self.listener_hours,
            self.active_listener_hours,
            offered,
            delivered,
            if offered > 0 {
                pct(delivered as f64 / offered as f64)
            } else {
                "-".to_string()
            },
            self.bytes(),
        ));
        if self.dsp_runs > 0 {
            let dsp_loss = 1.0 - self.dsp_delivered as f64 / self.dsp_sent.max(1) as f64;
            let fast_loss = 1.0 - self.dsp_fast_expected / self.dsp_sent.max(1) as f64;
            out.push_str(&format!(
                "dsp cohort: {} runs, {} frames, dsp loss {} vs fast-path {}\n",
                self.dsp_runs,
                self.dsp_sent,
                pct(dsp_loss),
                pct(fast_loss),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioAggregates {
        let mut a = ScenarioAggregates::new(3);
        a.listener_hours = 100;
        a.active_listener_hours = 40;
        a.band_offered[80] = 1_000;
        a.band_delivered[80] = 990;
        a.band_corrupted[80] = 10;
        a.site_offered[1] = 1_000;
        a.site_delivered[1] = 990;
        a.site_listener_hours[1] = 40;
        a.ratio_pct.insert(99.0);
        a.quality.insert(8.9);
        a.sms_sent = 50;
        a.sms_delivered = 50;
        a.sms_latency_s.insert(3.0);
        a
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.listener_hours, 200);
        assert_eq!(a.band_offered[80], 2_000);
        assert_eq!(a.site_delivered[1], 1_980);
        assert_eq!(a.ratio_pct.count(), 2);
        assert_eq!(a.sms_sent, 100);
    }

    #[test]
    fn merge_splits_reassemble_identically() {
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): the fold the engine relies on.
        let (a, b, c) = (sample(), sample(), sample());
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.render(), right.render());
    }

    #[test]
    fn bytes_are_bounded_and_independent_of_volume() {
        let mut a = sample();
        let before = a.bytes();
        // A million more observations into existing buckets: same size.
        for _ in 0..1_000 {
            a.band_offered[80] += 1_000;
            a.band_delivered[80] += 1_000;
        }
        assert_eq!(a.bytes(), before);
        assert!(a.bytes() < 256 * 1024, "aggregate must stay small: {}", a.bytes());
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(sample().render(), sample().render());
    }
}
