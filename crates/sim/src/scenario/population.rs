//! Zipf-ranked listener populations on the terrain.
//!
//! A country's radio audience is not uniform: it clusters in a few big
//! cities and a long tail of towns (the same Zipf shape the paper uses for
//! page popularity). [`Population::build`] places `n` listeners across
//! Zipf-weighted population centers with Gaussian urban scatter, snaps each
//! home to its serving transmitter and RSSI band once (static listeners
//! never move again — their fate cell is a constant), and elects a
//! `mobile_fraction` of commuters who shuttle between two centers on
//! waypoint routes. A mobile listener's position — and therefore its RSSI
//! band and Doppler-style drift class — is a **pure function of
//! `(seed, listener, t)`**, which is what lets the engine evaluate epochs
//! in parallel on any worker count and still replay byte-identically.

use crate::terrain::TerrainGrid;
use sonic_radio::faults::DRIFT_CLASSES;

/// SplitMix64 step (same constants as the fault machinery).
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines seed material into one hash word.
pub(crate) fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix(mix(mix(a) ^ b) ^ c)
}

/// Uniform f64 in [0,1) from a hash word.
pub(crate) fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Standard normal (approximately) from one hash word (Irwin–Hall, 4 lanes).
pub(crate) fn gauss(h: u64) -> f64 {
    let sum = (h & 0xFFFF) + ((h >> 16) & 0xFFFF) + ((h >> 32) & 0xFFFF) + ((h >> 48) & 0xFFFF);
    (sum as f64 / 65_535.0 - 2.0) / 0.577_35
}

/// One population center.
#[derive(Debug, Clone, Copy)]
pub struct City {
    /// Center, meters east.
    pub x_m: f64,
    /// Center, meters north.
    pub y_m: f64,
    /// Zipf weight (rank 0 is the capital).
    pub weight: f64,
    /// Urban scatter radius in meters (σ of listener placement).
    pub radius_m: f64,
}

/// A commuter's waypoint route: back and forth between two points at a
/// fixed speed, phase-shifted so the fleet is spread along its routes.
#[derive(Debug, Clone, Copy)]
pub struct Route {
    /// Listener index this route belongs to.
    pub listener: u32,
    /// Route start (home), meters.
    pub ax_m: f32,
    /// Route start (home), meters.
    pub ay_m: f32,
    /// Route end (destination city), meters.
    pub bx_m: f32,
    /// Route end (destination city), meters.
    pub by_m: f32,
    /// Travel speed in m/s.
    pub speed_mps: f32,
    /// Phase offset into the round trip, seconds.
    pub phase_s: f32,
    /// Doppler-style drift class while moving (index into
    /// [`sonic_radio::faults::DRIFT_CLASS_PPM`]).
    pub class: u8,
}

impl Route {
    /// Position at absolute scenario time `t_s` — a triangle wave along the
    /// segment, so the commuter shuttles A → B → A forever.
    pub fn position(&self, t_s: f64) -> (f64, f64) {
        let dx = f64::from(self.bx_m - self.ax_m);
        let dy = f64::from(self.by_m - self.ay_m);
        let len = (dx * dx + dy * dy).sqrt().max(1.0);
        let period = 2.0 * len / f64::from(self.speed_mps);
        let u = ((t_s + f64::from(self.phase_s)) / period).fract();
        let along = if u < 0.5 { 2.0 * u } else { 2.0 - 2.0 * u };
        (
            f64::from(self.ax_m) + dx * along,
            f64::from(self.ay_m) + dy * along,
        )
    }
}

/// The placed population in SoA form.
///
/// `site`/`cell` hold the *home* snapshot; the engine patches the mobile
/// subset per epoch into its own scratch copies, so this struct is shared
/// read-only across workers.
#[derive(Debug, Clone)]
pub struct Population {
    /// Home position, meters east (per listener).
    pub home_x_m: Vec<f32>,
    /// Home position, meters north (per listener).
    pub home_y_m: Vec<f32>,
    /// Serving transmitter at home (per listener).
    pub site: Vec<u8>,
    /// Fate cell at home: `band * DRIFT_CLASSES + class` (per listener).
    pub cell: Vec<u16>,
    /// Commuter routes (sparse: one entry per mobile listener, ascending
    /// listener index).
    pub routes: Vec<Route>,
    /// The population centers, Zipf rank order.
    pub cities: Vec<City>,
}

impl Population {
    /// Places `listeners` people across `n_cities` Zipf-weighted centers
    /// on the terrain, with `mobile_fraction` commuting.
    pub fn build(
        terrain: &TerrainGrid,
        listeners: usize,
        n_cities: usize,
        mobile_fraction: f64,
        seed: u64,
    ) -> Population {
        let size = terrain.size_m();
        let n_cities = n_cities.max(1);

        // Cities: each center sits near a transmitter site (relays get
        // built where people live — the capital shares the center site),
        // offset by a hashed couple of kilometers so coverage has texture.
        // Zipf weights 1/(rank+1), scatter radius shrinking with rank.
        let sites = terrain.sites();
        let mut cities = Vec::with_capacity(n_cities);
        let mut cum = Vec::with_capacity(n_cities);
        let mut total_w = 0.0;
        for rank in 0..n_cities {
            let h = mix3(seed ^ 0xC171, rank as u64, 0x01);
            let anchor = sites[rank % sites.len()];
            let x = (anchor.x_m + gauss(h) * 1_500.0).clamp(0.0, size);
            let y = (anchor.y_m + gauss(mix(h)) * 1_500.0).clamp(0.0, size);
            let weight = 1.0 / (rank as f64 + 1.0);
            let radius = size * 0.035 / (rank as f64 + 1.0).powf(0.3);
            cities.push(City {
                x_m: x,
                y_m: y,
                weight,
                radius_m: radius,
            });
            total_w += weight;
            cum.push(total_w);
        }

        let mut home_x_m = Vec::with_capacity(listeners);
        let mut home_y_m = Vec::with_capacity(listeners);
        let mut site = Vec::with_capacity(listeners);
        let mut cell = Vec::with_capacity(listeners);
        let mut routes = Vec::new();

        for l in 0..listeners {
            let lh = mix3(seed ^ 0x11F0, l as u64, 0x02);
            // Weighted city pick.
            let u = unit_f64(lh) * total_w;
            let city_idx = cum.partition_point(|&c| c < u).min(n_cities - 1);
            let city = cities[city_idx];
            // Gaussian urban scatter, clamped inside the region.
            let gx = gauss(mix3(lh, 0x0A, 0x0B));
            let gy = gauss(mix3(lh, 0x0C, 0x0D));
            let x = (city.x_m + gx * city.radius_m).clamp(0.0, size);
            let y = (city.y_m + gy * city.radius_m).clamp(0.0, size);
            let (s, rssi) = terrain.best_site(x, y);
            home_x_m.push(x as f32);
            home_y_m.push(y as f32);
            site.push(s);
            cell.push(u16::from(sonic_radio::rssi::rssi_band(rssi)) * DRIFT_CLASSES as u16);

            // Commuters: route home → another city at a hashed speed.
            let mh = mix3(seed ^ 0x30B1, l as u64, 0x03);
            if unit_f64(mh) < mobile_fraction {
                let dest = cities[(mix(mh) as usize) % n_cities];
                let speed = 1.2 + unit_f64(mix3(mh, 0x04, 0x05)) * 24.0;
                // Drift class by speed: pedestrian, bus, highway.
                let class: u8 = if speed < 3.0 {
                    1
                } else if speed < 15.0 {
                    2
                } else {
                    3
                };
                let dx = dest.x_m - x;
                let dy = dest.y_m - y;
                let len = (dx * dx + dy * dy).sqrt().max(1.0);
                let period = 2.0 * len / speed;
                routes.push(Route {
                    listener: l as u32,
                    ax_m: x as f32,
                    ay_m: y as f32,
                    bx_m: dest.x_m as f32,
                    by_m: dest.y_m as f32,
                    speed_mps: speed as f32,
                    phase_s: (unit_f64(mix3(mh, 0x06, 0x07)) * period) as f32,
                    class,
                });
            }
        }

        Population {
            home_x_m,
            home_y_m,
            site,
            cell,
            routes,
            cities,
        }
    }

    /// Number of listeners.
    pub fn len(&self) -> usize {
        self.site.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.site.is_empty()
    }

    /// Resident memory of the population state in bytes (the SoA arrays +
    /// routes) — the engine's per-listener state budget.
    pub fn state_bytes(&self) -> usize {
        self.home_x_m.len() * (4 + 4 + 1 + 2)
            + self.routes.len() * std::mem::size_of::<Route>()
            + self.cities.len() * std::mem::size_of::<City>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::{TerrainConfig, TerrainGrid};

    fn small_pop() -> (TerrainGrid, Population) {
        let t = TerrainGrid::generate(TerrainConfig::default());
        let p = Population::build(&t, 5_000, 12, 0.2, 7);
        (t, p)
    }

    #[test]
    fn build_is_deterministic() {
        let (_, a) = small_pop();
        let (_, b) = small_pop();
        assert_eq!(a.site, b.site);
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.routes.len(), b.routes.len());
    }

    #[test]
    fn population_is_zipf_clustered() {
        let (_, p) = small_pop();
        // The capital (rank 0) must hold the plurality of listeners: count
        // homes within 2σ of each center.
        let counts: Vec<usize> = p
            .cities
            .iter()
            .map(|c| {
                p.home_x_m
                    .iter()
                    .zip(&p.home_y_m)
                    .filter(|&(&x, &y)| {
                        let dx = f64::from(x) - c.x_m;
                        let dy = f64::from(y) - c.y_m;
                        (dx * dx + dy * dy).sqrt() < 2.0 * c.radius_m
                    })
                    .count()
            })
            .collect();
        let top = counts[0];
        assert!(
            counts.iter().skip(3).all(|&c| c <= top),
            "capital must outrank the tail: {counts:?}"
        );
    }

    #[test]
    fn mobile_fraction_is_respected() {
        let (_, p) = small_pop();
        let frac = p.routes.len() as f64 / p.len() as f64;
        assert!((0.15..0.25).contains(&frac), "mobile fraction {frac}");
    }

    #[test]
    fn routes_shuttle_between_endpoints() {
        let (_, p) = small_pop();
        let r = p.routes[0];
        let (x0, y0) = r.position(0.0);
        // Position stays on the segment's bounding box at all times.
        for t in [0.0, 100.0, 1_000.0, 10_000.0, 86_400.0] {
            let (x, y) = r.position(t);
            let (lo_x, hi_x) = (r.ax_m.min(r.bx_m), r.ax_m.max(r.bx_m));
            let (lo_y, hi_y) = (r.ay_m.min(r.by_m), r.ay_m.max(r.by_m));
            assert!(x >= f64::from(lo_x) - 1.0 && x <= f64::from(hi_x) + 1.0);
            assert!(y >= f64::from(lo_y) - 1.0 && y <= f64::from(hi_y) + 1.0);
        }
        // And it actually moves.
        let (x1, y1) = r.position(600.0);
        assert!((x1 - x0).abs() + (y1 - y0).abs() > 1.0, "commuter must move");
    }

    #[test]
    fn static_cells_sit_in_valid_bands() {
        let (_, p) = small_pop();
        for &c in &p.cell {
            assert_eq!(usize::from(c) % DRIFT_CLASSES, 0, "home class must be 0");
            assert!(usize::from(c) / DRIFT_CLASSES < sonic_radio::rssi::RSSI_BANDS);
        }
    }
}
