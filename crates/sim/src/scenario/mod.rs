//! Country-scale streaming scenario engine (the paper's deployment sketch
//! at population scale).
//!
//! Everything upstream of this module measures *one* receiver at a time.
//! Here the question changes: what does a 72-hour national broadcast look
//! like to 100 000 listeners spread over real-ish terrain, commuting,
//! tuning in and out with the sun, and texting a congested carrier? The
//! submodules split the problem the way the data flows:
//!
//! * [`population`] — Zipf-ranked cities, listener placement, waypoint
//!   mobility (time-varying RSSI band + Doppler-style drift class).
//! * [`engine`] — the streaming two-tier evaluator: memoized per-burst
//!   loss curves batch-evaluated over the population (fast path), with a
//!   sampled/boundary cohort escalated to the full DSP chain.
//! * [`aggregate`] — constant-memory aggregates: band/site counters and
//!   mergeable quantile sketches; the whole run's footprint is independent
//!   of hours × listeners.
//!
//! The terrain itself lives in [`crate::terrain`].

pub mod aggregate;
pub mod engine;
pub mod population;

pub use aggregate::ScenarioAggregates;
pub use engine::{run, ScenarioConfig, ScenarioReport, CAROUSEL_RATE_BPS};
pub use population::{City, Population, Route};
