//! The streaming scenario engine: 72 hours × 100 k listeners in bounded RAM.
//!
//! # Two-tier fidelity
//!
//! The engine never holds per-frame state. Each simulated hour it builds
//! the carousel schedule (Zipf-ranked pages cycling at the link rate) and a
//! per-site weather [`FaultPlan`]; each *epoch* (default 5 min) it patches
//! the mobile listeners' RSSI bands and drift classes; each carousel slot
//! it memoizes one [`BurstLossCurve`] per site — the per-burst loss curve
//! over (RSSI band × drift class) cells — and batch-evaluates every active
//! listener in one pass over the SoA arrays. One hash per listener-slot
//! (zero for deterministic cells) replaces the full DSP chain: that is the
//! **fast path**, and it is what makes 50 k+ listener-hours per second
//! possible on one core.
//!
//! A small cohort per hour (sampled uniformly + from the RSSI boundary
//! bands where the loss cliff lives) escalates to **full sample-level
//! DSP** — modulator → FM chain → demodulator via
//! [`linksim`](crate::linksim) — fanned out on
//! [`pool::run_ordered`](crate::pool::run_ordered). The cohort's measured
//! loss rides in the aggregates next to the fast path's expectation for
//! the same cells, so every report carries its own cross-check.
//!
//! # Determinism
//!
//! Every draw is a hash of `(seed, structural indices)`: no RNG state
//! threads through the run. Epochs are evaluated as independent jobs on
//! the worker pool and merged in epoch order, so reports are
//! **byte-identical for the same seed at any worker count** — asserted by
//! the `same_seed_any_worker_count` test.

use crate::linksim;
use crate::pool::{self, run_ordered};
use crate::scenario::aggregate::ScenarioAggregates;
use crate::scenario::population::{mix, mix3, unit_f64, Population};
use crate::terrain::{TerrainConfig, TerrainGrid};
use crate::workload::diurnal_factor;
use sonic_core::frame::FRAME_SIZE;
use sonic_core::link::FRAMES_PER_BURST;
use sonic_radio::faults::{Fault, FaultPlan, DRIFT_CLASSES};
use sonic_radio::rssi::{band_center_db, rssi_band, rssi_frame_loss};
use sonic_sms::CongestionModel;

/// Link rate of the broadcast carousel in bits per second (the paper's
/// §2 SONIC budget: ~10 kbit/s of page data inside the FM audio band).
pub const CAROUSEL_RATE_BPS: f64 = 10_000.0;

/// Peak diurnal factor in [`diurnal_factor`]'s curve (19:00); used to
/// normalize the curve into a listening probability.
const DIURNAL_PEAK: f64 = 1.6;

/// Scenario configuration. Start from [`ScenarioConfig::national`] or
/// [`ScenarioConfig::smoke`] and override fields.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Simulated duration in hours.
    pub hours: u32,
    /// Population size.
    pub listeners: usize,
    /// Number of Zipf-weighted population centers.
    pub cities: usize,
    /// Fraction of listeners commuting on waypoint routes.
    pub mobile_fraction: f64,
    /// Pages in the broadcast carousel (Zipf rank order).
    pub pages: usize,
    /// Carousel link rate in bits per second.
    pub rate_bps: f64,
    /// Mobility/band re-evaluation period in seconds.
    pub epoch_s: u32,
    /// Probability a listener tunes in during the diurnal peak hour.
    pub listen_peak: f64,
    /// SMS requests per listener-hour at diurnal factor 1.0.
    pub sms_per_listener_hour: f64,
    /// Carrier-core congestion model for the SMS uplink.
    pub congestion: CongestionModel,
    /// Full-DSP escalation runs per hour (0 disables the slow tier).
    pub dsp_cohort_per_hour: usize,
    /// Worker threads (0 = [`pool::default_workers`]).
    pub workers: usize,
    /// Terrain / transmitter layout.
    pub terrain: TerrainConfig,
    /// Master seed.
    pub seed: u64,
}

impl ScenarioConfig {
    /// The country-scale run the paper's deployment sketch implies:
    /// 72 hours over a 100 k-listener region, nine transmitters.
    pub fn national(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            hours: 72,
            listeners: 100_000,
            cities: 24,
            mobile_fraction: 0.18,
            pages: 120,
            rate_bps: CAROUSEL_RATE_BPS,
            epoch_s: 300,
            listen_peak: 0.55,
            sms_per_listener_hour: 0.35,
            // The gateway's SMSC slice, not the whole carrier: a dedicated
            // shortcode path serving ~8 segments/s. Evening peaks at 100 k
            // listeners push past it — minutes of queue delay and some
            // shedding — which is exactly the carrier behaviour the paper
            // reports and the congestion model exists to reproduce.
            congestion: CongestionModel {
                capacity_per_s: 8.0,
                service_s: 0.125,
                queue_limit_s: 900.0,
            },
            dsp_cohort_per_hour: 2,
            workers: 0,
            terrain: TerrainConfig { seed, ..TerrainConfig::default() },
            seed,
        }
    }

    /// A down-scaled preset for CI smoke and unit tests: 2 h × 2 000
    /// listeners, no DSP escalation.
    pub fn smoke(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            hours: 2,
            listeners: 2_000,
            cities: 6,
            mobile_fraction: 0.2,
            pages: 30,
            dsp_cohort_per_hour: 0,
            ..ScenarioConfig::national(seed)
        }
    }
}

/// One carousel slot: a page airing as one burst window.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Hour-local start time in seconds.
    t0_s: f64,
    /// Frames in the slot.
    n_frames: u32,
    /// Fate-stream nonce (unique per hour × slot).
    nonce: u64,
}

/// Result of a population run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The constant-memory aggregates.
    pub aggregates: ScenarioAggregates,
    /// Rendered paper-style tables (byte-stable across replays).
    pub text: String,
    /// Simulated listener-hours (listeners × hours).
    pub listener_hours: u64,
    /// Resident bytes of per-listener engine state (population SoA).
    pub state_bytes: usize,
}

/// Per-page frame counts: Zipf-ranked pages sized 1.2–9.8 kB.
fn page_frames(pages: usize, seed: u64) -> Vec<u32> {
    (0..pages.max(1))
        .map(|p| {
            let h = mix3(seed ^ 0x9A6E, p as u64, 0x01);
            14 + (h % 90) as u32
        })
        .collect()
}

/// The hour's carousel: pages in rank order, cycling until the hour's
/// frame budget is spent.
fn carousel_slots(pages: &[u32], hour: u32, rate_bps: f64, seed: u64) -> Vec<Slot> {
    let frame_airtime_s = FRAME_SIZE as f64 * 8.0 / rate_bps;
    let budget = (3_600.0 / frame_airtime_s) as u64;
    let mut slots = Vec::new();
    let mut used = 0u64;
    let mut t = 0.0f64;
    let mut idx = 0usize;
    while used + u64::from(pages[idx % pages.len()]) <= budget {
        let n = pages[idx % pages.len()];
        slots.push(Slot {
            t0_s: t,
            n_frames: n,
            nonce: mix3(seed ^ 0xCA40, u64::from(hour), idx as u64),
        });
        t += f64::from(n) * frame_airtime_s;
        used += u64::from(n);
        idx += 1;
    }
    slots
}

/// The weather a site sees during one hour: 0–3 deep fades (rain cells,
/// multipath episodes) and 0–2 mute windows (interference squelching the
/// tuner), all seeded from `(seed, site, hour)`.
fn weather_plan(seed: u64, site: usize, hour: u32) -> FaultPlan {
    let base = mix3(seed ^ 0x7EA7, site as u64, u64::from(hour));
    let mut faults = Vec::new();
    let n_fades = (mix(base) % 4) as usize;
    for i in 0..n_fades {
        let h = mix3(base, 0x0FAD, i as u64);
        faults.push(Fault::Fade {
            start_s: unit_f64(h) * 3_400.0,
            len_s: 30.0 + unit_f64(mix(h)) * 240.0,
            depth_db: 8.0 + unit_f64(mix(mix(h))) * 28.0,
        });
    }
    let n_mutes = (mix3(base, 0x317E, 0) % 3) as usize;
    for i in 0..n_mutes {
        let h = mix3(base, 0x317F, i as u64);
        faults.push(Fault::Mute {
            start_s: unit_f64(h) * 3_560.0,
            len_s: 2.0 + unit_f64(mix(h)) * 35.0,
        });
    }
    FaultPlan { seed: base, faults }
}

/// Listening probability for an hour of day.
fn listen_prob(cfg: &ScenarioConfig, hour: u32) -> f64 {
    (cfg.listen_peak * diurnal_factor(u64::from(hour)) / DIURNAL_PEAK).clamp(0.0, 1.0)
}

/// The hour's active-listener list (diurnal mask, pure hash per listener).
fn active_listeners(cfg: &ScenarioConfig, hour: u32) -> Vec<u32> {
    let p = listen_prob(cfg, hour);
    (0..cfg.listeners as u32)
        .filter(|&l| unit_f64(mix3(cfg.seed ^ 0xAC71, u64::from(l), u64::from(hour))) < p)
        .collect()
}

/// Output of one epoch job: partial counters + per-active-listener
/// delivered frames (summed across the epoch's slots).
struct EpochOut {
    agg: ScenarioAggregates,
    delivered: Vec<u32>,
}

/// Evaluates one epoch: patch mobile cells, then one SoA pass per slot.
#[allow(clippy::too_many_arguments)]
fn run_epoch(
    cfg: &ScenarioConfig,
    terrain: &TerrainGrid,
    pop: &Population,
    plans: &[FaultPlan],
    active: &[u32],
    slots: &[Slot],
    hour: u32,
    epoch: u32,
) -> EpochOut {
    let n_sites = terrain.sites().len();
    let mut agg = ScenarioAggregates::new(n_sites);
    let mut delivered = vec![0u32; active.len()];

    // Mobility: the epoch's snapshot of (site, cell) for commuters. Static
    // listeners keep their home snapshot — shared read-only.
    let mut site = pop.site.clone();
    let mut cell = pop.cell.clone();
    let t_mid = f64::from(hour) * 3_600.0 + (f64::from(epoch) + 0.5) * f64::from(cfg.epoch_s);
    for r in &pop.routes {
        let (x, y) = r.position(t_mid);
        let (s, rssi) = terrain.best_site(x, y);
        site[r.listener as usize] = s;
        cell[r.listener as usize] =
            u16::from(rssi_band(rssi)) * DRIFT_CLASSES as u16 + u16::from(r.class);
    }

    let frame_airtime_s = FRAME_SIZE as f64 * 8.0 / cfg.rate_bps;
    for slot in slots {
        // Tier-1 memoization: one loss curve per site for this burst.
        let curves: Vec<_> = plans
            .iter()
            .map(|p| p.burst_loss_curve(slot.t0_s, frame_airtime_s, slot.n_frames, slot.nonce))
            .collect();
        let offered = u64::from(slot.n_frames);
        // The fast path: one SoA pass over the active population.
        for (ai, &l) in active.iter().enumerate() {
            let li = l as usize;
            let c = &curves[usize::from(site[li])];
            let cl = cell[li];
            let band = (cl as usize / DRIFT_CLASSES) as u8;
            let class = (cl as usize % DRIFT_CLASSES) as u8;
            let d = c.sample_delivered(u64::from(l), band, class);
            delivered[ai] += d;
            let alive = c.n_alive;
            let b = usize::from(band);
            agg.band_offered[b] += offered;
            agg.band_delivered[b] += u64::from(d);
            agg.band_corrupted[b] += u64::from(alive - d);
            agg.band_lost[b] += offered - u64::from(alive);
            let s = usize::from(site[li]);
            agg.site_offered[s] += offered;
            agg.site_delivered[s] += u64::from(d);
        }
    }
    EpochOut { agg, delivered }
}

/// Folds the hour's SMS demand through the carrier congestion model.
fn run_sms_hour(cfg: &ScenarioConfig, active_count: usize, hour: u32, agg: &mut ScenarioAggregates) {
    let demand = active_count as f64 * cfg.sms_per_listener_hour * diurnal_factor(u64::from(hour));
    if demand < 1.0 {
        return;
    }
    let point = cfg.congestion.under_load(demand / 3_600.0);
    let sent = demand.round() as u64;
    let shed = (demand * point.shed_fraction).round() as u64;
    agg.sms_sent += sent;
    agg.sms_shed += shed;
    agg.sms_delivered += sent - shed;
    agg.sms_peak_utilization = agg.sms_peak_utilization.max(point.utilization);
    // Hourly stratified latency sample: carrier base latency + a heavy
    // tail + the hour's queue delay.
    let k = 200.min(sent as usize);
    for i in 0..k {
        let h = mix3(cfg.seed ^ 0x535A, u64::from(hour), i as u64);
        let mut lat = 2.5 + 3.0 * unit_f64(h) + point.queue_delay_s;
        if unit_f64(mix(h)) < 0.05 {
            lat += 20.0 * unit_f64(mix(mix(h)));
        }
        agg.sms_latency_s.insert(lat);
    }
}

/// Escalates a sampled + boundary cohort to the full DSP chain and records
/// measured vs fast-path-expected delivery for the same RSSI cells.
fn run_dsp_cohort(
    cfg: &ScenarioConfig,
    pop: &Population,
    active: &[u32],
    hour: u32,
    workers: usize,
    agg: &mut ScenarioAggregates,
) {
    if cfg.dsp_cohort_per_hour == 0 || active.is_empty() {
        return;
    }
    // Half uniform, half from the boundary bands around the loss cliff —
    // the cells where the fast path's calibration actually matters.
    let boundary: Vec<u32> = active
        .iter()
        .copied()
        .filter(|&l| {
            let band = pop.cell[l as usize] as usize / DRIFT_CLASSES;
            let center = band_center_db(band as u8);
            (-94.0..-84.0).contains(&center)
        })
        .take(4_096)
        .collect();
    let mut cohort = Vec::with_capacity(cfg.dsp_cohort_per_hour);
    for i in 0..cfg.dsp_cohort_per_hour {
        let h = mix3(cfg.seed ^ 0xD5BC, u64::from(hour), i as u64);
        let pick = if i % 2 == 0 || boundary.is_empty() {
            active[(h % active.len() as u64) as usize]
        } else {
            boundary[(h % boundary.len() as u64) as usize]
        };
        cohort.push((pick, h));
    }

    let profile = sonic_modem::profile::Profile::sonic_10k();
    let n_frames = FRAMES_PER_BURST;
    let runs = run_ordered(cohort, workers, |(l, h)| {
        let band = (pop.cell[l as usize] as usize / DRIFT_CLASSES) as u8;
        let rssi = band_center_db(band);
        let res = linksim::run(&profile, linksim::ChannelSetup::Fm { rssi_db: rssi }, n_frames, h);
        (band, res)
    });
    for (band, res) in runs {
        agg.dsp_runs += 1;
        agg.dsp_sent += res.frames_sent as u64;
        agg.dsp_delivered += res.frames_received as u64;
        agg.dsp_fast_expected +=
            res.frames_sent as f64 * (1.0 - rssi_frame_loss(band_center_db(band)));
    }
}

/// Runs the full scenario: the tentpole entry point.
pub fn run(cfg: &ScenarioConfig) -> ScenarioReport {
    let terrain = TerrainGrid::generate(cfg.terrain);
    let pop = Population::build(
        &terrain,
        cfg.listeners,
        cfg.cities,
        cfg.mobile_fraction,
        cfg.seed,
    );
    let workers = if cfg.workers == 0 {
        pool::default_workers()
    } else {
        cfg.workers
    };
    let pages = page_frames(cfg.pages, cfg.seed);
    let mut agg = ScenarioAggregates::new(terrain.sites().len());
    let epochs_per_hour = (3_600 / cfg.epoch_s.max(1)).max(1);

    for hour in 0..cfg.hours {
        let slots = carousel_slots(&pages, hour, cfg.rate_bps, cfg.seed);
        let plans: Vec<FaultPlan> = (0..terrain.sites().len())
            .map(|s| weather_plan(cfg.seed, s, hour))
            .collect();
        let active = active_listeners(cfg, hour);

        // Partition the hour's slots by epoch and fan the epochs out.
        let jobs: Vec<(u32, Vec<Slot>)> = (0..epochs_per_hour)
            .map(|e| {
                let lo = f64::from(e * cfg.epoch_s);
                let hi = f64::from((e + 1) * cfg.epoch_s);
                let span: Vec<Slot> = slots
                    .iter()
                    .copied()
                    .filter(|s| s.t0_s >= lo && s.t0_s < hi)
                    .collect();
                (e, span)
            })
            .collect();
        let offered_hour: u64 = slots.iter().map(|s| u64::from(s.n_frames)).sum();
        let outs = run_ordered(jobs, workers, |(e, span)| {
            run_epoch(cfg, &terrain, &pop, &plans, &active, &span, hour, e)
        });

        // Ordered merge: counters fold epoch by epoch, per-listener frames
        // sum across epochs, then the hour's experience enters the sketches.
        let mut hour_delivered = vec![0u64; active.len()];
        for out in &outs {
            agg.merge(&out.agg);
            for (acc, &d) in hour_delivered.iter_mut().zip(&out.delivered) {
                *acc += u64::from(d);
            }
        }
        agg.listener_hours += cfg.listeners as u64;
        agg.active_listener_hours += active.len() as u64;
        for (ai, &l) in active.iter().enumerate() {
            agg.site_listener_hours[usize::from(pop.site[l as usize])] += 1;
            if offered_hour > 0 {
                let ratio = hour_delivered[ai] as f64 / offered_hour as f64;
                agg.ratio_pct.insert(100.0 * ratio);
                agg.quality.insert((9.0 - 10.0 * (1.0 - ratio)).clamp(1.0, 9.0));
            }
        }

        run_sms_hour(cfg, active.len(), hour, &mut agg);
        run_dsp_cohort(cfg, &pop, &active, hour, workers, &mut agg);
    }

    let text = agg.render();
    let listener_hours = agg.listener_hours;
    ScenarioReport {
        aggregates: agg,
        text,
        listener_hours,
        state_bytes: pop.state_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carousel_fills_the_hour_with_zipf_pages() {
        let pages = page_frames(30, 1);
        let slots = carousel_slots(&pages, 0, CAROUSEL_RATE_BPS, 1);
        assert!(slots.len() > 100, "an hour holds many slots: {}", slots.len());
        let frame_airtime = FRAME_SIZE as f64 * 8.0 / CAROUSEL_RATE_BPS;
        let total: u64 = slots.iter().map(|s| u64::from(s.n_frames)).sum();
        assert!(total as f64 * frame_airtime <= 3_600.0, "must fit the hour");
        assert!(total as f64 * frame_airtime > 3_400.0, "must nearly fill it");
        // Slot times are strictly increasing and nonces unique.
        for w in slots.windows(2) {
            assert!(w[1].t0_s > w[0].t0_s);
            assert_ne!(w[0].nonce, w[1].nonce);
        }
    }

    #[test]
    fn diurnal_activity_breathes() {
        let cfg = ScenarioConfig::smoke(3);
        let night = active_listeners(&cfg, 3).len();
        let evening = active_listeners(&cfg, 19).len();
        assert!(
            evening > night * 3,
            "evening audience {evening} must dwarf 3 am {night}"
        );
    }

    #[test]
    fn smoke_run_produces_sane_aggregates() {
        let r = run(&ScenarioConfig::smoke(11));
        let a = &r.aggregates;
        assert_eq!(a.listener_hours, 4_000);
        assert!(a.active_listener_hours > 0);
        assert!(a.frames_offered() > 0);
        let rate = a.frames_delivered() as f64 / a.frames_offered() as f64;
        assert!((0.5..1.0).contains(&rate), "delivery {rate}");
        // Most listeners sit in good coverage; the fringe suffers.
        assert!(a.ratio_pct.quantile(0.75) > 90.0);
        assert!(a.quality.quantile(0.5) > 6.0);
        assert!(a.sms_sent > 0);
        assert!(r.text.contains("Fig 4a analogue"));
    }

    #[test]
    fn loss_concentrates_in_weak_bands() {
        let r = run(&ScenarioConfig::smoke(11));
        let a = &r.aggregates;
        // Clean bands (≥ −84 dB ⇒ band ≥ 52): essentially all loss is
        // weather; dead bands (≤ −94 dB): nothing survives.
        let clean_off: u64 = a.band_offered[52..].iter().sum();
        let clean_del: u64 = a.band_delivered[52..].iter().sum();
        assert!(clean_off > 0);
        assert!(clean_del as f64 / clean_off as f64 > 0.9);
        let dead_off: u64 = a.band_offered[..32].iter().sum();
        let dead_del: u64 = a.band_delivered[..32].iter().sum();
        if dead_off > 0 {
            assert!(dead_del as f64 / (dead_off as f64) < 0.05);
        }
    }

    #[test]
    fn same_seed_any_worker_count_is_byte_identical() {
        let mut texts = Vec::new();
        for workers in [1usize, 2, 8] {
            let cfg = ScenarioConfig {
                workers,
                ..ScenarioConfig::smoke(23)
            };
            let r = run(&cfg);
            texts.push(r.text);
        }
        assert_eq!(texts[0], texts[1], "1 vs 2 workers");
        assert_eq!(texts[0], texts[2], "1 vs 8 workers");
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&ScenarioConfig::smoke(1));
        let b = run(&ScenarioConfig::smoke(2));
        assert_ne!(a.text, b.text);
    }

    #[test]
    fn aggregates_stay_constant_memory_as_hours_grow() {
        let short = run(&ScenarioConfig::smoke(5));
        let long = run(&ScenarioConfig {
            hours: 8,
            ..ScenarioConfig::smoke(5)
        });
        // 4× the simulated time and observations: the counters are
        // fixed-size and the sketch buckets converge to their caps, so the
        // footprint grows strictly sublinearly (buckets still filling at
        // smoke scale) and stays under the hard budget the bench enforces
        // at full scale.
        let a = short.aggregates.bytes() as f64;
        let b = long.aggregates.bytes() as f64;
        assert!(b <= a * 2.0, "aggregate bytes {a} → {b} must grow sublinearly in hours");
        assert!(b < 131_072.0, "aggregate bytes {b} must stay under 128 kB");
    }

    /// The seeded fast-path ↔ full-DSP equivalence check the tentpole
    /// requires: across the RSSI sweep, the memoized loss curve must match
    /// what the real modulator → FM chain → demodulator measures.
    #[test]
    fn fast_path_matches_full_dsp_across_the_rssi_sweep() {
        let profile = sonic_modem::profile::Profile::sonic_10k();
        for (rssi, tol) in [(-70.0, 0.05), (-86.0, 0.15), (-88.0, 0.35), (-94.0, 0.05)] {
            let mut losses = Vec::new();
            for rep in 0..4u64 {
                let res = linksim::run(
                    &profile,
                    linksim::ChannelSetup::Fm { rssi_db: rssi },
                    2 * FRAMES_PER_BURST,
                    0x51EE ^ (rep << 8) ^ (-rssi) as u64,
                );
                losses.push(res.frame_loss);
            }
            let dsp = losses.iter().sum::<f64>() / losses.len() as f64;
            let fast = rssi_frame_loss(rssi);
            assert!(
                (dsp - fast).abs() <= tol,
                "rssi {rssi}: dsp loss {dsp:.3} vs fast path {fast:.3} (tol {tol})"
            );
        }
    }

    #[test]
    fn dsp_cohort_rides_in_the_aggregates() {
        let cfg = ScenarioConfig {
            hours: 1,
            listeners: 500,
            dsp_cohort_per_hour: 2,
            ..ScenarioConfig::smoke(9)
        };
        let r = run(&cfg);
        assert_eq!(r.aggregates.dsp_runs, 2);
        assert!(r.aggregates.dsp_sent > 0);
        assert!(r.text.contains("dsp cohort"));
    }
}
