//! Small statistics toolkit for the experiment harnesses.
//!
//! Everything above [`QuantileSketch`] operates on materialized sample
//! vectors — fine for the single-link sweeps, useless for the streaming
//! scenario engine where 10⁸ per-listener observations must fold into
//! constant memory. The sketch half of this module provides the mergeable,
//! bounded-footprint aggregates that `scenario` runs on.

use std::collections::BTreeMap;

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Linear-interpolated percentile, `p` in [0, 100].
///
/// # Panics
/// Panics on empty input or `p` outside [0, 100].
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "p in [0,100]");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = rank - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Median.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Five-number summary for boxplots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Computes the summary.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn of(xs: &[f64]) -> BoxStats {
        BoxStats {
            min: percentile(xs, 0.0),
            q1: percentile(xs, 25.0),
            median: percentile(xs, 50.0),
            q3: percentile(xs, 75.0),
            max: percentile(xs, 100.0),
        }
    }
}

impl std::fmt::Display for BoxStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:.2} | q1 {:.2} | med {:.2} | q3 {:.2} | max {:.2}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Empirical CDF: returns `(value, fraction ≤ value)` points.
pub fn cdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Value at a given CDF fraction (inverse CDF at `frac` in [0,1]).
pub fn cdf_value_at(xs: &[f64], frac: f64) -> f64 {
    percentile(xs, frac * 100.0)
}

/// Relative value accuracy of [`QuantileSketch`]: a reported quantile is
/// within `±SKETCH_ALPHA · |true value|` of the exact sample quantile.
pub const SKETCH_ALPHA: f64 = 0.01;

/// Bucket budget of one sketch. 1024 buckets at α = 1 % span a dynamic
/// range of ~10⁸ before the low-end collapse engages, and cap the sketch at
/// a few KB regardless of how many values stream through it.
pub const SKETCH_MAX_BUCKETS: usize = 1024;

/// A mergeable streaming quantile sketch (DDSketch-style logarithmic
/// buckets) for non-negative observations.
///
/// * **Bounded memory**: at most [`SKETCH_MAX_BUCKETS`] buckets plus a few
///   scalars, however many values are inserted. When the budget is
///   exceeded the lowest buckets collapse into one, preserving the
///   accuracy of the upper quantiles (the tail the scenario reports care
///   about).
/// * **Mergeable**: [`merge`](Self::merge) is bucket-wise addition — exact,
///   commutative, and associative as long as no collapse triggers, so
///   per-worker partial sketches fold into the same result in any
///   grouping. The scenario engine merges partials in fixed chunk order,
///   making reports byte-identical for any worker count even past the
///   collapse point.
/// * **Deterministic**: buckets live in a [`BTreeMap`]; iteration order and
///   the collapse rule are pure functions of the inserted multiset.
///
/// Rank guarantee: `quantile(q)` returns a value within relative
/// [`SKETCH_ALPHA`] of the exact `q`-quantile of everything inserted
/// (exactly 0 is tracked in a dedicated counter and returned exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// log(gamma) with gamma = (1+α)/(1−α); bucket i covers (γ^(i−1), γ^i].
    ln_gamma: f64,
    /// Bucket index → count. Key `i` holds values in (γ^(i−1), γ^i].
    buckets: BTreeMap<i32, u64>,
    /// Count of exact zeros (not representable by a log bucket).
    zeros: u64,
    /// Total observations, including zeros.
    count: u64,
    /// Smallest / largest value seen (exact; clamps the quantile answers).
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch at [`SKETCH_ALPHA`] relative accuracy.
    pub fn new() -> Self {
        let gamma = (1.0 + SKETCH_ALPHA) / (1.0 - SKETCH_ALPHA);
        QuantileSketch {
            ln_gamma: gamma.ln(),
            buckets: BTreeMap::new(),
            zeros: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Number of observations inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Inserts one observation. Negative or non-finite values are clamped
    /// to 0 (the scenario metrics — loss fractions, latencies, byte counts
    /// — are all non-negative by construction).
    pub fn insert(&mut self, x: f64) {
        let x = if x.is_finite() && x > 0.0 { x } else { 0.0 };
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x == 0.0 {
            self.zeros += 1;
            return;
        }
        let key = (x.ln() / self.ln_gamma).ceil() as i32;
        *self.buckets.entry(key).or_insert(0) += 1;
        if self.buckets.len() > SKETCH_MAX_BUCKETS {
            self.collapse_lowest();
        }
    }

    /// Inserts `n` copies of `x` (constant-time in `n`).
    pub fn insert_n(&mut self, x: f64, n: u64) {
        if n == 0 {
            return;
        }
        let x = if x.is_finite() && x > 0.0 { x } else { 0.0 };
        self.count += n;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x == 0.0 {
            self.zeros += n;
            return;
        }
        let key = (x.ln() / self.ln_gamma).ceil() as i32;
        *self.buckets.entry(key).or_insert(0) += n;
        if self.buckets.len() > SKETCH_MAX_BUCKETS {
            self.collapse_lowest();
        }
    }

    /// Folds `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.count += other.count;
        self.zeros += other.zeros;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&k, &n) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += n;
        }
        while self.buckets.len() > SKETCH_MAX_BUCKETS {
            self.collapse_lowest();
        }
    }

    /// Merges the two lowest buckets, preserving total count. Upper
    /// quantiles are unaffected; the collapsed low end degrades toward "no
    /// better than the second-lowest surviving bucket" — the documented
    /// trade for bounded memory.
    fn collapse_lowest(&mut self) {
        let Some((&lo, &n_lo)) = self.buckets.iter().next() else {
            return;
        };
        self.buckets.remove(&lo);
        if let Some((&lo2, _)) = self.buckets.iter().next() {
            *self.buckets.entry(lo2).or_insert(0) += n_lo;
        } else {
            self.buckets.insert(lo, n_lo); // single bucket: nothing to do
        }
    }

    /// The `q`-quantile (`q` in [0, 1]) of everything inserted, within
    /// relative [`SKETCH_ALPHA`]. Returns 0 for an empty sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic we are after (1-based).
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zeros {
            return 0.0;
        }
        let mut seen = self.zeros;
        for (&k, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Geometric midpoint of bucket (γ^(k−1), γ^k]: value with
                // relative error ≤ α against anything in the bucket.
                let mid = ((k as f64 - 0.5) * self.ln_gamma).exp();
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Approximate heap footprint in bytes (buckets dominate).
    pub fn bytes(&self) -> usize {
        // BTreeMap node overhead amortizes to roughly 2× payload.
        std::mem::size_of::<Self>() + self.buckets.len() * 2 * (4 + 8)
    }

    /// Renders `min/p50/p90/p99/max` with fixed formatting (report lines
    /// must be byte-stable across worker counts).
    pub fn summary_line(&self) -> String {
        format!(
            "min {:.3} | p50 {:.3} | p90 {:.3} | p99 {:.3} | max {:.3}",
            if self.count == 0 { 0.0 } else { self.min },
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            if self.count == 0 { 0.0 } else { self.max },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median_simple() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert!((mean(&xs) - 22.0).abs() < 1e-12);
        assert!((median(&xs) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 50.0) - 5.0).abs() < 1e-12);
        assert!((percentile(&xs, 0.0) - 0.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert!((median(&xs) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn boxstats_ordering() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = BoxStats::of(&xs);
        assert!(b.min <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.max);
        assert!((b.median - 49.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let xs = [3.0, 1.0, 2.0, 2.0];
        let c = cdf(&xs);
        assert_eq!(c.len(), 4);
        assert!((c.last().expect("non-empty").1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 > w[0].1);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_percentile_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn sketch_tracks_exact_zeros_and_extremes() {
        let mut s = QuantileSketch::new();
        for _ in 0..10 {
            s.insert(0.0);
        }
        s.insert(5.0);
        assert_eq!(s.count(), 11);
        assert_eq!(s.quantile(0.5), 0.0, "zeros dominate the median");
        assert!((s.quantile(1.0) - 5.0).abs() / 5.0 <= 2.0 * SKETCH_ALPHA);
    }

    #[test]
    fn sketch_quantiles_within_alpha_on_uniform_grid() {
        let mut s = QuantileSketch::new();
        let xs: Vec<f64> = (1..=10_000).map(|i| i as f64 * 0.01).collect();
        for &x in &xs {
            s.insert(x);
        }
        for q in [0.01, 0.25, 0.5, 0.9, 0.99] {
            let exact = percentile(&xs, q * 100.0);
            let got = s.quantile(q);
            assert!(
                (got - exact).abs() <= 2.0 * SKETCH_ALPHA * exact + 1e-9,
                "q={q}: sketch {got} vs exact {exact}"
            );
        }
    }

    #[test]
    fn sketch_merge_equals_single_stream() {
        let xs: Vec<f64> = (0..5_000).map(|i| ((i * 2654435761u64 % 997) + 1) as f64).collect();
        let mut whole = QuantileSketch::new();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.insert(x);
            if i % 2 == 0 {
                a.insert(x);
            } else {
                b.insert(x);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge must be exact bucket-wise addition");
    }

    #[test]
    fn sketch_memory_stays_bounded_under_huge_range() {
        let mut s = QuantileSketch::new();
        // Dynamic range far past what the bucket budget can represent.
        for i in 0..200_000u64 {
            s.insert(((i % 40_000) as f64 + 1.0).powf(3.0));
        }
        assert!(s.buckets.len() <= SKETCH_MAX_BUCKETS);
        assert!(s.bytes() < 64 * 1024, "bytes {}", s.bytes());
        // Upper quantiles keep their guarantee even after collapse.
        let p99 = s.quantile(0.99);
        assert!(p99 > 0.9 * 39_000f64.powf(3.0) * 0.95, "p99 {p99}");
    }

    #[test]
    fn sketch_insert_n_matches_repeated_insert() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for _ in 0..37 {
            a.insert(3.25);
        }
        b.insert_n(3.25, 37);
        assert_eq!(a, b);
    }
}
