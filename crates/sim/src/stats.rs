//! Small statistics toolkit for the experiment harnesses.

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Linear-interpolated percentile, `p` in [0, 100].
///
/// # Panics
/// Panics on empty input or `p` outside [0, 100].
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "p in [0,100]");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = rank - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Median.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Five-number summary for boxplots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Computes the summary.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn of(xs: &[f64]) -> BoxStats {
        BoxStats {
            min: percentile(xs, 0.0),
            q1: percentile(xs, 25.0),
            median: percentile(xs, 50.0),
            q3: percentile(xs, 75.0),
            max: percentile(xs, 100.0),
        }
    }
}

impl std::fmt::Display for BoxStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:.2} | q1 {:.2} | med {:.2} | q3 {:.2} | max {:.2}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Empirical CDF: returns `(value, fraction ≤ value)` points.
pub fn cdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Value at a given CDF fraction (inverse CDF at `frac` in [0,1]).
pub fn cdf_value_at(xs: &[f64], frac: f64) -> f64 {
    percentile(xs, frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median_simple() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert!((mean(&xs) - 22.0).abs() < 1e-12);
        assert!((median(&xs) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 50.0) - 5.0).abs() < 1e-12);
        assert!((percentile(&xs, 0.0) - 0.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert!((median(&xs) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn boxstats_ordering() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = BoxStats::of(&xs);
        assert!(b.min <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.max);
        assert!((b.median - 49.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let xs = [3.0, 1.0, 2.0, 2.0];
        let c = cdf(&xs);
        assert_eq!(c.len(), 4);
        assert!((c.last().expect("non-empty").1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 > w[0].1);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_percentile_panics() {
        let _ = percentile(&[], 50.0);
    }
}
