//! Synthetic terrain: transmitter sites + correlated shadowing over a
//! country-scale plane.
//!
//! The scenario engine places listeners on a square region served by a
//! handful of FM transmitters. Signal at a point is log-distance path loss
//! ([`sonic_radio::rssi::PathLoss`]) minus a *shadowing field*: correlated
//! log-normal terrain obstruction, the standard model for hills/buildings
//! between a broadcast tower and a handset tuner.
//!
//! The shadow field is **procedural**: a coarse lattice of seeded Gaussian
//! values (one SplitMix64 hash per node, Irwin–Hall shaped) bilinearly
//! interpolated to any query point. Nothing is stored — the field is a pure
//! function of `(seed, site, x, y)`, so a 100 k-listener population costs
//! zero terrain memory and replays identically on any machine or worker
//! count. Each site gets an independent field (different propagation paths
//! see different obstructions).

use sonic_radio::rssi::{rssi_band, PathLoss};

/// Hash step shared with the fault machinery (SplitMix64).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines seed material into one hash word.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix(mix(mix(a) ^ b) ^ c)
}

/// Standard normal (approximately) from one hash word: sum of four 16-bit
/// uniform lanes, Irwin–Hall shaped (σ of the sum of 4 uniforms = √(4/12)).
fn gauss(h: u64) -> f64 {
    let sum = (h & 0xFFFF) + ((h >> 16) & 0xFFFF) + ((h >> 32) & 0xFFFF) + ((h >> 48) & 0xFFFF);
    (sum as f64 / 65_535.0 - 2.0) / 0.577_35
}

/// One broadcast transmitter on the plane.
#[derive(Debug, Clone, Copy)]
pub struct TxSite {
    /// Site position, meters east of the region origin.
    pub x_m: f64,
    /// Site position, meters north of the region origin.
    pub y_m: f64,
    /// Path-loss model for this site's ERP and antenna height.
    pub path: PathLoss,
}

/// Configuration of the synthetic region.
#[derive(Debug, Clone, Copy)]
pub struct TerrainConfig {
    /// Side of the square region in meters.
    pub size_m: f64,
    /// Number of transmitter sites (1 center + a ring).
    pub sites: usize,
    /// Shadowing standard deviation in dB (log-normal σ; 4–8 typical).
    pub shadow_sigma_db: f64,
    /// Correlation length of the shadow field in meters (lattice pitch).
    pub shadow_cell_m: f64,
    /// Seed for the shadow field and site jitter.
    pub seed: u64,
}

impl Default for TerrainConfig {
    fn default() -> Self {
        // A 36 km × 36 km region — one metro area plus its hinterland —
        // served by a broadcast-class center site and a ring of relays.
        // 5.5 dB shadowing with 900 m correlation is the classic
        // suburban/hilly figure.
        TerrainConfig {
            size_m: 36_000.0,
            sites: 9,
            shadow_sigma_db: 5.5,
            shadow_cell_m: 900.0,
            seed: 1,
        }
    }
}

/// The generated region: sites + procedural shadow field.
#[derive(Debug, Clone)]
pub struct TerrainGrid {
    cfg: TerrainConfig,
    sites: Vec<TxSite>,
}

/// Broadcast-class path loss: a real FM relay (hundreds of watts, high
/// mast), not the paper's desktop TR508 exciter. −40 dB at 100 m with
/// exponent 2.9 puts the −85 dB usable edge near 3.5 km and the −92 dB
/// dead line near 6 km — a sensible relay footprint.
const SITE_PATH: PathLoss = PathLoss {
    rssi_at_ref_db: -40.0,
    ref_distance_m: 100.0,
    exponent: 2.9,
};

impl TerrainGrid {
    /// Builds the region: site 0 in the center, the rest on a ring at 40 %
    /// of the half-size with seeded angular jitter.
    pub fn generate(cfg: TerrainConfig) -> TerrainGrid {
        let n = cfg.sites.max(1);
        let half = cfg.size_m / 2.0;
        let mut sites = Vec::with_capacity(n);
        sites.push(TxSite {
            x_m: half,
            y_m: half,
            path: SITE_PATH,
        });
        let ring = half * 0.8;
        for i in 1..n {
            let frac = (i - 1) as f64 / (n - 1) as f64;
            let jitter = gauss(mix3(cfg.seed, 0x5174, i as u64)) * 0.05;
            let ang = (frac + jitter) * std::f64::consts::TAU;
            sites.push(TxSite {
                x_m: half + ring * ang.cos(),
                y_m: half + ring * ang.sin(),
                path: SITE_PATH,
            });
        }
        TerrainGrid { cfg, sites }
    }

    /// The region configuration.
    pub fn config(&self) -> &TerrainConfig {
        &self.cfg
    }

    /// The transmitter sites.
    pub fn sites(&self) -> &[TxSite] {
        &self.sites
    }

    /// Side of the square region in meters.
    pub fn size_m(&self) -> f64 {
        self.cfg.size_m
    }

    /// Shadow attenuation in dB seen from `site` at `(x, y)` — bilinear
    /// interpolation of the seeded Gaussian lattice. Positive values
    /// attenuate; the field has zero mean and σ = `shadow_sigma_db`.
    pub fn shadow_db(&self, site: usize, x_m: f64, y_m: f64) -> f64 {
        let pitch = self.cfg.shadow_cell_m.max(1.0);
        let gx = x_m / pitch;
        let gy = y_m / pitch;
        let ix = gx.floor();
        let iy = gy.floor();
        let fx = gx - ix;
        let fy = gy - iy;
        let node = |dx: i64, dy: i64| -> f64 {
            // Offset so negative coordinates stay distinct after the cast.
            let nx = (ix as i64 + dx + 0x10_0000) as u64;
            let ny = (iy as i64 + dy + 0x10_0000) as u64;
            gauss(mix3(
                self.cfg.seed ^ 0x5AAD_0000 ^ site as u64,
                nx,
                ny,
            ))
        };
        let top = node(0, 0) * (1.0 - fx) + node(1, 0) * fx;
        let bot = node(0, 1) * (1.0 - fx) + node(1, 1) * fx;
        (top * (1.0 - fy) + bot * fy) * self.cfg.shadow_sigma_db
    }

    /// Tuner RSSI in dB from `site` at `(x, y)`: path loss minus shadowing.
    pub fn rssi_db(&self, site: usize, x_m: f64, y_m: f64) -> f64 {
        let s = &self.sites[site];
        let d = (x_m - s.x_m).hypot(y_m - s.y_m);
        s.path.rssi_db(d) - self.shadow_db(site, x_m, y_m)
    }

    /// The site a receiver at `(x, y)` locks to, and the RSSI it sees.
    ///
    /// Selection is by distance (what a seek-scan settles on in practice);
    /// the returned RSSI includes that site's shadowing, so fringe
    /// listeners can still be in a shadow hole of their nearest site —
    /// exactly the coverage texture the paper's §4 sweep measures.
    pub fn best_site(&self, x_m: f64, y_m: f64) -> (u8, f64) {
        let mut best = 0usize;
        let mut best_d2 = f64::MAX;
        for (i, s) in self.sites.iter().enumerate() {
            let dx = x_m - s.x_m;
            let dy = y_m - s.y_m;
            let d2 = dx * dx + dy * dy;
            if d2 < best_d2 {
                best_d2 = d2;
                best = i;
            }
        }
        (best as u8, self.rssi_db(best, x_m, y_m))
    }

    /// Quantized RSSI band at a point (see [`sonic_radio::rssi::rssi_band`]).
    pub fn band_at(&self, x_m: f64, y_m: f64) -> (u8, u8) {
        let (site, rssi) = self.best_site(x_m, y_m);
        (site, rssi_band(rssi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = TerrainGrid::generate(TerrainConfig::default());
        let b = TerrainGrid::generate(TerrainConfig::default());
        for (x, y) in [(1_000.0, 2_000.0), (18_000.0, 18_000.0), (30_000.0, 5_000.0)] {
            assert_eq!(a.rssi_db(0, x, y), b.rssi_db(0, x, y));
            assert_eq!(a.best_site(x, y), b.best_site(x, y));
        }
    }

    #[test]
    fn shadow_field_is_correlated_but_not_constant() {
        let t = TerrainGrid::generate(TerrainConfig::default());
        // Nearby points (well under the correlation length) agree closely…
        let a = t.shadow_db(0, 10_000.0, 10_000.0);
        let b = t.shadow_db(0, 10_050.0, 10_000.0);
        assert!((a - b).abs() < 2.0, "50 m apart: {a} vs {b}");
        // …and the field varies across the region with roughly the right σ.
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut n = 0.0;
        for i in 0..40 {
            for j in 0..40 {
                let v = t.shadow_db(0, i as f64 * 900.0, j as f64 * 900.0);
                sum += v;
                sum2 += v * v;
                n += 1.0;
            }
        }
        let mean = sum / n;
        let sd = (sum2 / n - mean * mean).sqrt();
        assert!(mean.abs() < 1.0, "shadow mean {mean}");
        assert!((3.0..8.0).contains(&sd), "shadow σ {sd}");
    }

    #[test]
    fn sites_see_independent_shadows() {
        let t = TerrainGrid::generate(TerrainConfig::default());
        let a = t.shadow_db(0, 9_000.0, 9_000.0);
        let b = t.shadow_db(1, 9_000.0, 9_000.0);
        assert!((a - b).abs() > 1e-6, "site fields must differ");
    }

    #[test]
    fn center_is_strong_and_the_far_corner_is_fringe() {
        let t = TerrainGrid::generate(TerrainConfig::default());
        let half = t.size_m() / 2.0;
        let (_, center) = t.best_site(half, half - 300.0);
        assert!(center > -70.0, "near the center site: {center}");
        // A point at the exact corner is ~7 km from the nearest ring site:
        // fringe or dead, never clean.
        let (_, corner) = t.best_site(10.0, 10.0);
        assert!(corner < -80.0, "far corner: {corner}");
    }

    #[test]
    fn best_site_picks_the_nearest_tower() {
        let t = TerrainGrid::generate(TerrainConfig::default());
        let s1 = t.sites()[1];
        let (site, _) = t.best_site(s1.x_m, s1.y_m);
        assert_eq!(site, 1);
    }
}
