//! Minimal discrete-event simulation core.
//!
//! Drives the end-to-end day-in-the-life simulations: SMS requests arrive,
//! the server renders and enqueues, transmitters drain, clients receive.
//! Events are `(time, tag)` pairs; the caller interprets tags.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event with an opaque payload.
#[derive(Debug, Clone)]
pub struct Event<T> {
    /// Absolute time in seconds.
    pub time: f64,
    /// Payload.
    pub payload: T,
    seq: u64,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Event<T> {}
impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by time; FIFO among equal times.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite times")
            .then(other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue + clock.
#[derive(Debug)]
pub struct Simulator<T> {
    heap: BinaryHeap<Event<T>>,
    now: f64,
    seq: u64,
}

impl<T> Default for Simulator<T> {
    fn default() -> Self {
        Simulator {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }
}

impl<T> Simulator<T> {
    /// Creates an empty simulator at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules a payload at an absolute time.
    ///
    /// # Panics
    /// Panics if `time` is in the past.
    pub fn schedule_at(&mut self, time: f64, payload: T) {
        assert!(time >= self.now, "cannot schedule in the past");
        self.seq += 1;
        self.heap.push(Event {
            time,
            payload,
            seq: self.seq,
        });
    }

    /// Schedules `dt` seconds from now.
    pub fn schedule_in(&mut self, dt: f64, payload: T) {
        let t = self.now + dt.max(0.0);
        self.schedule_at(t, payload);
    }

    /// Pops the next event, advancing the clock.
    #[allow(clippy::should_implement_trait)] // advances the simulation clock, not a plain iterator
    pub fn next(&mut self) -> Option<Event<T>> {
        let e = self.heap.pop()?;
        self.now = e.time;
        Some(e)
    }

    /// Pending event count.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule_at(5.0, "b");
        sim.schedule_at(1.0, "a");
        sim.schedule_at(9.0, "c");
        let order: Vec<&str> = std::iter::from_fn(|| sim.next().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(sim.now(), 9.0);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut sim = Simulator::new();
        sim.schedule_at(1.0, 1);
        sim.schedule_at(1.0, 2);
        sim.schedule_at(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| sim.next().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut sim = Simulator::new();
        sim.schedule_at(10.0, "x");
        sim.next();
        sim.schedule_in(5.0, "y");
        let e = sim.next().expect("y");
        assert_eq!(e.time, 15.0);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn past_scheduling_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(10.0, ());
        sim.next();
        sim.schedule_at(5.0, ());
    }
}
