//! Link-level experiment runner: frames → modem → channel chain → frames.
//!
//! This is the measurement harness behind Figure 4(a) (acoustic distance)
//! and the §4 "Variable RSSI" sweep. The full physical path is exercised:
//! SONIC frames are batched into OFDM bursts, optionally carried over the
//! software FM chain at a chosen RSSI, then over the acoustic hop at a
//! chosen distance, and demodulated back.

use sonic_core::frame::Frame;
use sonic_core::link::{self, FRAMES_PER_BURST};
use sonic_modem::profile::Profile;
use sonic_radio::channel::AcousticChannel;
use sonic_radio::stack::FmLink;

/// Which physical path the frames take after the modem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelSetup {
    /// Audio jack / integrated tuner: bit-exact audio.
    Cable,
    /// Loudspeaker → air → microphone at a distance in meters.
    Acoustic {
        /// Speaker-to-mic distance in meters.
        distance_m: f64,
    },
    /// FM RF hop at an RSSI, received in "cable" mode (§4 Variable RSSI).
    Fm {
        /// Tuner-reported RSSI in dB.
        rssi_db: f64,
    },
    /// FM RF hop then an over-the-air audio hop (worst case).
    FmThenAcoustic {
        /// Tuner RSSI in dB.
        rssi_db: f64,
        /// Speaker-to-mic distance in meters.
        distance_m: f64,
    },
}

/// Result of one link run.
#[derive(Debug, Clone)]
pub struct LinkRunResult {
    /// Frames offered to the channel.
    pub frames_sent: usize,
    /// Frames recovered with valid CRC.
    pub frames_received: usize,
    /// PHY bursts that failed entirely.
    pub bursts_failed: usize,
    /// Frame loss rate in [0,1].
    pub frame_loss: f64,
}

/// Deterministic filler frames for loss measurements.
pub fn test_frames(n: usize, seed: u8) -> Vec<Frame> {
    (0..n)
        .map(|i| Frame::Strip {
            page_id: 0x51_4E_49_43, // arbitrary constant id
            column: (i % 1080) as u16,
            seq: (i / 1080) as u16,
            last: false,
            payload: (0..86)
                .map(|k| (k as u8).wrapping_mul(31).wrapping_add(seed).wrapping_add(i as u8))
                .collect(),
        })
        .collect()
}

/// Mono audio level fed into the FM multiplexer.
///
/// Pre-emphasis boosts 9.2 kHz ~3×, and OFDM has ~10 dB PAPR; 0.08 RMS in
/// keeps composite peaks under full deviation without clipping.
const FM_INPUT_RMS: f32 = 0.08;

fn scale_to_rms(audio: &mut [f32], target: f32) {
    let rms = (audio.iter().map(|&x| x * x).sum::<f32>() / audio.len().max(1) as f32).sqrt();
    if rms > 1e-12 {
        let g = target / rms;
        for v in audio.iter_mut() {
            *v *= g;
        }
    }
}

/// Runs `n_frames` frames through the configured chain.
pub fn run(profile: &Profile, setup: ChannelSetup, n_frames: usize, seed: u64) -> LinkRunResult {
    let frames = test_frames(n_frames, seed as u8);
    let mut audio = link::modulate(profile, &frames);

    let received_audio = match setup {
        ChannelSetup::Cable => audio,
        ChannelSetup::Acoustic { distance_m } => {
            AcousticChannel::new(distance_m, seed).transmit(&audio)
        }
        ChannelSetup::Fm { rssi_db } => {
            scale_to_rms(&mut audio, FM_INPUT_RMS);
            FmLink::new(rssi_db, seed).transmit(&audio, None).mono
        }
        ChannelSetup::FmThenAcoustic {
            rssi_db,
            distance_m,
        } => {
            scale_to_rms(&mut audio, FM_INPUT_RMS);
            let mono = FmLink::new(rssi_db, seed).transmit(&audio, None).mono;
            AcousticChannel::new(distance_m, seed ^ 0x5A5A).transmit(&mono)
        }
    };

    let (got, stats) = link::demodulate(profile, &received_audio);
    let frames_received = got.len().min(n_frames);
    LinkRunResult {
        frames_sent: n_frames,
        frames_received,
        bursts_failed: stats.bursts_failed
            + n_frames.div_ceil(FRAMES_PER_BURST).saturating_sub(stats.bursts_detected),
        frame_loss: 1.0 - frames_received as f64 / n_frames.max(1) as f64,
    }
}

/// Runs `n_frames` frames over the FM chain with a [`FaultPlan`] injected
/// on the RF hop (impulses, co-channel interferer, mutes, clock drift,
/// fades — see `sonic_radio::faults`). With an empty plan this is exactly
/// [`run`] with [`ChannelSetup::Fm`].
pub fn run_fm_with_faults(
    profile: &Profile,
    rssi_db: f64,
    n_frames: usize,
    seed: u64,
    faults: sonic_radio::faults::FaultPlan,
) -> LinkRunResult {
    let frames = test_frames(n_frames, seed as u8);
    let mut audio = link::modulate(profile, &frames);
    scale_to_rms(&mut audio, FM_INPUT_RMS);
    let received_audio = FmLink::new(rssi_db, seed)
        .with_faults(faults)
        .transmit(&audio, None)
        .mono;
    let (got, stats) = link::demodulate(profile, &received_audio);
    let frames_received = got.len().min(n_frames);
    LinkRunResult {
        frames_sent: n_frames,
        frames_received,
        bursts_failed: stats.bursts_failed
            + n_frames.div_ceil(FRAMES_PER_BURST).saturating_sub(stats.bursts_detected),
        frame_loss: 1.0 - frames_received as f64 / n_frames.max(1) as f64,
    }
}

/// One independent receiver run in a batch.
#[derive(Debug, Clone, Copy)]
pub struct LinkJob {
    /// Channel chain to exercise.
    pub setup: ChannelSetup,
    /// Frames offered.
    pub n_frames: usize,
    /// Channel RNG seed (fully determines the run together with the setup).
    pub seed: u64,
}

/// Runs a batch of independent link jobs on the worker pool, returning one
/// result per job **in job order**.
///
/// Every job is a pure function of `(profile, setup, n_frames, seed)` — each
/// run seeds its own channel RNG — so `run_batch` returns exactly what
/// calling [`run`] in a loop would, independent of worker count. This is the
/// receiver fan-out behind the RSSI sweep and Figure 4(a): the sweeps build
/// their full point × repetition job list and hand it here.
pub fn run_batch(profile: &Profile, jobs: Vec<LinkJob>) -> Vec<LinkRunResult> {
    run_batch_on(profile, jobs, crate::pool::default_workers())
}

/// [`run_batch`] with an explicit worker count (1 = serial; used by the
/// determinism tests).
pub fn run_batch_on(profile: &Profile, jobs: Vec<LinkJob>, workers: usize) -> Vec<LinkRunResult> {
    crate::pool::run_ordered(jobs, workers, |job| {
        run(profile, job.setup, job.n_frames, job.seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_are_worker_count_independent() {
        let profile = Profile::sonic_10k();
        let jobs: Vec<LinkJob> = (0..4)
            .map(|i| LinkJob {
                setup: ChannelSetup::Fm {
                    rssi_db: -86.0 - i as f64,
                },
                n_frames: FRAMES_PER_BURST,
                seed: 0xBA7C ^ i,
            })
            .collect();
        let serial = run_batch_on(&profile, jobs.clone(), 1);
        let parallel = run_batch_on(&profile, jobs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.frames_received, b.frames_received);
            assert_eq!(a.bursts_failed, b.bursts_failed);
            assert_eq!(a.frame_loss, b.frame_loss);
        }
    }

    #[test]
    fn zero_fault_plan_matches_plain_fm_run() {
        use sonic_radio::faults::FaultPlan;
        let profile = Profile::sonic_10k();
        let plain = run(&profile, ChannelSetup::Fm { rssi_db: -86.0 }, 40, 7);
        let empty = run_fm_with_faults(&profile, -86.0, 40, 7, FaultPlan::none());
        assert_eq!(plain.frames_received, empty.frames_received);
        assert_eq!(plain.bursts_failed, empty.bursts_failed);
        assert_eq!(plain.frame_loss, empty.frame_loss);
    }

    #[test]
    fn hostile_faults_degrade_a_clean_link() {
        use sonic_radio::faults::FaultPlan;
        let profile = Profile::sonic_10k();
        let clean = run(&profile, ChannelSetup::Fm { rssi_db: -70.0 }, 80, 6);
        let faulty = run_fm_with_faults(&profile, -70.0, 80, 6, FaultPlan::hostile(9));
        assert_eq!(clean.frame_loss, 0.0, "{clean:?}");
        assert!(
            faulty.frame_loss > 0.0,
            "hostile plan must cost frames: {faulty:?}"
        );
    }

    #[test]
    fn cable_is_lossless() {
        let r = run(&Profile::sonic_10k(), ChannelSetup::Cable, 80, 1);
        assert_eq!(r.frame_loss, 0.0, "cable must not lose frames: {r:?}");
    }

    #[test]
    fn strong_fm_link_is_lossless() {
        let r = run(
            &Profile::sonic_10k(),
            ChannelSetup::Fm { rssi_db: -70.0 },
            80,
            2,
        );
        assert_eq!(r.frame_loss, 0.0, "{r:?}");
    }

    #[test]
    fn dead_fm_link_loses_everything() {
        let r = run(
            &Profile::sonic_10k(),
            ChannelSetup::Fm { rssi_db: -100.0 },
            40,
            3,
        );
        assert!(r.frame_loss > 0.95, "{r:?}");
    }

    #[test]
    fn close_acoustic_hop_mostly_works() {
        let r = run(
            &Profile::sonic_10k(),
            ChannelSetup::Acoustic { distance_m: 0.1 },
            80,
            4,
        );
        assert!(r.frame_loss < 0.1, "{r:?}");
    }

    #[test]
    fn far_acoustic_hop_fails() {
        let r = run(
            &Profile::sonic_10k(),
            ChannelSetup::Acoustic { distance_m: 1.4 },
            40,
            5,
        );
        assert!(r.frame_loss > 0.9, "{r:?}");
    }
}
