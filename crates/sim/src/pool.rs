//! Deterministic worker pool for experiment fan-out.
//!
//! The paper's evaluation sweeps many independent receivers (RSSI points ×
//! repetitions, distances × repetitions, pages × loss rates). Each job is a
//! pure function of its inputs — the channel RNG is seeded per job — so they
//! can run on any thread in any order without changing a single result.
//! [`run_ordered`] fans a job list over a pool of scoped workers connected by
//! **bounded** crossbeam channels (the same back-pressure pattern as the
//! broadcast pipeline in `sonic-core`'s `server::pipeline`), and a
//! sequence-tagged reorder buffer yields the outputs in job order. The
//! returned vector is therefore identical to `jobs.into_iter().map(f)` no
//! matter how many workers run — seed-stable parallelism, not racy speedup.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::BTreeMap;

/// Default worker count: `SONIC_SIM_WORKERS` if set, else the machine's
/// available parallelism. A value of 1 disables threading entirely.
pub fn default_workers() -> usize {
    std::env::var("SONIC_SIM_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1)
}

/// Runs `f` over every job on `workers` threads, returning the results in
/// job order. Equivalent to `jobs.into_iter().map(f).collect()` for pure
/// `f`; worker count changes only the wall-clock time.
pub fn run_ordered<I, O, F>(jobs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let total = jobs.len();
    let workers = workers.max(1).min(total.max(1));
    if workers == 1 {
        return jobs.into_iter().map(f).collect();
    }

    // Bounded queues: the feeder stalls when workers fall behind, and the
    // workers stall when the sink does, so in-flight memory stays O(workers).
    let depth = workers * 2;
    let (job_tx, job_rx) = bounded::<(usize, I)>(depth);
    let (out_tx, out_rx) = bounded::<(usize, O)>(depth);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx: Receiver<(usize, I)> = job_rx.clone();
            let out_tx: Sender<(usize, O)> = out_tx.clone();
            let f = &f;
            scope.spawn(move || {
                for (seq, job) in job_rx {
                    if out_tx.send((seq, f(job))).is_err() {
                        return;
                    }
                }
            });
        }
        // The scope keeps the clones alive inside the workers; drop ours so
        // the channels close once the feeder finishes and workers drain.
        drop(job_rx);
        drop(out_tx);

        scope.spawn(move || {
            for (seq, job) in jobs.into_iter().enumerate() {
                if job_tx.send((seq, job)).is_err() {
                    return;
                }
            }
        });

        // Reorder sink: emit strictly by sequence number.
        let mut pending: BTreeMap<usize, O> = BTreeMap::new();
        let mut out: Vec<O> = Vec::with_capacity(total);
        let mut next = 0usize;
        for (seq, o) in out_rx {
            pending.insert(seq, o);
            while let Some(v) = pending.remove(&next) {
                out.push(v);
                next += 1;
            }
        }
        assert!(pending.is_empty(), "worker pool lost results");
        assert_eq!(out.len(), total, "worker pool lost results");
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_for_any_worker_count() {
        let jobs: Vec<u64> = (0..97).collect();
        let want: Vec<u64> = jobs.iter().map(|&x| x.wrapping_mul(2654435761) >> 7).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = run_ordered(jobs.clone(), workers, |x| x.wrapping_mul(2654435761) >> 7);
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_job_lists() {
        assert!(run_ordered(Vec::<u8>::new(), 4, |x| x).is_empty());
        assert_eq!(run_ordered(vec![7u8], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_job_costs_still_come_back_in_order() {
        // Early jobs sleep longest so completion order inverts input order.
        let jobs: Vec<u64> = (0..16).collect();
        let got = run_ordered(jobs, 8, |x| {
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            x
        });
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
