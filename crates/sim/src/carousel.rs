//! Incremental delta-carousel and warm-restart harnesses.
//!
//! Three closed loops over the server's tiered refresh path:
//!
//! * [`run_delta_carousel`] — hour-by-hour corpus churn where changed pages
//!   air only their delta frames (meta bracket + changed columns). The
//!   synthetic corpus swaps full-width sections, so a changed page's delta
//!   covers every column — the air win in this regime is the unchanged
//!   pages airing nothing, and the report proves the delta path never costs
//!   more than a full carousel.
//! * [`run_ticker_carousel`] — seeded partial-width updates (a ticker or
//!   sidebar column band changes, the rest of the page is untouched): the
//!   regime where column-granular deltas cut air bytes outright and
//!   receivers patch the un-aired columns from their cached prior raster.
//! * [`run_warm_restart`] — builds an hour's corpus into a disk-backed
//!   [`ArtifactStore`], drops every in-RAM handle, reopens the store from
//!   its index log, and refreshes again: every page must be served by
//!   promotion from disk, not re-rendered.
//!
//! Every receiver decode goes through the production [`Reassembler`] and is
//! verified pixel-identical to a lossless decode of the server's artifact.
//! Everything is deterministic: logical hours drive versioning, mutation
//! patterns come from a seeded LCG, maps are `BTreeMap`, and no wall clock
//! is consulted — timing belongs to the bench harness, not this module.

use sonic_core::reassembly::{Reassembler, ReassemblerConfig};
use sonic_core::server::cache::{share_store, ArtifactCache, TieredCache};
use sonic_core::server::pipeline::{
    carousel_page_with, refresh_carousel, refresh_pages, CarouselItem, CarouselSlot, PageJob,
    RenderedContent,
};
use sonic_core::server::render::Renderer;
use sonic_core::server::scheduler::BroadcastScheduler;
use sonic_core::server::store::ArtifactStore;
use sonic_image::hash::Fnv64;
use sonic_image::raster::{Raster, Rgb};
use sonic_image::strip;
use sonic_modem::profile::Profile;
use sonic_pagegen::Corpus;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// What an incremental carousel run did, and whether every receiver decode
/// matched the server's artifacts. Same inputs ⇒ same report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaCarouselReport {
    /// Revolutions simulated after the cold build.
    pub hours: u64,
    /// Pages in the catalog.
    pub pages: usize,
    /// Full-page slots aired (cold builds: genuinely new content).
    pub full_slots: usize,
    /// Delta slots aired (changed pages with a cached basis).
    pub delta_slots: usize,
    /// Page-revolutions where nothing aired (unchanged).
    pub unchanged: usize,
    /// Air bytes a naive carousel would spend (full frames for every
    /// changed page).
    pub air_bytes_full_carousel: usize,
    /// Air bytes the incremental carousel actually spent.
    pub air_bytes_incremental: usize,
    /// Receiver decodes that did not match the server artifact — must be 0.
    pub decode_mismatches: usize,
    /// Columns receivers patched from their cached prior rasters.
    pub columns_patched: usize,
}

/// Airs one revolution's slots through a [`BroadcastScheduler`], reassembles
/// every aired page with the production receiver, patches deliberately
/// un-aired columns from the client's prior rasters and verifies each
/// result against a lossless decode of the server artifact.
fn air_and_verify(
    items: &[CarouselItem],
    client: &mut BTreeMap<String, Raster>,
    report: &mut DeltaCarouselReport,
    count_air: bool,
) {
    let mut sched = BroadcastScheduler::new(10_000.0);
    for item in items {
        match &item.slot {
            CarouselSlot::Unchanged => {}
            CarouselSlot::Full => {
                sched.enqueue_prechunked(
                    item.artifact.page.clone(),
                    item.artifact.frames.clone(),
                    0.0,
                );
            }
            CarouselSlot::Delta { frames, .. } => {
                sched.enqueue_delta(item.artifact.page.clone(), frames.clone(), 0.0);
            }
        }
    }
    let mut rx = Reassembler::with_config(ReassemblerConfig {
        max_bytes: usize::MAX / 2,
        max_pages: usize::MAX / 2,
        page_deadline_s: f64::INFINITY,
        ..ReassemblerConfig::default()
    });
    loop {
        let frames = sched.advance(60.0);
        if frames.is_empty() {
            break;
        }
        for f in frames {
            rx.push_at(f, 0.0);
        }
    }
    for item in items {
        let aired_frames = match &item.slot {
            CarouselSlot::Unchanged => None,
            CarouselSlot::Full => Some(item.artifact.frames.len()),
            CarouselSlot::Delta { frames, .. } => Some(frames.len()),
        };
        let Some(aired) = aired_frames else { continue };
        if count_air {
            report.air_bytes_full_carousel +=
                item.artifact.frames.len() * sonic_core::frame::FRAME_SIZE;
            report.air_bytes_incremental += aired * sonic_core::frame::FRAME_SIZE;
        }
        let Some(Ok(mut page)) = rx.take(item.artifact.page.page_id) else {
            report.decode_mismatches += 1;
            continue;
        };
        // Columns the carousel deliberately did not air are wholly lost
        // at the receiver; its cached prior raster fills them.
        if let Some(prior) = client.get(&page.url) {
            report.columns_patched += page.patch_from_prior(prior);
        }
        let reference = strip::decode(&item.artifact.page.strips);
        if page.raster != reference
            || page.url != item.artifact.page.url
            || page.version != item.artifact.page.version
        {
            report.decode_mismatches += 1;
        }
        client.insert(page.url.clone(), page.raster);
    }
}

/// Runs `hours` carousel revolutions (after a cold build at `start_hour`)
/// over the whole corpus at `scale`, verifying every receiver decode.
/// Synthetic corpora freeze content overnight — start at hour ≥ 6 to see
/// churn.
pub fn run_delta_carousel(
    corpus: Corpus,
    scale: f64,
    start_hour: u64,
    hours: u64,
) -> DeltaCarouselReport {
    let renderer = Renderer::new(corpus, scale);
    let profile = Profile::sonic_10k();
    let mut cache = ArtifactCache::unbounded();
    let pages = renderer.corpus().pages();
    let mut report = DeltaCarouselReport {
        pages: pages.len(),
        hours,
        ..DeltaCarouselReport::default()
    };
    // Receiver-side prior rasters, keyed by URL (what a client caches).
    let mut client: BTreeMap<String, Raster> = BTreeMap::new();
    for hour in start_hour..=start_hour + hours {
        let jobs: Vec<PageJob> = pages.iter().map(|&id| PageJob { id, hour }).collect();
        let (items, stats) = refresh_carousel(&renderer, &mut cache, &jobs, &profile);
        let warm = hour > start_hour;
        if warm {
            report.full_slots += stats.full_slots;
            report.delta_slots += stats.delta_slots;
            report.unchanged += stats.unchanged;
        }
        air_and_verify(&items, &mut client, &mut report, warm);
    }
    report
}

/// A deterministic LCG step (the repo's test-randomness idiom).
fn lcg(x: u64) -> u64 {
    x.wrapping_mul(1103515245).wrapping_add(12345)
}

/// Runs `hours` ticker-style revolutions: each hour a seeded half of the
/// catalog gets a vertical band of `frac · width` columns overwritten (a
/// ticker/sidebar update) while every other column is untouched. Changed
/// pages therefore take delta slots that skip the unchanged columns — the
/// partial-width regime the incremental carousel is built for.
pub fn run_ticker_carousel(
    corpus: Corpus,
    scale: f64,
    hours: u64,
    frac: f64,
) -> DeltaCarouselReport {
    let profile = Profile::sonic_10k();
    let mut cache = ArtifactCache::unbounded();
    let ids = corpus.pages();
    let mut report = DeltaCarouselReport {
        pages: ids.len(),
        hours,
        ..DeltaCarouselReport::default()
    };
    // Server-side current page state: raster + a content revision counter
    // (ticker updates accumulate; an untouched page keeps its last state).
    let mut state: BTreeMap<(usize, usize), (RenderedContent, u64)> = BTreeMap::new();
    for &id in &ids {
        let r = corpus.render(id, 0, scale);
        state.insert(
            (id.site, id.page),
            (
                RenderedContent {
                    url: r.url,
                    raster: r.raster,
                    clickmap: r.clickmap,
                    version: 0,
                    ttl_hours: 24,
                },
                0,
            ),
        );
    }
    let mut client: BTreeMap<String, Raster> = BTreeMap::new();
    for rev in 0..=hours {
        let mut items = Vec::with_capacity(ids.len());
        for &id in &ids {
            let slot = state
                .get_mut(&(id.site, id.page))
                .unwrap_or_else(|| unreachable!("state seeded for every page"));
            let (content, revision) = slot;
            let nonce = lcg(lcg(rev ^ ((id.site as u64) << 17) ^ ((id.page as u64) << 5)));
            if rev > 0 && nonce.is_multiple_of(2) {
                // Overwrite a wrapped band of columns with hour-seeded noise.
                let w = content.raster.width();
                let h = content.raster.height();
                let band = ((w as f64 * frac) as usize).max(1);
                let off = (lcg(nonce) % w as u64) as usize;
                for i in 0..band {
                    let x = (off + i) % w;
                    for y in 0..h {
                        let v = lcg(nonce ^ ((x as u64) << 32) ^ y as u64);
                        content.raster.set(
                            x,
                            y,
                            Rgb::new((v >> 8) as u8, (v >> 16) as u8, (v >> 24) as u8),
                        );
                    }
                }
                *revision += 1;
                content.version = (*revision % u16::MAX as u64) as u16;
            }
            let lh = Fnv64::new()
                .write(content.url.as_bytes())
                .write_u64(*revision)
                .finish();
            let rendered = content.clone();
            let item = carousel_page_with(&mut cache, id, lh, rev, &profile, move || rendered);
            items.push(item);
        }
        if rev > 0 {
            let stats = sonic_core::server::pipeline::carousel_stats(&items);
            report.full_slots += stats.full_slots;
            report.delta_slots += stats.delta_slots;
            report.unchanged += stats.unchanged;
        }
        air_and_verify(&items, &mut client, &mut report, rev > 0);
    }
    report
}

/// What a warm restart did versus the cold boot that seeded it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarmRestartReport {
    /// Pages refreshed in each phase.
    pub pages: usize,
    /// Cold misses in the boot phase (every page, on an empty store).
    pub cold_misses: u64,
    /// Pages served by disk promotion after the restart — must equal
    /// `pages` for a clean store.
    pub promoted: u64,
    /// Misses after the restart — must be 0.
    pub warm_misses: u64,
    /// Entries in the reopened store's index.
    pub store_entries: usize,
    /// Live blob bytes in the reopened store.
    pub store_bytes: u64,
}

/// Cold-boots an hour's corpus into a disk store at `dir`, drops all RAM
/// state, reopens the store (index-log rebuild) and refreshes the same
/// hour again through a fresh RAM tier.
pub fn run_warm_restart(
    corpus: Corpus,
    scale: f64,
    hour: u64,
    dir: &Path,
    byte_budget: u64,
) -> io::Result<WarmRestartReport> {
    let renderer = Renderer::new(corpus, scale);
    let profile = Profile::sonic_10k();
    let jobs: Vec<PageJob> = renderer
        .corpus()
        .pages()
        .iter()
        .map(|&id| PageJob { id, hour })
        .collect();
    let mut report = WarmRestartReport {
        pages: jobs.len(),
        ..WarmRestartReport::default()
    };

    // Phase 1: cold boot onto an empty store.
    {
        let store = share_store(ArtifactStore::open(dir, byte_budget)?);
        let mut tiered = TieredCache::with_store(ArtifactCache::unbounded(), store);
        let _ = refresh_pages(&renderer, &mut tiered, &jobs, Some(&profile));
        report.cold_misses = tiered.ram.stats.misses;
    } // RAM tier and store handle drop here: nothing survives but the files.

    // Phase 2: reopen from the index log; refresh must promote, not render.
    let store = share_store(ArtifactStore::open(dir, byte_budget)?);
    {
        let s = store.lock();
        report.store_entries = s.len();
        report.store_bytes = s.live_bytes();
    }
    let mut tiered = TieredCache::with_store(ArtifactCache::unbounded(), store);
    let _ = refresh_pages(&renderer, &mut tiered, &jobs, Some(&profile));
    report.promoted = tiered.ram.stats.disk_promotions;
    report.warm_misses = tiered.ram.stats.misses;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!("sonic-sim-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&p);
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn corpus_churn_decodes_clean_and_never_costs_more() {
        let report = run_delta_carousel(Corpus::small(4), 0.05, 6, 3);
        assert_eq!(report.decode_mismatches, 0);
        assert!(report.delta_slots > 0, "no delta slots: {report:?}");
        assert!(report.unchanged > 0);
        assert!(report.air_bytes_incremental <= report.air_bytes_full_carousel);
        // Deterministic: same inputs, same report.
        let again = run_delta_carousel(Corpus::small(4), 0.05, 6, 3);
        assert_eq!(report, again);
    }

    #[test]
    fn ticker_carousel_saves_air_and_patches_from_prior() {
        let report = run_ticker_carousel(Corpus::small(3), 0.05, 3, 0.2);
        assert_eq!(report.decode_mismatches, 0);
        assert!(report.delta_slots > 0, "no delta slots: {report:?}");
        assert!(
            report.air_bytes_incremental * 2 < report.air_bytes_full_carousel,
            "expected >2x air savings: {report:?}"
        );
        assert!(report.columns_patched > 0);
        let again = run_ticker_carousel(Corpus::small(3), 0.05, 3, 0.2);
        assert_eq!(report, again);
    }

    #[test]
    fn warm_restart_promotes_everything() {
        let dir = TempDir::new("warm");
        let report =
            run_warm_restart(Corpus::small(3), 0.05, 6, &dir.0, u64::MAX).expect("store io");
        assert_eq!(report.cold_misses, report.pages as u64);
        assert_eq!(report.promoted, report.pages as u64);
        assert_eq!(report.warm_misses, 0);
        assert_eq!(report.store_entries, report.pages);
        assert!(report.store_bytes > 0);
    }
}
