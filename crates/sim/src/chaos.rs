//! Seeded end-to-end chaos soak: a full broadcast day driven through a
//! hostile [`FaultPlan`] and a misbehaving SMS network.
//!
//! The soak wires every robustness mechanism into one closed loop:
//!
//! * the server pushes its hourly carousel and answers `GET`/`NACK` SMS,
//! * every broadcast frame is given a fate by the fault plan at frame
//!   granularity ([`FaultPlan::frame_fate`] — delivered, corrupted into the
//!   per-page loss map, or lost in a mute window),
//! * the client reassembles under a byte/page budget, NACKs the missing
//!   ranges of pages that hit their deadline, and force-finalizes degraded
//!   pages (interpolation repair) when the grace period after its last NACK
//!   expires,
//! * the server's `RepairPlanner` coalesces the NACKs and schedules
//!   targeted repair bursts under the per-page retry budget with
//!   exponential backoff.
//!
//! Everything is a pure function of [`ChaosSoakConfig`]: frame fates hash
//! from `(plan seed, frame nonce)`, the SMS networks run seeded RNGs, and
//! every map iteration is sorted — the same config replays to an identical
//! [`ChaosSoakReport`].

use sonic_core::client::SonicClient;
use sonic_core::reassembly::ReassemblerConfig;
use sonic_core::server::render::Renderer;
use sonic_core::server::SonicServer;
use sonic_pagegen::Corpus;
use sonic_radio::faults::{Fault, FaultPlan, FrameFate};
use sonic_sms::geo::{Coverage, GeoPoint};
use sonic_sms::network::{SmsChaos, SmsNetwork};
use std::collections::{BTreeMap, BTreeSet};

/// Parameters of one soak run (fully determines the report).
#[derive(Debug, Clone)]
pub struct ChaosSoakConfig {
    /// Broadcast day length in hours (24 = the paper's day; 2 = smoke).
    pub hours: u32,
    /// Master seed: fault plan, SMS networks and frame fates derive from it.
    pub seed: u64,
    /// Transmitter rate in bits/s.
    pub rate_bps: f64,
    /// Synthetic corpus size (sites; page 0 of each is the content pool).
    pub corpus_sites: usize,
    /// Render scale (0.1 = smoke-sized pages).
    pub render_scale: f64,
    /// Client-side reassembler budget under test.
    pub reassembler: ReassemblerConfig,
    /// NACKs the client may spend per page before force-finalizing.
    pub max_nacks_per_page: u32,
    /// Seconds the client waits for repair after a NACK before giving up
    /// and finalizing degraded.
    pub nack_grace_s: f64,
}

impl Default for ChaosSoakConfig {
    fn default() -> Self {
        ChaosSoakConfig {
            hours: 2,
            seed: 0x50A4_C0DE,
            rate_bps: 10_000.0,
            corpus_sites: 4,
            render_scale: 0.1,
            reassembler: ReassemblerConfig {
                max_bytes: 1 << 20,
                max_pages: 8,
                page_deadline_s: 600.0,
                ..ReassemblerConfig::default()
            },
            max_nacks_per_page: 2,
            nack_grace_s: 300.0,
        }
    }
}

/// What happened over the soak. All counters are exact and replayable:
/// identical config ⇒ identical report (`PartialEq` is the determinism
/// check).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosSoakReport {
    /// Frames offered to the air.
    pub frames_sent: usize,
    /// Frames that decoded at the client.
    pub frames_delivered: usize,
    /// Frames corrupted (fed the per-page loss map).
    pub frames_corrupted: usize,
    /// Frames lost outright (mute windows).
    pub frames_lost: usize,
    /// `GET` requests the client sent.
    pub requests_sent: usize,
    /// Repair NACKs the client sent.
    pub nacks_sent: usize,
    /// ACK replies that reached the client.
    pub acks_received: usize,
    /// ERR replies that reached the client.
    pub errs_received: usize,
    /// Pages finalized with zero pixel loss.
    pub pages_clean: usize,
    /// Pages finalized degraded (interpolation covered real losses).
    pub pages_degraded: usize,
    /// Finalizations that failed outright (metadata never arrived).
    pub pages_failed: usize,
    /// Assemblies still pending after the final drain — must be 0 ("never
    /// hung").
    pub pages_hung: usize,
    /// Repair bursts the server scheduled.
    pub repair_bursts: usize,
    /// Frames across those bursts.
    pub repair_frames: usize,
    /// Highest repair-attempt count spent on any page.
    pub max_repair_attempts: u32,
    /// Peak bytes buffered in the client reassembler.
    pub peak_reassembler_bytes: usize,
    /// Assemblies the budget evicted.
    pub evicted_pages: usize,
    /// Distinct URLs the client wanted.
    pub urls_requested: usize,
    /// Wanted URLs that finalized (possibly degraded) at least once.
    pub urls_received: usize,
}

/// A day-scale hostile plan: background impulses, a co-channel interferer
/// and receiver clock drift all day, plus a tuner dropout and a deep fade
/// every hour. Scales with `hours` so short smoke runs see the same
/// per-hour weather as a full day.
pub fn hostile_day(seed: u64, hours: u32) -> FaultPlan {
    let mut faults = vec![
        Fault::Impulse {
            rate_per_s: 0.5,
            amp: 3.0,
            len_s: 0.02,
        },
        Fault::CoChannel {
            offset_hz: 9_650.0,
            level: 0.1,
        },
        Fault::ClockDrift { ppm: 20.0 },
    ];
    for h in 0..u64::from(hours) {
        // Both windows sit inside the first minutes of the hour, where the
        // carousel push keeps the transmitter busy.
        let base = h as f64 * 3600.0;
        faults.push(Fault::Mute {
            start_s: base + 60.0,
            len_s: 120.0,
        });
        faults.push(Fault::Fade {
            start_s: base + 300.0,
            len_s: 300.0,
            depth_db: 30.0,
        });
    }
    FaultPlan { seed, faults }
}

/// An SMS arrival queued for one endpoint.
type InFlight = Vec<(f64, String)>;

/// Pops (sorted by arrival time, then text for ties) every message due by
/// `now` — deterministic regardless of send interleaving.
fn drain_due(queue: &mut InFlight, now: f64) -> Vec<String> {
    let mut due: Vec<(f64, String)> = Vec::new();
    queue.retain(|(at, text)| {
        if *at <= now {
            due.push((*at, text.clone()));
            false
        } else {
            true
        }
    });
    due.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    due.into_iter().map(|(_, t)| t).collect()
}

/// Runs the soak. See the module docs for the loop structure.
pub fn run_chaos_soak(cfg: &ChaosSoakConfig) -> ChaosSoakReport {
    let mut report = ChaosSoakReport::default();
    let plan = hostile_day(cfg.seed, cfg.hours);
    let total_s = u64::from(cfg.hours) * 3600;
    // Drain window: no new content, but in-flight repairs/graces settle.
    let end_s = total_s + cfg.nack_grace_s as u64 + 600;

    let coverage = Coverage::pakistan_demo();
    let user_loc = GeoPoint::new(31.52, 74.35); // Lahore
    let site_id = coverage.best_for(&user_loc).expect("Lahore is covered").id;
    let renderer = Renderer::new(Corpus::small(cfg.corpus_sites), cfg.render_scale);
    let mut srv = SonicServer::new(renderer, coverage, cfg.rate_bps);
    let mut client = SonicClient::new(720, Some(user_loc));
    client.set_reassembler_config(cfg.reassembler.clone());

    // The client wants every site's landing page: sites 0..2 ride the
    // hourly carousel, the rest only exist if requested over SMS.
    let n_sites = cfg.corpus_sites.min(srv.renderer().corpus().sites.len());
    let carousel_n = 2.min(n_sites);
    let wanted: Vec<String> = (0..n_sites)
        .map(|s| {
            srv.renderer()
                .corpus()
                .layout(sonic_pagegen::PageId { site: s, page: 0 }, 0)
                .url
        })
        .collect();
    report.urls_requested = wanted.len();
    let get_only: Vec<String> = wanted.iter().skip(carousel_n).cloned().collect();

    // Both SMS directions share one hostile chaos profile, including a
    // multi-hour gateway outage in the middle of the day (scaled for smoke
    // runs).
    let outage_start = total_s as f64 * 0.45;
    let outage = (outage_start, outage_start + total_s as f64 * 0.2);
    let chaos = SmsChaos {
        outages: vec![outage],
        ..SmsChaos::hostile()
    };
    let mut net_up = SmsNetwork::typical(cfg.seed ^ 0x5E9D).with_chaos(chaos.clone());
    let mut net_down = SmsNetwork::typical(cfg.seed ^ 0xD0_3A).with_chaos(chaos);
    let mut to_server: InFlight = Vec::new();
    let mut to_client: InFlight = Vec::new();

    let airtime_s = sonic_core::frame::FRAME_SIZE as f64 * 8.0 / cfg.rate_bps;
    let mut nonce = 0u64;
    // Client-side repair bookkeeping: page → NACKs spent, and the time at
    // which an expired page stops waiting for repair.
    let mut nacks_for: BTreeMap<u32, u32> = BTreeMap::new();
    let mut force_at: BTreeMap<u32, f64> = BTreeMap::new();
    let mut received_urls: BTreeSet<String> = BTreeSet::new();

    fn finalize(
        client: &mut SonicClient,
        report: &mut ChaosSoakReport,
        received_urls: &mut BTreeSet<String>,
        nacks_for: &mut BTreeMap<u32, u32>,
        force_at: &mut BTreeMap<u32, f64>,
        id: u32,
        hour: u64,
    ) {
        match client.finalize_page(id, hour) {
            Ok(rep) => {
                if rep.pixel_loss > 0.0 {
                    report.pages_degraded += 1;
                } else {
                    report.pages_clean += 1;
                }
                received_urls.insert(rep.url);
            }
            Err(_) => report.pages_failed += 1,
        }
        nacks_for.remove(&id);
        force_at.remove(&id);
    }

    for t in 0..end_s {
        let tf = t as f64;
        let hour = t / 3600;
        let live = t < total_s;

        // Hourly carousel push (sites 0..carousel_n).
        if live && t % 3600 == 0 {
            srv.push_popular(hour, carousel_n, tf);
        }
        // Initial + periodic GET for pages not on the carousel: re-request
        // every 30 min until a finalization succeeded (lost requests, lost
        // ACKs and dead receptions all converge through this).
        if live && (t == 5 || t % 1800 == 900) {
            for url in &get_only {
                if received_urls.contains(url) {
                    continue;
                }
                if let Some(msg) = client.compose_request(url) {
                    if let Ok(arrivals) = net_up.send_detailed(&msg, tf) {
                        report.requests_sent += 1;
                        to_server.extend(arrivals.into_iter().map(|a| (a.at, a.text)));
                    }
                }
            }
        }

        // SMS uplink arrivals → server; replies ride the downlink.
        for msg in drain_due(&mut to_server, tf) {
            let reply = srv.handle_sms(&msg, tf);
            if let Ok(arrivals) = net_down.send_detailed(&reply, tf) {
                to_client.extend(arrivals.into_iter().map(|a| (a.at, a.text)));
            }
        }
        // Downlink arrivals → client (ACK/ERR accounting).
        for msg in drain_due(&mut to_client, tf) {
            if msg.starts_with("ACK") {
                report.acks_received += 1;
            } else {
                report.errs_received += 1;
            }
        }

        // Server side: schedule any repair bursts whose window elapsed.
        srv.pump_repairs(tf);

        // One second of airtime from the user's transmitter, frame by frame
        // through the fault plan.
        let frames = srv
            .schedulers
            .get_mut(&site_id)
            .expect("site scheduler")
            .advance(1.0);
        for (i, frame) in frames.into_iter().enumerate() {
            let t_frame = tf + i as f64 * airtime_s;
            nonce += 1;
            report.frames_sent += 1;
            match plan.frame_fate(t_frame, airtime_s, nonce) {
                FrameFate::Delivered => {
                    report.frames_delivered += 1;
                    client.receive_frame_at(frame, t_frame);
                }
                FrameFate::Corrupted => {
                    report.frames_corrupted += 1;
                    client.note_bad_frame(frame.page_id(), t_frame);
                }
                FrameFate::Lost => report.frames_lost += 1,
            }
        }
        report.peak_reassembler_bytes = report
            .peak_reassembler_bytes
            .max(client.reassembler().buffered_bytes());

        // Completion pass: finalize pages with nothing missing.
        let mut pending = client.pending_pages();
        pending.sort_unstable();
        for id in pending {
            let done = client
                .reassembler()
                .assembly(id)
                .is_some_and(|a| a.missing_ranges().is_complete());
            if done {
                finalize(
                    &mut client,
                    &mut report,
                    &mut received_urls,
                    &mut nacks_for,
                    &mut force_at,
                    id,
                    hour,
                );
            }
        }

        // Deadline pass: NACK the loss map (bounded per page), then
        // force-finalize degraded when the grace period runs out.
        for id in client.expired_pages(tf) {
            if force_at.get(&id).is_some_and(|&fa| tf < fa) {
                continue; // still waiting on a repair burst
            }
            let spent = *nacks_for.get(&id).unwrap_or(&0);
            let nack = if spent < cfg.max_nacks_per_page {
                client.compose_nack(id)
            } else {
                None
            };
            match nack {
                Some(msg) if live => {
                    if let Ok(arrivals) = net_up.send_detailed(&msg, tf) {
                        report.nacks_sent += 1;
                        to_server.extend(arrivals.into_iter().map(|a| (a.at, a.text)));
                    }
                    nacks_for.insert(id, spent + 1);
                    force_at.insert(id, tf + cfg.nack_grace_s);
                }
                _ => {
                    finalize(
                        &mut client,
                        &mut report,
                        &mut received_urls,
                        &mut nacks_for,
                        &mut force_at,
                        id,
                        hour,
                    );
                }
            }
        }
    }

    // Final drain: whatever is still pending is the tail of the last
    // carousel — finalize it degraded rather than leave it hanging.
    let mut pending = client.pending_pages();
    pending.sort_unstable();
    for id in pending {
        finalize(
            &mut client,
            &mut report,
            &mut received_urls,
            &mut nacks_for,
            &mut force_at,
            id,
            end_s / 3600,
        );
    }
    report.pages_hung = client.reassembler().len();
    report.evicted_pages = client.reassembler().evicted_pages;
    report.repair_bursts = srv.repair.stats.bursts_scheduled;
    report.repair_frames = srv.repair.stats.frames_scheduled;
    report.max_repair_attempts = srv.repair.max_attempts_used();
    report.urls_received = wanted.iter().filter(|u| received_urls.contains(*u)).count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarter_hour_soak_converges_and_replays() {
        let cfg = ChaosSoakConfig {
            hours: 1,
            ..ChaosSoakConfig::default()
        };
        let report = run_chaos_soak(&cfg);
        assert_eq!(report.pages_hung, 0, "{report:?}");
        assert!(report.frames_sent > 0, "{report:?}");
        assert!(report.frames_lost > 0, "mute windows must bite: {report:?}");
        assert!(
            report.peak_reassembler_bytes <= cfg.reassembler.max_bytes,
            "{report:?}"
        );
        assert_eq!(report, run_chaos_soak(&cfg), "same seed ⇒ same outcome");
    }
}
