//! Request workloads: who asks for what, when.
//!
//! Uplink-capable users issue Zipf-distributed page requests following a
//! diurnal intensity curve (quiet at night, peaks morning and evening) —
//! the workload behind the end-to-end day simulation example.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sonic_pagegen::{Corpus, PageId};
use sonic_sms::geo::GeoPoint;

/// One user request.
#[derive(Debug, Clone)]
pub struct PageRequest {
    /// Absolute time in seconds.
    pub at_s: f64,
    /// The requested page.
    pub page: PageId,
    /// Requester location.
    pub location: GeoPoint,
}

/// Diurnal intensity multiplier for an hour of day (0–23), peaking at
/// 8–9 am and 7–9 pm.
pub fn diurnal_factor(hour_of_day: u64) -> f64 {
    const CURVE: [f64; 24] = [
        0.2, 0.1, 0.1, 0.1, 0.2, 0.4, 0.8, 1.2, 1.5, 1.2, 1.0, 1.0, 1.1, 1.0, 0.9, 0.9, 1.0, 1.2,
        1.4, 1.6, 1.5, 1.2, 0.8, 0.4,
    ];
    CURVE[(hour_of_day % 24) as usize]
}

/// Generates requests over `hours` with `base_rate_per_hour` average
/// intensity, Zipf page popularity and locations near the given cities.
pub fn generate(
    corpus: &Corpus,
    hours: u64,
    base_rate_per_hour: f64,
    cities: &[GeoPoint],
    seed: u64,
) -> Vec<PageRequest> {
    assert!(!cities.is_empty(), "need at least one city");
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = sonic_pagegen::tranco::zipf_weights(&corpus.sites);
    let mut out = Vec::new();
    for hour in 0..hours {
        let lambda = base_rate_per_hour * diurnal_factor(hour % 24);
        // Poisson-ish: sample count from a geometric-corrected uniform.
        let count = (lambda * (0.5 + rng.random::<f64>())).round() as usize;
        for _ in 0..count {
            let at_s = hour as f64 * 3600.0 + rng.random::<f64>() * 3600.0;
            // Zipf site pick.
            let u: f64 = rng.random();
            let mut acc = 0.0;
            let mut site = 0usize;
            for (i, w) in weights.iter().enumerate() {
                acc += w;
                if u <= acc {
                    site = i;
                    break;
                }
            }
            // Landing pages dominate; internals follow clicks.
            let page = if rng.random::<f64>() < 0.7 {
                0
            } else {
                1 + rng.random_range(0..3usize)
            };
            let city = cities[rng.random_range(0..cities.len())];
            let jitter = |v: f64, r: &mut StdRng| v + (r.random::<f64>() - 0.5) * 0.2;
            out.push(PageRequest {
                at_s,
                page: PageId { site, page },
                location: GeoPoint::new(jitter(city.lat, &mut rng), jitter(city.lon, &mut rng)),
            });
        }
    }
    out.sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cities() -> Vec<GeoPoint> {
        vec![GeoPoint::new(31.52, 74.35), GeoPoint::new(24.86, 67.00)]
    }

    #[test]
    fn requests_are_time_sorted() {
        let c = Corpus::small(5);
        let reqs = generate(&c, 12, 20.0, &cities(), 1);
        for w in reqs.windows(2) {
            assert!(w[1].at_s >= w[0].at_s);
        }
        assert!(!reqs.is_empty());
    }

    #[test]
    fn popularity_is_skewed_to_top_sites() {
        let c = Corpus::small(10);
        let reqs = generate(&c, 48, 50.0, &cities(), 2);
        let top = reqs.iter().filter(|r| r.page.site == 0).count();
        let bottom = reqs.iter().filter(|r| r.page.site == 9).count();
        assert!(top > 3 * bottom.max(1), "top {top} vs bottom {bottom}");
    }

    #[test]
    fn diurnal_curve_peaks_in_the_evening() {
        assert!(diurnal_factor(19) > diurnal_factor(3) * 3.0);
        assert!(diurnal_factor(8) > diurnal_factor(14));
    }

    #[test]
    fn night_hours_are_quieter() {
        let c = Corpus::small(5);
        let reqs = generate(&c, 24, 40.0, &cities(), 3);
        let night = reqs.iter().filter(|r| (r.at_s / 3600.0) < 4.0).count();
        let evening = reqs
            .iter()
            .filter(|r| (18.0..22.0).contains(&(r.at_s / 3600.0)))
            .count();
        assert!(evening > night, "evening {evening} vs night {night}");
    }

    #[test]
    fn deterministic_per_seed() {
        let c = Corpus::small(3);
        let a = generate(&c, 6, 10.0, &cities(), 9);
        let b = generate(&c, 6, 10.0, &cities(), 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_s, y.at_s);
            assert_eq!(x.page, y.page);
        }
    }
}
