//! Synthetic user study (Figure 5 substitution).
//!
//! The paper recruited 151 students, each rating 20 screenshots on two 0–10
//! Likert questions (content understanding, text readability). We replace
//! the humans with a perceptual model: measured degradation (edge integrity
//! for text, PSNR-ish pixel fidelity for content) is mapped through a
//! logistic curve to a 0–10 rating, and each simulated rater adds a personal
//! bias and per-rating noise. The model's two anchor points are taken from
//! the paper's reported medians (≈7 content at 20 % loss *with*
//! interpolation; ≥1 point gap between with/without at every loss rate) —
//! the *shape* of Figure 5 then emerges from the measurements, not from a
//! lookup table.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sonic_image::metrics::{edge_integrity, psnr, text_corruption};
use sonic_image::raster::Raster;

/// The two Likert questions of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Question {
    /// (a) "perception of content understanding".
    Content,
    /// (b) "readability of the text … considering the level of noise".
    Text,
}

/// Objective degradation measurements of one screenshot.
#[derive(Debug, Clone, Copy)]
pub struct Degradation {
    /// Luma PSNR vs. the clean render (dB).
    pub psnr_db: f64,
    /// Sobel edge correlation in [0,1].
    pub edge: f64,
    /// Fraction of text-region pixels visibly damaged.
    pub text_damage: f64,
}

/// Measures a distorted screenshot against its clean reference.
pub fn measure(reference: &Raster, distorted: &Raster, text_mask: &[bool]) -> Degradation {
    Degradation {
        psnr_db: psnr(reference, distorted),
        edge: edge_integrity(reference, distorted),
        text_damage: text_corruption(reference, distorted, text_mask, 32),
    }
}

/// Maps a degradation to the *population-mean* rating for a question.
///
/// Both questions share one perceptual quality score; text readability is
/// mapped through a harsher logistic (higher midpoint), which realizes the
/// paper's finding that "text readability is more susceptible to losses"
/// while guaranteeing text never rates above content for the same damage.
pub fn mean_rating(question: Question, d: &Degradation) -> f64 {
    // Normalize PSNR to [0,1] over the interesting 5–35 dB range.
    let fidelity = ((d.psnr_db - 5.0) / 30.0).clamp(0.0, 1.0);
    let score01 = 0.40 * fidelity + 0.40 * d.edge + 0.20 * (1.0 - d.text_damage);
    let (k, mid) = match question {
        Question::Content => (5.5, 0.47),
        Question::Text => (6.0, 0.56),
    };
    10.0 / (1.0 + (-k * (score01 - mid)).exp())
}

/// One simulated rater.
#[derive(Debug, Clone)]
pub struct Rater {
    /// Personal offset (some people rate everything higher).
    pub bias: f64,
    /// Per-rating noise scale.
    pub noise: f64,
}

/// The simulated panel.
#[derive(Debug)]
pub struct Panel {
    raters: Vec<Rater>,
    rng: StdRng,
}

impl Panel {
    /// Creates the paper's panel: 151 raters.
    pub fn paper_panel(seed: u64) -> Self {
        Panel::new(151, seed)
    }

    /// Creates a panel of `n` raters.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let raters = (0..n)
            .map(|_| Rater {
                bias: (rng.random::<f64>() - 0.5) * 1.6,
                noise: 0.5 + rng.random::<f64>() * 0.9,
            })
            .collect();
        Panel { raters, rng }
    }

    /// Number of raters.
    pub fn len(&self) -> usize {
        self.raters.len()
    }

    /// Whether the panel is empty.
    pub fn is_empty(&self) -> bool {
        self.raters.is_empty()
    }

    /// Collects integer Likert ratings (0–10) for one screenshot from a
    /// random subset of `per_shot` raters — the paper averaged ≈7 ratings
    /// per screenshot.
    pub fn rate(
        &mut self,
        question: Question,
        d: &Degradation,
        per_shot: usize,
    ) -> Vec<f64> {
        let mean = mean_rating(question, d);
        let n = self.raters.len();
        (0..per_shot)
            .map(|_| {
                let r = &self.raters[self.rng.random_range(0..n)];
                let g: f64 = {
                    // Box-Muller normal.
                    let u1: f64 = self.rng.random::<f64>().max(1e-12);
                    let u2: f64 = self.rng.random();
                    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                };
                (mean + r.bias + g * r.noise).round().clamp(0.0, 10.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonic_image::interpolate::{blackout, recover, LossMask};
    use sonic_image::raster::Rgb;

    fn page_with_text() -> (Raster, Vec<bool>) {
        let mut img = Raster::new(120, 120);
        let mut mask = vec![false; 120 * 120];
        for y in (10..110).step_by(10) {
            for x in 10..110 {
                if x % 3 != 0 {
                    img.set(x, y, Rgb::new(40, 40, 40));
                }
                mask[y * 120 + x] = true;
            }
        }
        (img, mask)
    }

    #[test]
    fn clean_image_rates_high() {
        let (img, mask) = page_with_text();
        let d = measure(&img, &img, &mask);
        assert!(mean_rating(Question::Content, &d) > 8.5);
        assert!(mean_rating(Question::Text, &d) > 8.5);
    }

    #[test]
    fn heavier_loss_rates_lower() {
        let (img, mask) = page_with_text();
        let d10 = measure(&img, &blackout(&img, &LossMask::random(120, 120, 0.1, 1)), &mask);
        let d50 = measure(&img, &blackout(&img, &LossMask::random(120, 120, 0.5, 1)), &mask);
        for q in [Question::Content, Question::Text] {
            assert!(
                mean_rating(q, &d10) > mean_rating(q, &d50) + 0.5,
                "{q:?}: {} vs {}",
                mean_rating(q, &d10),
                mean_rating(q, &d50)
            );
        }
    }

    #[test]
    fn interpolation_beats_blackout() {
        let (img, mask) = page_with_text();
        let loss = LossMask::random(120, 120, 0.2, 2);
        let d_black = measure(&img, &blackout(&img, &loss), &mask);
        let d_fix = measure(&img, &recover(&img, &loss), &mask);
        for q in [Question::Content, Question::Text] {
            assert!(
                mean_rating(q, &d_fix) > mean_rating(q, &d_black),
                "{q:?} must improve with interpolation"
            );
        }
    }

    #[test]
    fn text_question_is_more_sensitive() {
        let (img, mask) = page_with_text();
        let loss = LossMask::random(120, 120, 0.2, 3);
        let d = measure(&img, &blackout(&img, &loss), &mask);
        assert!(
            mean_rating(Question::Text, &d) < mean_rating(Question::Content, &d),
            "text must rate below content for the same damage"
        );
    }

    #[test]
    fn panel_ratings_are_integer_likert() {
        let (img, mask) = page_with_text();
        let d = measure(&img, &img, &mask);
        let mut panel = Panel::new(20, 9);
        for r in panel.rate(Question::Content, &d, 30) {
            assert!((0.0..=10.0).contains(&r));
            assert_eq!(r, r.round());
        }
    }

    #[test]
    fn panel_is_deterministic_per_seed() {
        let (img, mask) = page_with_text();
        let d = measure(&img, &img, &mask);
        let a = Panel::new(151, 5).rate(Question::Text, &d, 7);
        let b = Panel::new(151, 5).rate(Question::Text, &d, 7);
        assert_eq!(a, b);
    }
}
