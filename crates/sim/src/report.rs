//! Plain-text table / CSV emission for the experiment harnesses.
//!
//! Every figure/table bench prints a human-readable table to stdout and can
//! drop a CSV next to it so the series can be re-plotted.

use std::io::Write;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate().take(ncols) {
                line.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * ncols));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Formats a byte count as KB with one decimal.
pub fn kb(bytes: f64) -> String {
    format!("{:.1}", bytes / 1024.0)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn csv_roundtrip_layout() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("sonic_sim_tests");
        std::fs::create_dir_all(&dir).expect("tmp");
        let p = dir.join("t.csv");
        t.write_csv(&p).expect("write");
        let body = std::fs::read_to_string(&p).expect("read");
        assert_eq!(body, "x,y\n1,2\n");
    }

    #[test]
    fn helpers_format() {
        assert_eq!(kb(2048.0), "2.0");
        assert_eq!(pct(0.125), "12.5%");
    }
}
