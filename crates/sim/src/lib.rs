//! # sonic-sim
//!
//! Simulation and measurement harnesses reproducing the SONIC paper's
//! evaluation (§4). Each figure/table has a module under [`experiments`];
//! the `sonic-bench` crate wraps them in runnable bench targets.
//!
//! * [`linksim`] — frames → modem → FM/acoustic channel → frames, with loss
//!   accounting (Figures 4a and the RSSI sweep).
//! * [`pool`] — deterministic worker pool the sweeps fan out on.
//! * [`broadcast`] — hourly backlog recurrence (Figure 4c).
//! * [`carousel`] — incremental delta-carousel and warm-restart loops over
//!   the tiered artifact store.
//! * [`study`] — the 151-rater perceptual panel model (Figure 5).
//! * [`workload`], [`des`] — request workloads and a small event simulator
//!   for day-in-the-life runs.
//! * [`chaos`], [`cluster`] — seeded fault soaks: one server's radio path,
//!   and the multi-site control plane (kill/restart, link faults, floods).
//! * [`scenario`], [`terrain`] — the country-scale streaming engine:
//!   Zipf-ranked populations on synthetic terrain, batched frame-fate
//!   evaluation, constant-memory aggregation (72 h × 100 k listeners).
//! * [`stats`], [`report`] — percentiles/CDFs/boxplots and table output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Decode paths must degrade, not die: unwrap is a typed-error escape hatch
// we only permit in tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod broadcast;
pub mod carousel;
pub mod chaos;
pub mod cluster;
pub mod des;
pub mod experiments;
pub mod linksim;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod stats;
pub mod study;
pub mod terrain;
pub mod workload;
