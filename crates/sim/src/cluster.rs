//! Distributed chaos soak: the sharded control plane under seeded fire.
//!
//! Where [`crate::chaos`] stresses one server's radio path, this soak
//! stresses the **cluster**: a coordinator feeding N transmitter sites
//! ([`sonic_core::server::cluster`]) over fault-injected links
//! ([`sonic_core::net`]), through a simulated broadcast day of
//!
//! * seeded **kill/restart** cycles — a victim site vanishes mid-hour
//!   (its socket buffers torn), is detected Down by RPC deadline
//!   expiries, restarts from the shared disk tier, and must resume its
//!   carousel at the slot it had reached;
//! * **link faults** on every coordinator↔site pair — drops, corruption,
//!   reorder, jitter and (for an unlucky subset) severed windows;
//! * a **gateway flood** hour — a burst of GET/NACK SMS far beyond the
//!   ingress bound, which must shed (NACKs first) instead of growing;
//! * background page requests and repair NACKs all day.
//!
//! A listener stage folds every site's aired frames through
//! [`pool::run_ordered`] in 60-second epochs, so the heavy accounting
//! fans out across workers while the fold order — and therefore the
//! report — is identical at any worker count. Everything else is a pure
//! function of `(config, seed)`: the same config replays to an identical
//! [`ClusterSoakReport`].

use crate::pool;
use sonic_core::frame::Frame;
use sonic_core::net::rpc::RpcPolicy;
use sonic_core::net::transport::{LinkFaultPlan, SimLink};
use sonic_core::page::page_id_for;
use sonic_core::server::cache::share_store;
use sonic_core::server::cluster::{
    Coordinator, CoordinatorConfig, SiteConfig, SiteNode, SiteStats,
};
use sonic_core::server::render::Renderer;
use sonic_core::server::store::ArtifactStore;
use sonic_pagegen::{Corpus, PageId};
use sonic_sms::gateway;
use sonic_sms::geo::{Coverage, GeoPoint, TransmitterSite};
use sonic_sms::queries::{format_nack, Nack};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Hash step shared with the fault machinery (SplitMix64).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines seed material into one hash word.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix(mix(mix(a) ^ b) ^ c)
}

/// Parameters of one cluster soak (fully determines the report).
#[derive(Debug, Clone)]
pub struct ClusterSoakConfig {
    /// Broadcast day length in hours (24 = full day; 2 = smoke).
    pub hours: u32,
    /// Master seed: link faults, kill schedule and traffic derive from it.
    pub seed: u64,
    /// Transmitter sites in the fleet (the acceptance run uses 50).
    pub sites: usize,
    /// Per-site broadcast payload rate.
    pub rate_bps: f64,
    /// Synthetic corpus size (page 0 of each site is the content pool).
    pub corpus_sites: usize,
    /// Render scale (0.1 = smoke-sized pages).
    pub render_scale: f64,
    /// Landing pages pushed to every site each hour.
    pub carousel_top_n: usize,
    /// Simulation step in seconds (must divide 3600).
    pub tick_s: f64,
    /// Sites killed per hour.
    pub kills_per_hour: usize,
    /// Seconds a killed site stays dead before restarting.
    pub down_time_s: f64,
    /// Hour during which the SMS gateway is flooded.
    pub flood_hour: u32,
    /// Flood messages offered per tick during the flood hour.
    pub flood_per_tick: usize,
    /// Background page requests per simulated minute.
    pub gets_per_minute: usize,
    /// Worker threads for the listener digest stage (report-invariant).
    pub workers: usize,
    /// Seconds of quiet drain after the last hour (backlogs must empty).
    pub drain_s: f64,
    /// Artifact-store directory; `None` derives one under the system temp
    /// dir and removes it afterwards.
    pub store_dir: Option<PathBuf>,
}

impl Default for ClusterSoakConfig {
    fn default() -> Self {
        ClusterSoakConfig {
            hours: 2,
            seed: 0xC1_05_7E_12,
            sites: 50,
            rate_bps: 8_000.0,
            corpus_sites: 6,
            render_scale: 0.1,
            carousel_top_n: 4,
            tick_s: 1.0,
            kills_per_hour: 2,
            down_time_s: 600.0,
            flood_hour: 1,
            flood_per_tick: 96,
            gets_per_minute: 3,
            workers: pool::default_workers(),
            drain_s: 1800.0,
            store_dir: None,
        }
    }
}

/// What happened over the soak. Integers only, so `Eq` is the replay
/// identity check: same config ⇒ byte-identical report, at any worker
/// count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterSoakReport {
    /// Simulation ticks executed.
    pub ticks: u64,
    /// Link frames aired across the fleet.
    pub frames_aired: u64,
    /// Queue entries fully aired (summed over sites, kills included).
    pub pages_completed: u64,
    /// Distinct (site, page id) pairs heard by the listener stage.
    pub distinct_pages_heard: u64,
    /// Frames folded by the listener stage (= `frames_aired`).
    pub frames_heard: u64,
    /// Site kill events executed.
    pub kills: u32,
    /// Site restarts executed.
    pub restarts: u32,
    /// `Resume` instructions the coordinator sent on recovery edges.
    pub resumes: u64,
    /// Carousel jobs reloaded from the disk tier after restarts.
    pub resumed_jobs: u64,
    /// Repair bursts rerouted around a down site.
    pub failovers: u64,
    /// `StoreMiss` answers converted to inline frame pushes.
    pub inline_fallbacks: u64,
    /// Site-side overload refusals (load shed).
    pub refused_overloaded: u64,
    /// RPC attempts retried after deadline expiry.
    pub rpc_retries: u64,
    /// RPC attempt expiries.
    pub rpc_expired: u64,
    /// RPCs abandoned after their attempt budget.
    pub rpc_gave_up: u64,
    /// Up→Down health transitions observed.
    pub downs: u64,
    /// Down→Up health transitions observed.
    pub recoveries: u64,
    /// SMS accepted into the bounded ingress queue.
    pub sms_accepted: u64,
    /// SMS shed at the ingress bound.
    pub sms_shed: u64,
    /// Deepest the ingress queue ever got (≤ its capacity).
    pub peak_ingress_depth: u64,
    /// Deepest any RPC client send queue ever got (≤ its bound).
    pub peak_rpc_queued: u64,
    /// Most pages any site scheduler ever queued (≤ its hard cap).
    pub peak_site_backlog_pages: u64,
    /// Pages still queued after the drain window — the hung-page count;
    /// the acceptance test requires zero.
    pub hung_pages: u64,
}

/// A fleet of `n` sites on a grid wide enough that each covers only its
/// own neighborhood (so SMS routes to exactly one site).
fn synthetic_coverage(n: usize) -> Coverage {
    let sites = (0..n)
        .map(|i| TransmitterSite {
            id: i as u32,
            location: GeoPoint::new(
                24.0 + (i / 8) as f64 * 0.9,
                66.0 + (i % 8) as f64 * 0.9,
            ),
            radius_km: 45.0,
            freq_mhz: 88.0 + 0.2 * (i as f64),
        })
        .collect();
    Coverage { sites }
}

/// The fault plan for one coordinator↔site link: mild ambient damage for
/// everyone, plus a severed window for an unlucky quarter of the fleet.
fn link_plan(seed: u64, site: u32, hours: u32) -> LinkFaultPlan {
    let h = mix3(seed, u64::from(site), 0x11_4B);
    let mut down = Vec::new();
    if h.is_multiple_of(4) {
        // One ~2-minute partition at a seed-derived moment of the day.
        let at = 300.0 + (mix(h) % (hours as u64 * 3000).max(1)) as f64;
        down.push((at, at + 120.0));
    }
    LinkFaultPlan {
        seed: mix(h ^ 0xF0),
        mtu: 512,
        base_latency_s: 0.03,
        jitter_s: 0.05,
        drop_prob: 0.005,
        corrupt_prob: 0.002,
        reorder_prob: 0.02,
        down,
        spikes: vec![],
    }
}

/// Accumulates a departing (killed or final) site's counters.
fn harvest(report: &mut ClusterSoakReport, stats: &SiteStats, completed: u64) {
    report.pages_completed += completed;
    report.resumed_jobs += stats.resumed_jobs;
}

/// One listener epoch job: a site's frames aired in the last epoch.
struct EpochJob {
    site_id: u32,
    frames: Vec<Frame>,
}

/// Pure digest of one epoch job (runs on the worker pool): per-page frame
/// counts, sorted.
fn digest(job: EpochJob) -> (u32, Vec<(u32, u32)>) {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for f in &job.frames {
        *counts.entry(f.page_id()).or_insert(0) += 1;
    }
    (job.site_id, counts.into_iter().collect())
}

/// Runs the distributed chaos soak. See the module docs for the scenario;
/// the report is a pure function of the config.
pub fn run_cluster_soak(cfg: &ClusterSoakConfig) -> ClusterSoakReport {
    let dir = cfg.store_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "sonic-cluster-soak-{}-{:x}",
            std::process::id(),
            cfg.seed
        ))
    });
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    let report = run_in(cfg, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn run_in(cfg: &ClusterSoakConfig, dir: &std::path::Path) -> ClusterSoakReport {
    let store = share_store(ArtifactStore::open(dir, 256 << 20).expect("open store"));
    let coverage = synthetic_coverage(cfg.sites);
    let renderer = Renderer::new(Corpus::small(cfg.corpus_sites), cfg.render_scale);
    let coord_cfg = CoordinatorConfig {
        rpc: RpcPolicy {
            deadline_s: 5.0,
            probe_interval_s: 15.0,
            ..RpcPolicy::default()
        },
        ping_interval_s: 20.0,
        ingress_capacity: 256,
        ingress_drain_per_pump: 64,
    };
    let mut coord = Coordinator::new(renderer, coverage.clone(), store.clone(), coord_cfg);

    let site_cfg = |id: u32| SiteConfig {
        site_id: id,
        rate_bps: cfg.rate_bps,
        ..SiteConfig::default()
    };
    let mut sites: BTreeMap<u32, SiteNode> = coverage
        .sites
        .iter()
        .map(|s| (s.id, SiteNode::new(site_cfg(s.id), Some(store.clone()))))
        .collect();
    let mut links: BTreeMap<u32, SimLink> = coverage
        .sites
        .iter()
        .map(|s| (s.id, SimLink::symmetric(link_plan(cfg.seed, s.id, cfg.hours))))
        .collect();

    // Seed-derived kill schedule: (t_kill, site), restarts down_time later.
    let mut kill_schedule: Vec<(f64, u32)> = Vec::new();
    for h in 0..u64::from(cfg.hours) {
        for i in 0..cfg.kills_per_hour as u64 {
            let site = (mix3(cfg.seed ^ 0x4B11, h, i) % cfg.sites as u64) as u32;
            let at = h as f64 * 3600.0 + 120.0 + (mix3(cfg.seed, h, i ^ 0x77) % 3000) as f64;
            kill_schedule.push((at, site));
        }
    }
    kill_schedule.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut next_kill = 0usize;
    let mut pending_restarts: BTreeMap<u32, f64> = BTreeMap::new();

    let mut report = ClusterSoakReport::default();
    let mut heard: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut epoch_buf: BTreeMap<u32, Vec<Frame>> = BTreeMap::new();

    let ticks_per_hour = (3600.0 / cfg.tick_s).round() as u64;
    let ticks_per_minute = (60.0 / cfg.tick_s).round() as u64;
    let day_ticks = ticks_per_hour * u64::from(cfg.hours);
    let drain_ticks = (cfg.drain_s / cfg.tick_s).round() as u64;
    let total_ticks = day_ticks + drain_ticks;

    let corpus_urls: Vec<Vec<String>> = (0..u64::from(cfg.hours))
        .map(|h| {
            (0..cfg.corpus_sites)
                .map(|s| {
                    coord
                        .renderer()
                        .corpus()
                        .layout(PageId { site: s, page: 0 }, h)
                        .url
                })
                .collect()
        })
        .collect();

    let flush_epoch =
        |buf: &mut BTreeMap<u32, Vec<Frame>>, heard: &mut BTreeMap<(u32, u32), u64>, rep: &mut ClusterSoakReport| {
            let jobs: Vec<EpochJob> = std::mem::take(buf)
                .into_iter()
                .map(|(site_id, frames)| EpochJob { site_id, frames })
                .collect();
            if jobs.is_empty() {
                return;
            }
            for (site_id, counts) in pool::run_ordered(jobs, cfg.workers, digest) {
                for (page, n) in counts {
                    *heard.entry((site_id, page)).or_insert(0) += u64::from(n);
                    rep.frames_heard += u64::from(n);
                }
            }
        };

    for tick in 0..total_ticks {
        let t = tick as f64 * cfg.tick_s;
        let in_day = tick < day_ticks;
        let hour = (tick / ticks_per_hour).min(u64::from(cfg.hours).saturating_sub(1));

        // Hourly carousel push (day only).
        if in_day && tick % ticks_per_hour == 0 {
            coord.push_carousel(hour, cfg.carousel_top_n, t);
        }

        // Kills due this tick.
        while in_day && next_kill < kill_schedule.len() && kill_schedule[next_kill].0 <= t {
            let (_, victim) = kill_schedule[next_kill];
            next_kill += 1;
            if let Some(node) = sites.remove(&victim) {
                harvest(&mut report, &node.stats, node.scheduler.completed_pages);
                if let Some(l) = links.get_mut(&victim) {
                    l.a_to_b.flush_inflight();
                    l.b_to_a.flush_inflight();
                }
                report.kills += 1;
                pending_restarts.insert(victim, t + cfg.down_time_s);
            }
        }
        // Restarts due (kills restart even into the drain window).
        let due: Vec<u32> = pending_restarts
            .iter()
            .filter(|&(_, &at)| at <= t || !in_day)
            .map(|(&s, _)| s)
            .collect();
        for site in due {
            pending_restarts.remove(&site);
            sites.insert(site, SiteNode::new(site_cfg(site), Some(store.clone())));
            report.restarts += 1;
        }

        // Background page requests, one batch per simulated minute.
        if in_day && tick % ticks_per_minute == 0 {
            for g in 0..cfg.gets_per_minute as u64 {
                let h = mix3(cfg.seed ^ 0x6E7, tick, g);
                let url = &corpus_urls[hour as usize][(h % cfg.corpus_sites as u64) as usize];
                let at = &coverage.sites[(mix(h) % cfg.sites as u64) as usize].location;
                coord.accept_sms(&gateway::format_request(url, at));
            }
        }
        // Gateway flood hour: GET/NACK mix far beyond the ingress bound.
        if in_day && hour == u64::from(cfg.flood_hour) {
            let version = (hour % u64::from(u16::MAX)) as u16;
            for f in 0..cfg.flood_per_tick as u64 {
                let h = mix3(cfg.seed ^ 0xF_100D, tick, f);
                let at = &coverage.sites[(mix(h) % cfg.sites as u64) as usize].location;
                let msg = if h.is_multiple_of(3) {
                    let url = &corpus_urls[hour as usize][(h % cfg.corpus_sites as u64) as usize];
                    format_nack(&Nack {
                        page_id: page_id_for(url, version),
                        meta: false,
                        columns: vec![(0, 0)],
                        location: *at,
                    })
                } else {
                    let url = &corpus_urls[hour as usize]
                        [(mix(h ^ 1) % cfg.corpus_sites as u64) as usize];
                    gateway::format_request(url, at)
                };
                coord.accept_sms(&msg);
            }
        }

        coord.pump(t, &mut links);

        for (id, node) in sites.iter_mut() {
            if let Some(link) = links.get_mut(id) {
                node.service(t, link);
            }
            let aired = node.advance(cfg.tick_s);
            if !aired.is_empty() {
                report.frames_aired += aired.len() as u64;
                epoch_buf.entry(*id).or_default().extend(aired);
            }
            report.peak_site_backlog_pages = report
                .peak_site_backlog_pages
                .max(node.scheduler.backlog_pages() as u64);
        }

        if (tick + 1) % ticks_per_minute == 0 {
            flush_epoch(&mut epoch_buf, &mut heard, &mut report);
        }
        report.ticks += 1;
    }
    flush_epoch(&mut epoch_buf, &mut heard, &mut report);

    // Final accounting.
    report.distinct_pages_heard = heard.len() as u64;
    for node in sites.values() {
        harvest(&mut report, &node.stats, node.scheduler.completed_pages);
        report.hung_pages += node.scheduler.backlog_pages() as u64;
    }
    report.resumes = coord.stats.resumes;
    report.failovers = coord.stats.failovers;
    report.inline_fallbacks = coord.stats.inline_fallbacks;
    report.refused_overloaded = coord.stats.refused_overloaded
        + sites.values().map(|n| n.stats.refused_overload).sum::<u64>();
    for client in coord.clients().values() {
        report.rpc_retries += client.stats.retries;
        report.rpc_expired += client.stats.expired;
        report.rpc_gave_up += client.stats.gave_up;
        report.downs += client.stats.downs;
        report.recoveries += client.stats.recoveries;
        report.peak_rpc_queued = report.peak_rpc_queued.max(client.stats.peak_queued as u64);
    }
    report.sms_accepted = coord.ingress.stats.accepted;
    report.sms_shed = coord.ingress.stats.shed_nacks + coord.ingress.stats.shed_requests;
    report.peak_ingress_depth = coord.ingress.stats.peak_depth as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> ClusterSoakConfig {
        ClusterSoakConfig {
            hours: 1,
            sites: 10,
            kills_per_hour: 1,
            flood_hour: 0,
            // A full site backlog (10 pages ≈ 920 s of airtime) plus late
            // retry deliveries must drain completely.
            drain_s: 1200.0,
            ..ClusterSoakConfig::default()
        }
    }

    #[test]
    fn smoke_soak_airs_pages_and_survives_a_kill() {
        let report = run_cluster_soak(&smoke_cfg());
        assert!(report.frames_aired > 0, "{report:?}");
        assert_eq!(report.frames_heard, report.frames_aired, "{report:?}");
        assert!(report.kills >= 1, "{report:?}");
        assert_eq!(report.restarts, report.kills, "{report:?}");
        assert_eq!(report.hung_pages, 0, "{report:?}");
        assert!(report.sms_shed > 0, "flood must exceed the ingress bound");
        assert!(report.peak_ingress_depth <= 256, "{report:?}");
    }

    #[test]
    fn same_seed_same_report_at_any_worker_count() {
        let mut one = smoke_cfg();
        one.workers = 1;
        let mut four = smoke_cfg();
        four.workers = 4;
        // Distinct store dirs so the two runs cannot share disk state.
        one.store_dir = Some(std::env::temp_dir().join(format!(
            "sonic-clw1-{}",
            std::process::id()
        )));
        four.store_dir = Some(std::env::temp_dir().join(format!(
            "sonic-clw4-{}",
            std::process::id()
        )));
        assert_eq!(run_cluster_soak(&one), run_cluster_soak(&four));
    }
}
