//! SIMD-vs-scalar dispatch parity at the experiment level.
//!
//! Dispatch is a performance knob, not a semantics knob (lint R3): the
//! runtime-selected SIMD kernels keep bit-identical accumulation order to
//! their scalar twins, so a seeded end-to-end receive run must recover the
//! *same* frames — same count, same payload bytes, same failure positions —
//! whether dispatch picked AVX2/NEON or `SONIC_DSP_FORCE_SCALAR=1` pinned it
//! to scalar. This test flips the equivalent in-process override,
//! [`sonic_dsp::simd::force_scalar`], so one run covers both paths.
//!
//! Lives in its own integration-test binary: the override is process-global,
//! and sharing a binary with other tests would race their dispatch.

use sonic_core::link;
use sonic_dsp::simd;
use sonic_modem::{demodulate_frames, Profile};
use sonic_radio::stack::FmLink;
use sonic_sim::linksim::test_frames;

/// Mirrors the link harness' FM input drive level.
fn scale_to_rms(audio: &mut [f32], target: f32) {
    let rms = (audio.iter().map(|&x| x * x).sum::<f32>() / audio.len().max(1) as f32).sqrt();
    if rms > 1e-12 {
        let g = target / rms;
        for v in audio.iter_mut() {
            *v *= g;
        }
    }
}

/// One seeded `fm_rx_page`-shaped run: page burst → FM link at `rssi_db` →
/// full receive chain. Returns every recovered frame as
/// `(start_sample, Ok(payload) | Err(error string))` so the comparison
/// covers frame count, byte content, and loss positions alike.
fn rx_page(profile: &Profile, rssi_db: f64, seed: u64) -> Vec<(usize, Result<Vec<u8>, String>)> {
    let frames = test_frames(link::FRAMES_PER_BURST, seed as u8);
    let mut audio = link::modulate(profile, &frames);
    scale_to_rms(&mut audio, 0.08);
    let mono = FmLink::new(rssi_db, seed).transmit(&audio, None).mono;
    demodulate_frames(profile, &mono)
        .into_iter()
        .map(|f| (f.start_sample, f.payload.map_err(|e| format!("{e:?}"))))
        .collect()
}

#[test]
fn forced_scalar_recovers_identical_frames() {
    let profile = Profile::sonic_10k();
    // One clean point and one marginal point near the paper's usable-RSSI
    // knee, where a single differently-rounded soft bit could flip a CRC.
    for (rssi, seed) in [(-70.0f64, 0x2551u64), (-87.0, 0x5EED_2551)] {
        simd::force_scalar(false);
        let dispatched = rx_page(&profile, rssi, seed);
        let backend = simd::backend();

        simd::force_scalar(true);
        let scalar = rx_page(&profile, rssi, seed);
        simd::force_scalar(false);

        assert_eq!(
            dispatched, scalar,
            "seeded rx at {rssi} dB (seed {seed:#x}) differs between {} dispatch and forced scalar",
            backend.name()
        );
    }
}
