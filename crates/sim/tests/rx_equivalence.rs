//! Fast-vs-reference receive-path equivalence at the experiment level.
//!
//! The RSSI sweep is the paper's headline receiver experiment; the fast
//! receive path (overlap-save FIR banks, block FM discriminator, per-axis
//! demapper) must reproduce the reference path's frame-loss curve *exactly*
//! at seeded sweep points, not just approximately — otherwise every figure
//! regenerated after the optimization would silently shift.

use sonic_core::link;
use sonic_modem::{demodulate_frames, demodulate_frames_reference, Profile};
use sonic_radio::stack::FmLink;
use sonic_sim::linksim::test_frames;

/// Mirrors the link harness' FM input drive level.
fn scale_to_rms(audio: &mut [f32], target: f32) {
    let rms = (audio.iter().map(|&x| x * x).sum::<f32>() / audio.len().max(1) as f32).sqrt();
    if rms > 1e-12 {
        let g = target / rms;
        for v in audio.iter_mut() {
            *v *= g;
        }
    }
}

/// Runs one seeded RSSI point through both receive paths and returns the
/// number of PHY frames recovered by (fast, reference).
fn frames_recovered(profile: &Profile, rssi_db: f64, seed: u64) -> (usize, usize) {
    let frames = test_frames(sonic_core::link::FRAMES_PER_BURST, seed as u8);
    let mut audio = link::modulate(profile, &frames);
    scale_to_rms(&mut audio, 0.08);

    let link_pair = FmLink::new(rssi_db, seed);
    let fast_mono = link_pair.transmit(&audio, None).mono;
    let ref_mono = link_pair.transmit_reference(&audio, None).mono;

    let fast = demodulate_frames(profile, &fast_mono)
        .iter()
        .filter(|f| f.payload.is_ok())
        .count();
    let reference = demodulate_frames_reference(profile, &ref_mono)
        .iter()
        .filter(|f| f.payload.is_ok())
        .count();
    (fast, reference)
}

#[test]
fn seeded_rssi_points_lose_identical_frame_counts() {
    let profile = Profile::sonic_10k();
    // Sweep seed formula from `experiments::rssi` (base seed 0x2551): one
    // clean point, one marginal point near the paper's −85…−90 dB band, and
    // one dead point.
    for rssi in [-70.0f64, -87.0, -92.0] {
        let seed = 0x2551u64 ^ ((-rssi * 10.0) as u64) << 10;
        let (fast, reference) = frames_recovered(&profile, rssi, seed);
        assert_eq!(
            fast, reference,
            "frame-loss mismatch at {rssi} dB (seed {seed:#x}): fast {fast} vs reference {reference}"
        );
    }
}
