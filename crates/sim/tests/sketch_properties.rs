//! Property tests for the mergeable quantile sketch behind the scenario
//! engine's constant-memory aggregation.
//!
//! Two contracts matter at population scale:
//!
//! * **Rank-error bound** — for any data, every reported quantile must sit
//!   within the DDSketch relative-accuracy guarantee of the exact value
//!   (±α on the value axis, with a neighbouring-rank allowance for ties at
//!   bucket edges). Aggregation may be lossy, but boundedly so.
//! * **Merge transparency** — splitting a stream into arbitrary chunks,
//!   sketching each and merging must answer exactly like the one-pass
//!   sketch, and the merge must be associative over any regrouping. This
//!   is what lets the engine fold per-epoch partials in any tree shape
//!   (as long as the shape is fixed) and lets `perf_natsim` promise
//!   byte-identical reports at any worker count.

use proptest::prelude::*;
use sonic_sim::stats::{QuantileSketch, SKETCH_ALPHA};

/// Exact quantile by nearest-rank on a sorted copy.
fn exact_quantile(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The sketch's relative-accuracy guarantee against the exact quantile:
/// the estimate must be within α of *some* value ranked within one bucket
/// of the query rank (bucket-edge ties can shift the rank by the count of
/// exactly-equal values).
fn within_guarantee(xs: &[f64], q: f64, est: f64) -> bool {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    sorted.iter().any(|&x| {
        let near_rank = (est - x).abs() <= SKETCH_ALPHA * x.abs().max(1e-12) + 1e-9;
        near_rank && {
            // x must itself sit near rank q·n among the sorted values.
            let lo = sorted.partition_point(|&v| v < x);
            let hi = sorted.partition_point(|&v| v <= x);
            let want = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            want + 1 >= lo.saturating_sub(0) && want <= hi
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every quantile of any positive-valued stream obeys the α bound.
    #[test]
    fn quantiles_obey_the_rank_error_bound(
        xs in proptest::collection::vec(1e-3f64..1e6, 1..400),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let mut sk = QuantileSketch::new();
        for &x in &xs {
            sk.insert(x);
        }
        for &q in &qs {
            let est = sk.quantile(q);
            prop_assert!(
                within_guarantee(&xs, q, est),
                "q={q}: estimate {est} vs exact {} over {} values",
                exact_quantile(&xs, q),
                xs.len(),
            );
        }
    }

    /// Chunked sketch-and-merge answers exactly like the one-pass sketch.
    #[test]
    fn merge_is_transparent_to_chunking(
        xs in proptest::collection::vec(1e-3f64..1e6, 1..300),
        cut_a in 0usize..300,
        cut_b in 0usize..300,
    ) {
        let mut one_pass = QuantileSketch::new();
        for &x in &xs {
            one_pass.insert(x);
        }
        let (a, b) = (cut_a.min(xs.len()), cut_b.min(xs.len()));
        let (lo, hi) = (a.min(b), a.max(b));
        let mut merged = QuantileSketch::new();
        for chunk in [&xs[..lo], &xs[lo..hi], &xs[hi..]] {
            let mut part = QuantileSketch::new();
            for &x in chunk {
                part.insert(x);
            }
            merged.merge(&part);
        }
        prop_assert_eq!(&merged, &one_pass);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q).to_bits(), one_pass.quantile(q).to_bits());
        }
    }

    /// Merging is associative over any regrouping of three parts (bucket
    /// budgets are respected by construction at these sizes, so no
    /// collapse asymmetry can appear).
    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(1e-3f64..1e6, 0..100),
        ys in proptest::collection::vec(1e-3f64..1e6, 0..100),
        zs in proptest::collection::vec(1e-3f64..1e6, 0..100),
    ) {
        let sketch_of = |vals: &[f64]| {
            let mut s = QuantileSketch::new();
            for &v in vals {
                s.insert(v);
            }
            s
        };
        let (a, b, c) = (sketch_of(&xs), sketch_of(&ys), sketch_of(&zs));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Zeros and negative clamps fold consistently through merges too.
    #[test]
    fn zero_handling_survives_merges(
        n_zero in 0u64..50,
        xs in proptest::collection::vec(1e-3f64..1e3, 1..50),
    ) {
        let mut direct = QuantileSketch::new();
        let mut zeros = QuantileSketch::new();
        let mut vals = QuantileSketch::new();
        direct.insert_n(0.0, n_zero);
        zeros.insert_n(0.0, n_zero);
        for &x in &xs {
            direct.insert(x);
            vals.insert(x);
        }
        let mut merged = zeros;
        merged.merge(&vals);
        prop_assert_eq!(&merged, &direct);
        if n_zero as usize > xs.len() {
            prop_assert_eq!(merged.quantile(0.1), 0.0);
        }
    }
}
