//! Rational resampling.
//!
//! The radio substrate runs at 480 kHz while the audio modem runs at
//! 44.1/48 kHz; this module converts between arbitrary rational rates with a
//! windowed-sinc polyphase kernel.

use crate::fir::design_lowpass;
use crate::simd;

/// Greatest common divisor (Euclid).
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Polyphase rational resampler converting `from_rate` → `to_rate`.
#[derive(Debug, Clone)]
pub struct Resampler {
    /// Upsampling factor L.
    up: usize,
    /// Downsampling factor M.
    down: usize,
    /// Polyphase filter bank, stored oldest-sample-first so each output is a
    /// forward dot product against a contiguous input window:
    /// `phases[p][k]` multiplies the window sample `taps_per_phase − 1 − k`
    /// steps behind the newest.
    phases: Vec<Vec<f32>>,
    /// Last `taps_per_phase − 1` input samples (oldest first), carried
    /// between blocks.
    tail: Vec<f32>,
    /// Linearized window scratch: `tail ++ input` for the current block.
    ext: Vec<f32>,
    /// Output phase accumulator.
    phase: usize,
}

impl Resampler {
    /// Creates a resampler between two integer rates.
    ///
    /// `quality` sets the prototype filter length (taps ≈ quality × max(L,M)),
    /// 32 is a good default.
    ///
    /// # Panics
    /// Panics if either rate is zero.
    pub fn new(from_rate: usize, to_rate: usize, quality: usize) -> Self {
        assert!(from_rate > 0 && to_rate > 0, "rates must be positive");
        let g = gcd(from_rate, to_rate);
        let up = to_rate / g;
        let down = from_rate / g;
        // The prototype must be ~quality × max(L, M) taps long (at the
        // upsampled rate) or the transition band scales with the *larger*
        // factor and eats into the passband when decimating.
        let taps_per_phase = quality.max(4) * down.div_ceil(up).max(1);
        let total = taps_per_phase * up;
        // Cut at the narrower of the two Nyquists, in units of the upsampled rate.
        let cutoff = 0.45 / up.max(down) as f64;
        let mut proto = design_lowpass(total, cutoff);
        for c in &mut proto {
            *c *= up as f32; // compensate zero-stuffing loss
        }
        let mut phases = vec![vec![0.0f32; taps_per_phase]; up];
        for (i, &c) in proto.iter().enumerate() {
            // Reversed tap order (oldest-first) so `process_into` reads each
            // window as one contiguous forward slice.
            phases[i % up][taps_per_phase - 1 - i / up] = c;
        }
        Resampler {
            up,
            down,
            phases,
            tail: vec![0.0; taps_per_phase - 1],
            ext: Vec::new(),
            phase: 0,
        }
    }

    /// The exact rational ratio `(L, M)` in lowest terms.
    pub fn ratio(&self) -> (usize, usize) {
        (self.up, self.down)
    }

    /// Resamples a block, appending outputs to `out`.
    pub fn process_into(&mut self, input: &[f32], out: &mut Vec<f32>) {
        // Walk the phase accumulator once up front so the output region can
        // be sized exactly — no amortized growth in the streaming path.
        let mut count = 0usize;
        let mut ph = self.phase;
        for _ in 0..input.len() {
            while ph < self.up {
                count += 1;
                ph += self.down;
            }
            ph -= self.up;
        }
        let start = out.len();
        out.resize(start + count, 0.0);
        if input.is_empty() {
            return;
        }
        let o = &mut out[start..];
        // Linearize the delay line once per block instead of rotating a
        // history buffer per sample: with `ext = tail ++ input`, the window
        // ending at `input[i]` is the contiguous slice `ext[i..i + T]`
        // (oldest first), matching the reversed tap order built in `new`.
        let m = self.tail.len();
        let t = m + 1;
        self.ext.resize(m + input.len(), 0.0);
        self.ext[..m].copy_from_slice(&self.tail);
        self.ext[m..].copy_from_slice(input);
        let mut j = 0usize;
        for i in 0..input.len() {
            // Each input advances the virtual upsampled clock by `up` ticks;
            // outputs fire every `down` ticks.
            while self.phase < self.up {
                o[j] = simd::dot(&self.phases[self.phase], &self.ext[i..i + t]);
                j += 1;
                self.phase += self.down;
            }
            self.phase -= self.up;
        }
        // The last T − 1 samples of this block seed the next window.
        self.tail.copy_from_slice(&self.ext[self.ext.len() - m..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn tone(fs: f64, f: f64, n: usize) -> Vec<f32> {
        (0..n).map(|i| (TAU * f * i as f64 / fs).sin() as f32).collect()
    }

    fn rms(x: &[f32]) -> f32 {
        (x.iter().map(|&v| v * v).sum::<f32>() / x.len() as f32).sqrt()
    }

    #[test]
    fn output_length_matches_ratio() {
        let mut r = Resampler::new(48000, 44100, 16);
        let mut out = Vec::new();
        r.process_into(&vec![0.0; 48000], &mut out);
        let expect = 44100.0;
        assert!((out.len() as f64 - expect).abs() < 50.0, "got {}", out.len());
    }

    #[test]
    fn upsample_preserves_tone_level() {
        let mut r = Resampler::new(44100, 88200, 32);
        let sig = tone(44100.0, 1000.0, 44100);
        let mut out = Vec::new();
        r.process_into(&sig, &mut out);
        let level = rms(&out[4000..out.len() - 4000]);
        assert!((level - std::f32::consts::FRAC_1_SQRT_2).abs() < 0.05, "rms={level}");
    }

    #[test]
    fn downsample_preserves_tone_level() {
        let mut r = Resampler::new(96000, 48000, 32);
        let sig = tone(96000.0, 1000.0, 96000);
        let mut out = Vec::new();
        r.process_into(&sig, &mut out);
        let level = rms(&out[4000..out.len() - 4000]);
        assert!((level - std::f32::consts::FRAC_1_SQRT_2).abs() < 0.05, "rms={level}");
    }

    #[test]
    fn rational_ratio_is_reduced() {
        let r = Resampler::new(480000, 48000, 8);
        assert_eq!(r.ratio(), (1, 10));
        let r = Resampler::new(44100, 48000, 8);
        assert_eq!(r.ratio(), (160, 147));
    }

    #[test]
    fn identity_rate_passes_signal() {
        let mut r = Resampler::new(48000, 48000, 32);
        let sig = tone(48000.0, 2000.0, 9600);
        let mut out = Vec::new();
        r.process_into(&sig, &mut out);
        assert_eq!(out.len(), sig.len());
        // Aside from the filter delay, energy should match.
        assert!((rms(&out[2000..]) - rms(&sig[2000..])).abs() < 0.05);
    }
}
