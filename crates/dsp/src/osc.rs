//! Numerically controlled oscillator and quadrature mixing.
//!
//! The OFDM modem is built at complex baseband; the NCO shifts it up to the
//! 9.2 kHz audio carrier for transmission and back down in the receiver. The
//! phase accumulator runs in `f64` so multi-minute broadcasts keep phase
//! coherence.

use crate::complex::C32;
use std::f64::consts::TAU;

/// A free-running oscillator producing `e^{jωn}` samples.
#[derive(Debug, Clone)]
pub struct Nco {
    phase: f64,
    step: f64,
}

impl Nco {
    /// Creates an NCO at `freq` Hz for sample rate `fs`.
    ///
    /// Negative frequencies rotate the opposite direction (used for
    /// down-conversion).
    pub fn new(fs: f64, freq: f64) -> Self {
        Nco {
            phase: 0.0,
            step: TAU * freq / fs,
        }
    }

    /// Returns the next complex phasor sample.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, never yields None
    #[inline]
    pub fn next(&mut self) -> C32 {
        let z = C32::from_angle(self.phase);
        self.phase += self.step;
        if self.phase > TAU {
            self.phase -= TAU;
        } else if self.phase < -TAU {
            self.phase += TAU;
        }
        z
    }

    /// Returns the next real cosine sample.
    #[inline]
    pub fn next_cos(&mut self) -> f32 {
        self.next().re
    }

    /// Current phase in radians.
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Resets phase to zero.
    pub fn reset(&mut self) {
        self.phase = 0.0;
    }
}

/// A cached phasor sequence replaying an [`Nco`]'s exact output.
///
/// `Nco::next` costs an `f64` sin+cos per sample, which dominates the OFDM
/// modulate path. The phase sequence is a pure function of the sample index
/// for a given `(fs, freq)`, so a table built by running the *same* phase
/// recurrence (including the ±τ wraps) is bit-identical to a fresh `Nco` —
/// mixing through the table produces byte-identical audio while paying the
/// trig cost only once per table slot.
///
/// Tables grow on demand and are reused across bursts; one 1 kB frame at
/// 44.1 kHz needs ~60 k phasors (~470 KB), retained for the codec lifetime.
#[derive(Debug, Clone)]
pub struct PhasorTable {
    step: f64,
    /// Phase of the *next* (not yet tabulated) sample.
    phase_end: f64,
    table: Vec<C32>,
}

impl PhasorTable {
    /// Creates an empty table for `freq` Hz at sample rate `fs`.
    pub fn new(fs: f64, freq: f64) -> Self {
        PhasorTable {
            step: TAU * freq / fs,
            phase_end: 0.0,
            table: Vec::new(),
        }
    }

    /// Extends the table so at least `n` phasors are cached.
    pub fn ensure(&mut self, n: usize) {
        self.table.reserve(n.saturating_sub(self.table.len()));
        while self.table.len() < n {
            // Exactly Nco::next: emit at the current phase, then advance
            // and wrap. Any deviation here would break bit-exactness with
            // the reference oscillator.
            // lint: allow(no-alloc) — phasor table grows on demand, retained for the codec lifetime
            self.table.push(C32::from_angle(self.phase_end));
            self.phase_end += self.step;
            if self.phase_end > TAU {
                self.phase_end -= TAU;
            } else if self.phase_end < -TAU {
                self.phase_end += TAU;
            }
        }
    }

    /// The first `n` phasors (growing the table if needed).
    pub fn phasors(&mut self, n: usize) -> &[C32] {
        self.ensure(n);
        &self.table[..n]
    }

    /// [`upconvert`] from sample index 0 using cached phasors; appends to
    /// `out`. Bit-identical to mixing with a fresh `Nco`.
    pub fn upconvert(&mut self, baseband: &[C32], out: &mut Vec<f32>) {
        let phasors = self.phasors(baseband.len());
        out.reserve(baseband.len());
        for (&x, &c) in baseband.iter().zip(phasors) {
            // lint: allow(no-alloc) — appends within the capacity reserved above
            out.push((x * c).re * std::f32::consts::SQRT_2);
        }
    }

    /// [`downconvert`] from sample index 0 using cached phasors; appends to
    /// `out`. Bit-identical to mixing with a fresh `Nco`.
    pub fn downconvert(&mut self, passband: &[f32], out: &mut Vec<C32>) {
        let phasors = self.phasors(passband.len());
        out.reserve(passband.len());
        for (&x, &c) in passband.iter().zip(phasors) {
            out.push(c.conj().scale(x * std::f32::consts::SQRT_2));
        }
    }
}

/// Up-converts complex baseband to a real passband signal on `carrier` Hz.
///
/// `real(x[n] · e^{jωn})` — appends to `out`.
pub fn upconvert(nco: &mut Nco, baseband: &[C32], out: &mut Vec<f32>) {
    for &x in baseband {
        let c = nco.next();
        out.push((x * c).re * std::f32::consts::SQRT_2);
    }
}

/// Down-converts a real passband signal to complex baseband.
///
/// Multiplies by `e^{-jωn}`; the caller is expected to low-pass the result
/// (the OFDM FFT itself acts as the channelizer in our receiver, so no
/// explicit filter is needed there).
pub fn downconvert(nco: &mut Nco, passband: &[f32], out: &mut Vec<C32>) {
    for &x in passband {
        let c = nco.next().conj();
        out.push(c.scale(x * std::f32::consts::SQRT_2));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nco_frequency_is_accurate() {
        let fs = 48000.0;
        let f = 1000.0;
        let mut nco = Nco::new(fs, f);
        // After exactly one period the phase should return to ~0 (mod 2π).
        let period = (fs / f) as usize;
        for _ in 0..period {
            nco.next();
        }
        let wrapped = nco.phase() % TAU;
        assert!(wrapped.min(TAU - wrapped) < 1e-6);
    }

    #[test]
    fn nco_is_unit_magnitude() {
        let mut nco = Nco::new(44100.0, 9200.0);
        for _ in 0..1000 {
            assert!((nco.next().abs() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn up_down_conversion_recovers_baseband() {
        let fs = 44100.0;
        let fc = 9200.0;
        // A slowly rotating baseband signal.
        let baseband: Vec<C32> = (0..4096)
            .map(|i| C32::from_angle(TAU * 50.0 * i as f64 / fs))
            .collect();
        let mut up = Nco::new(fs, fc);
        let mut pass = Vec::new();
        upconvert(&mut up, &baseband, &mut pass);
        let mut down = Nco::new(fs, fc);
        let mut back = Vec::new();
        downconvert(&mut down, &pass, &mut back);
        // back = baseband + image at 2fc; average short windows to kill the image.
        let win = 64; // ~ 2fc period multiple
        let mut err = 0.0f32;
        let mut n = 0;
        for k in (0..back.len() - win).step_by(win) {
            let avg: C32 = back[k..k + win].iter().copied().sum::<C32>() / win as f32;
            let want: C32 = baseband[k..k + win].iter().copied().sum::<C32>() / win as f32;
            err += (avg - want).abs();
            n += 1;
        }
        assert!(err / (n as f32) < 0.1, "residual {}", err / n as f32);
    }

    #[test]
    fn phasor_table_matches_nco_bit_for_bit() {
        for freq in [9_200.0, -9_200.0, 123.456] {
            let mut nco = Nco::new(44_100.0, freq);
            let mut table = PhasorTable::new(44_100.0, freq);
            // Grow in stages to exercise incremental extension.
            table.ensure(10);
            let phasors = table.phasors(5000).to_vec();
            for (k, &p) in phasors.iter().enumerate() {
                let want = nco.next();
                assert_eq!(p.re.to_bits(), want.re.to_bits(), "re at {k}");
                assert_eq!(p.im.to_bits(), want.im.to_bits(), "im at {k}");
            }
        }
    }

    #[test]
    fn phasor_table_mixing_matches_nco_mixing() {
        let fs = 44_100.0;
        let fc = 9_200.0;
        let baseband: Vec<C32> = (0..3000)
            .map(|i| C32::from_angle(TAU * 43.0 * i as f64 / fs))
            .collect();
        let mut want = Vec::new();
        upconvert(&mut Nco::new(fs, fc), &baseband, &mut want);
        let mut table = PhasorTable::new(fs, fc);
        let mut got = Vec::new();
        table.upconvert(&baseband, &mut got);
        assert_eq!(
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let mut want_bb = Vec::new();
        downconvert(&mut Nco::new(fs, fc), &want, &mut want_bb);
        let mut got_bb = Vec::new();
        table.downconvert(&want, &mut got_bb);
        for (w, g) in want_bb.iter().zip(&got_bb) {
            assert_eq!(w.re.to_bits(), g.re.to_bits());
            assert_eq!(w.im.to_bits(), g.im.to_bits());
        }
    }

    #[test]
    fn negative_frequency_conjugates() {
        let mut pos = Nco::new(1000.0, 100.0);
        let mut neg = Nco::new(1000.0, -100.0);
        for _ in 0..50 {
            let p = pos.next();
            let n = neg.next();
            assert!((p.conj() - n).abs() < 1e-6);
        }
    }
}
