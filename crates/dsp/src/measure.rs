//! Level and SNR measurement helpers.
//!
//! These are the primitives behind the RSSI readings the evaluation reports:
//! a receiver's RSSI is just the received signal power expressed in dB
//! relative to a reference, and frame-loss-vs-RSSI curves fall out of the
//! noise power the channel adds.

/// Mean power of a real signal (`mean(x²)`).
pub fn power(signal: &[f32]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    signal.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>() / signal.len() as f64
}

/// Root-mean-square level.
pub fn rms(signal: &[f32]) -> f64 {
    power(signal).sqrt()
}

/// Converts a power ratio to decibels. Zero or negative input saturates to
/// -400 dB, well below anything physical, so callers can subtract safely.
pub fn db_from_power(p: f64) -> f64 {
    if p <= 0.0 {
        -400.0
    } else {
        10.0 * p.log10()
    }
}

/// Converts decibels to a power ratio.
pub fn power_from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts an amplitude ratio to decibels (20·log10).
pub fn db_from_amplitude(a: f64) -> f64 {
    if a <= 0.0 {
        -400.0
    } else {
        20.0 * a.log10()
    }
}

/// Converts decibels to an amplitude ratio.
pub fn amplitude_from_db(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Estimates SNR in dB given a clean reference and the received signal.
///
/// The error signal is `received - reference`; both slices must be aligned
/// and equally long.
///
/// # Panics
/// Panics if lengths differ.
pub fn snr_db(reference: &[f32], received: &[f32]) -> f64 {
    assert_eq!(reference.len(), received.len(), "aligned slices required");
    let sig = power(reference);
    let noise: f64 = reference
        .iter()
        .zip(received)
        .map(|(&r, &x)| {
            let e = (x - r) as f64;
            e * e
        })
        .sum::<f64>()
        / reference.len().max(1) as f64;
    db_from_power(sig) - db_from_power(noise)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_unit_sine_is_half() {
        let sig: Vec<f32> = (0..48000)
            .map(|i| (2.0 * std::f64::consts::PI * 100.0 * i as f64 / 48000.0).sin() as f32)
            .collect();
        assert!((power(&sig) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn db_roundtrip() {
        for &db in &[-60.0, -3.0, 0.0, 10.0] {
            assert!((db_from_power(power_from_db(db)) - db).abs() < 1e-9);
            assert!((db_from_amplitude(amplitude_from_db(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_power_saturates() {
        assert_eq!(db_from_power(0.0), -400.0);
        assert_eq!(db_from_amplitude(-1.0), -400.0);
    }

    #[test]
    fn snr_matches_injected_noise() {
        let reference: Vec<f32> = (0..10000).map(|i| ((i as f32) * 0.1).sin()).collect();
        // Add noise 20 dB below the signal.
        let noise_amp = (power(&reference) / 100.0).sqrt() as f32 * std::f32::consts::SQRT_2;
        let received: Vec<f32> = reference
            .iter()
            .enumerate()
            .map(|(i, &r)| r + noise_amp * ((i as f32) * 1.7).sin())
            .collect();
        let snr = snr_db(&reference, &received);
        assert!((snr - 20.0).abs() < 1.0, "snr={snr}");
    }

    #[test]
    fn empty_signal_has_zero_power() {
        assert_eq!(power(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
    }
}
