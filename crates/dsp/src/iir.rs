//! IIR sections: biquads and the FM pre-/de-emphasis shelf.
//!
//! Broadcast FM boosts treble before modulation (pre-emphasis) and cuts it
//! symmetrically in the receiver (de-emphasis) to fight the triangular noise
//! spectrum of the FM discriminator. Both are single-pole shelves with a time
//! constant of 50 µs (75 µs in the Americas); SONIC's radio substrate applies
//! them around the data band exactly as a real exciter/tuner would.

use std::f64::consts::PI;

/// Direct-form-I biquad section.
#[derive(Debug, Clone)]
pub struct Biquad {
    b0: f32,
    b1: f32,
    b2: f32,
    a1: f32,
    a2: f32,
    x1: f32,
    x2: f32,
    y1: f32,
    y2: f32,
}

impl Biquad {
    /// Creates a biquad from normalized coefficients (a0 == 1).
    pub fn new(b0: f32, b1: f32, b2: f32, a1: f32, a2: f32) -> Self {
        Biquad {
            b0,
            b1,
            b2,
            a1,
            a2,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        }
    }

    /// RBJ-cookbook low-pass at `fc` Hz, quality `q`, for sample rate `fs`.
    pub fn lowpass(fs: f64, fc: f64, q: f64) -> Self {
        let w0 = 2.0 * PI * fc / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cosw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad::new(
            (((1.0 - cosw) / 2.0) / a0) as f32,
            ((1.0 - cosw) / a0) as f32,
            (((1.0 - cosw) / 2.0) / a0) as f32,
            ((-2.0 * cosw) / a0) as f32,
            ((1.0 - alpha) / a0) as f32,
        )
    }

    /// RBJ-cookbook high-pass at `fc` Hz, quality `q`, for sample rate `fs`.
    pub fn highpass(fs: f64, fc: f64, q: f64) -> Self {
        let w0 = 2.0 * PI * fc / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cosw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad::new(
            (((1.0 + cosw) / 2.0) / a0) as f32,
            ((-(1.0 + cosw)) / a0) as f32,
            (((1.0 + cosw) / 2.0) / a0) as f32,
            ((-2.0 * cosw) / a0) as f32,
            ((1.0 - alpha) / a0) as f32,
        )
    }

    /// Filters one sample.
    #[inline]
    pub fn push(&mut self, x: f32) -> f32 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Filters a block in place.
    pub fn process(&mut self, buf: &mut [f32]) {
        for v in buf.iter_mut() {
            *v = self.push(*v);
        }
    }

    /// Clears internal state.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }
}

/// Single-pole de-emphasis filter (`tau` seconds, e.g. 50e-6).
///
/// `y[n] = a·x[n] + (1-a)·y[n-1]` with `a = 1 - e^{-1/(fs·tau)}`.
#[derive(Debug, Clone)]
pub struct Deemphasis {
    a: f32,
    state: f32,
}

impl Deemphasis {
    /// Creates a de-emphasis filter for sample rate `fs` and time constant `tau`.
    pub fn new(fs: f64, tau: f64) -> Self {
        let a = 1.0 - (-1.0 / (fs * tau)).exp();
        Deemphasis {
            a: a as f32,
            state: 0.0,
        }
    }

    /// Filters one sample.
    #[inline]
    pub fn push(&mut self, x: f32) -> f32 {
        self.state += self.a * (x - self.state);
        self.state
    }

    /// Filters a block in place.
    pub fn process(&mut self, buf: &mut [f32]) {
        for v in buf.iter_mut() {
            *v = self.push(*v);
        }
    }
}

/// Pre-emphasis: the inverse shelf of [`Deemphasis`], `y[n] = (x[n] - (1-a)·x̂)` —
/// implemented as the exact filter inverse so a pre/de cascade is identity.
#[derive(Debug, Clone)]
pub struct Preemphasis {
    a: f32,
    prev_y: f32,
}

impl Preemphasis {
    /// Creates a pre-emphasis filter matching `Deemphasis::new(fs, tau)`.
    pub fn new(fs: f64, tau: f64) -> Self {
        let a = 1.0 - (-1.0 / (fs * tau)).exp();
        Preemphasis {
            a: a as f32,
            prev_y: 0.0,
        }
    }

    /// Filters one sample (inverse of the de-emphasis recursion).
    #[inline]
    pub fn push(&mut self, x: f32) -> f32 {
        // Deemphasis: s += a(x - s); output s.
        // Inverse: given desired output x (as deemph input recovered),
        // y = (x - (1-a)·prev) / a where prev is previous deemph output.
        let y = (x - (1.0 - self.a) * self.prev_y) / self.a;
        self.prev_y = x;
        y
    }

    /// Filters a block in place.
    pub fn process(&mut self, buf: &mut [f32]) {
        for v in buf.iter_mut() {
            *v = self.push(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(fs: f64, f: f64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (2.0 * PI * f * i as f64 / fs).sin() as f32)
            .collect()
    }

    fn rms(x: &[f32]) -> f32 {
        (x.iter().map(|&v| v * v).sum::<f32>() / x.len() as f32).sqrt()
    }

    #[test]
    fn biquad_lowpass_attenuates_high() {
        let fs = 48000.0;
        let mut lp = Biquad::lowpass(fs, 1000.0, 0.707);
        let mut low = tone(fs, 200.0, 4800);
        let mut high = tone(fs, 12000.0, 4800);
        lp.process(&mut low);
        lp.reset();
        lp.process(&mut high);
        assert!(rms(&low[1000..]) > 0.6);
        assert!(rms(&high[1000..]) < 0.02);
    }

    #[test]
    fn biquad_highpass_attenuates_low() {
        let fs = 48000.0;
        let mut hp = Biquad::highpass(fs, 5000.0, 0.707);
        let mut low = tone(fs, 100.0, 4800);
        hp.process(&mut low);
        assert!(rms(&low[1000..]) < 0.01);
    }

    #[test]
    fn deemphasis_cuts_treble() {
        let fs = 192000.0;
        let mut de = Deemphasis::new(fs, 50e-6);
        let mut hi = tone(fs, 15000.0, 19200);
        let mut lo = tone(fs, 100.0, 19200);
        de.process(&mut hi);
        let mut de2 = Deemphasis::new(fs, 50e-6);
        de2.process(&mut lo);
        // Unit sine RMS is 0.707. 15 kHz is ~4.7x the 3.18 kHz corner:
        // expect clear attenuation there and near-unity gain at 100 Hz.
        assert!(rms(&hi[4000..]) < 0.3);
        assert!(rms(&lo[4000..]) > 0.68);
    }

    #[test]
    fn pre_then_de_is_identity() {
        let fs = 192000.0;
        let mut pre = Preemphasis::new(fs, 50e-6);
        let mut de = Deemphasis::new(fs, 50e-6);
        let x = tone(fs, 9200.0, 4000);
        let mut y = x.clone();
        pre.process(&mut y);
        de.process(&mut y);
        for (a, b) in x.iter().zip(&y).skip(10) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }
}
