//! Minimal single-precision complex number type.
//!
//! The whole SONIC signal chain works on `f32` samples with `f64` twiddle
//! generation, which keeps buffers half the size of an `f64` pipeline while
//! leaving ~100 dB of numeric headroom — far beyond the channel SNRs the
//! system ever sees.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f32` real and imaginary parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl C32 {
    /// Zero.
    pub const ZERO: C32 = C32 { re: 0.0, im: 0.0 };
    /// One (multiplicative identity).
    pub const ONE: C32 = C32 { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: C32 = C32 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        C32 { re, im }
    }

    /// Creates a unit-magnitude complex number `e^{j·theta}`.
    ///
    /// The angle is taken in `f64` so that long phase accumulators do not
    /// lose precision before the final conversion.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        C32 {
            re: theta.cos() as f32,
            im: theta.sin() as f32,
        }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(mag: f32, theta: f32) -> Self {
        C32 {
            re: mag * theta.cos(),
            im: mag * theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C32 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²` (avoids the square root of [`C32::abs`]).
    #[inline]
    pub fn norm_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f32) -> Self {
        C32 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `self / |self|`, or zero for the zero input.
    #[inline]
    pub fn normalize(self) -> Self {
        let m = self.abs();
        if m > 0.0 {
            self.scale(1.0 / m)
        } else {
            C32::ZERO
        }
    }

    /// `self * other.conj()` — the correlation kernel used by sync detectors.
    #[inline]
    pub fn mul_conj(self, other: Self) -> Self {
        C32 {
            re: self.re * other.re + self.im * other.im,
            im: self.im * other.re - self.re * other.im,
        }
    }
}

impl Add for C32 {
    type Output = C32;
    #[inline]
    fn add(self, rhs: C32) -> C32 {
        C32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C32 {
    #[inline]
    fn add_assign(&mut self, rhs: C32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C32 {
    type Output = C32;
    #[inline]
    fn sub(self, rhs: C32) -> C32 {
        C32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C32 {
    #[inline]
    fn sub_assign(&mut self, rhs: C32) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C32 {
    type Output = C32;
    #[inline]
    fn mul(self, rhs: C32) -> C32 {
        C32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C32 {
    #[inline]
    fn mul_assign(&mut self, rhs: C32) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for C32 {
    type Output = C32;
    #[inline]
    fn mul(self, rhs: f32) -> C32 {
        self.scale(rhs)
    }
}

impl Div for C32 {
    type Output = C32;
    #[inline]
    fn div(self, rhs: C32) -> C32 {
        let d = rhs.norm_sq();
        C32::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f32> for C32 {
    type Output = C32;
    #[inline]
    fn div(self, rhs: f32) -> C32 {
        self.scale(1.0 / rhs)
    }
}

impl Neg for C32 {
    type Output = C32;
    #[inline]
    fn neg(self) -> C32 {
        C32::new(-self.re, -self.im)
    }
}

impl Sum for C32 {
    fn sum<I: Iterator<Item = C32>>(iter: I) -> C32 {
        iter.fold(C32::ZERO, |a, b| a + b)
    }
}

impl From<f32> for C32 {
    #[inline]
    fn from(re: f32) -> Self {
        C32::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C32, b: C32) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = C32::new(1.5, -2.25);
        let b = C32::new(-0.5, 4.0);
        assert!(close(a + b - b, a));
    }

    #[test]
    fn mul_matches_expansion() {
        let a = C32::new(2.0, 3.0);
        let b = C32::new(-1.0, 0.5);
        // (2+3j)(-1+0.5j) = -2 + 1j - 3j + 1.5 j² = -3.5 - 2j
        assert!(close(a * b, C32::new(-3.5, -2.0)));
    }

    #[test]
    fn div_inverts_mul() {
        let a = C32::new(0.7, -1.3);
        let b = C32::new(2.0, 0.25);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn conj_negates_imaginary() {
        assert_eq!(C32::new(1.0, 2.0).conj(), C32::new(1.0, -2.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C32::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-6);
        assert!((z.arg() - 0.7).abs() < 1e-6);
    }

    #[test]
    fn from_angle_is_unit() {
        for k in 0..16 {
            let z = C32::from_angle(k as f64 * 0.5);
            assert!((z.abs() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn mul_conj_matches() {
        let a = C32::new(1.0, 2.0);
        let b = C32::new(3.0, -4.0);
        assert!(close(a.mul_conj(b), a * b.conj()));
    }

    #[test]
    fn normalize_zero_is_zero() {
        assert_eq!(C32::ZERO.normalize(), C32::ZERO);
    }

    #[test]
    fn sum_accumulates() {
        let v = [C32::new(1.0, 1.0), C32::new(2.0, -1.0)];
        let s: C32 = v.iter().copied().sum();
        assert!(close(s, C32::new(3.0, 0.0)));
    }
}
