//! Radix-2 iterative Cooley-Tukey FFT.
//!
//! The OFDM modem performs one forward or inverse transform per symbol, so
//! the plan (bit-reversal permutation + twiddle table) is computed once in
//! [`Fft::new`] and reused. Sizes must be powers of two; the SONIC profiles
//! use 1024.

use crate::complex::C32;

/// A reusable FFT plan for a fixed power-of-two size.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// Twiddles for the forward transform: `e^{-2πjk/n}` for `k < n/2`.
    twiddles: Vec<C32>,
    /// Conjugated twiddles for the inverse transform. Precomputing them
    /// keeps the butterfly inner loop branch-free; `conj` is exact, so the
    /// arithmetic is bit-identical to conjugating on the fly.
    inv_twiddles: Vec<C32>,
    /// Bit-reversal permutation indices.
    rev: Vec<u32>,
    /// Base-4 digit-reversal permutation indices for the radix-4 path.
    /// Empty when `log2(n)` is odd (the radix-4 path falls back to radix-2).
    rev4: Vec<u32>,
}

impl Fft {
    /// Builds a plan for an `n`-point transform.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or is smaller than 2.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "FFT size must be a power of two >= 2, got {n}");
        let mut twiddles = Vec::with_capacity(n / 2);
        for k in 0..n / 2 {
            let theta = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            twiddles.push(C32::from_angle(theta));
        }
        let inv_twiddles = twiddles.iter().map(|w| w.conj()).collect();
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        let rev4 = if bits.is_multiple_of(2) {
            (0..n)
                .map(|i| digit4_reverse(i, bits / 2) as u32)
                .collect()
        } else {
            Vec::new()
        };
        Fft {
            n,
            twiddles,
            inv_twiddles,
            rev,
            rev4,
        }
    }

    /// Transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; plans are at least 2 points. Present for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward DFT: `X[k] = Σ x[t]·e^{-2πjkt/n}` (no scaling).
    ///
    /// # Panics
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [C32]) {
        assert_eq!(buf.len(), self.n, "buffer length must equal FFT size");
        self.permute(buf);
        self.butterflies(buf, false);
    }

    /// In-place inverse DFT, scaled by `1/n` so `inverse(forward(x)) == x`.
    ///
    /// Power-of-4 sizes (including the 1024-point OFDM transform) take the
    /// radix-4 path, which does ~25% fewer complex multiplies per pass.
    ///
    /// # Panics
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [C32]) {
        assert_eq!(buf.len(), self.n, "buffer length must equal FFT size");
        let log2 = self.n.trailing_zeros();
        if log2.is_multiple_of(2) {
            self.permute4(buf);
            self.radix4_butterflies(buf, true);
        } else {
            self.permute(buf);
            self.butterflies(buf, true);
        }
        let k = 1.0 / self.n as f32;
        for v in buf.iter_mut() {
            *v = v.scale(k);
        }
    }

    fn permute(&self, buf: &mut [C32]) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
    }

    fn butterflies(&self, buf: &mut [C32], inverse: bool) {
        let n = self.n;
        let tw = if inverse {
            &self.inv_twiddles
        } else {
            &self.twiddles
        };
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                // Split at the block boundary so the two butterfly halves
                // index disjoint slices without bounds checks in the loop.
                let (lo, hi) = buf[start..start + len].split_at_mut(half);
                for (k, (a_ref, b_ref)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                    let w = tw[k * stride];
                    let a = *a_ref;
                    let b = *b_ref * w;
                    *a_ref = a + b;
                    *b_ref = a - b;
                }
            }
            len <<= 1;
        }
    }
}

/// Forward DFT specialized for real input via the half-size packing trick:
/// the `n` real samples are viewed as `n/2` complex samples, transformed
/// with an `n/2`-point complex FFT (radix-4 where the size allows), then
/// untangled into the full `n`-bin spectrum.
///
/// Roughly 2× cheaper than padding into [`Fft::forward`]. This is a separate
/// opt-in path: its output differs from the complex transform only by float
/// rounding, so the bit-exact OFDM hot paths keep using [`Fft`] while
/// spectral measurements use this.
#[derive(Debug, Clone)]
pub struct RealFft {
    n: usize,
    half: Fft,
    /// `e^{-2πjk/n}` for the untangle stage, `k < n/4 + 1`.
    untangle: Vec<C32>,
}

impl RealFft {
    /// Builds a plan for an `n`-point real transform.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or is smaller than 4.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 4,
            "real FFT size must be a power of two >= 4, got {n}"
        );
        let untangle = (0..n / 4 + 1)
            .map(|k| C32::from_angle(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        RealFft {
            n,
            half: Fft::new(n / 2),
            untangle,
        }
    }

    /// Transform size (number of real input samples and complex output bins).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; plans are at least 4 points. Present for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Computes the full `n`-bin spectrum of `signal` into `out`
    /// (`out` is resized to `n`). Matches [`Fft::forward`] on the same
    /// zero-imaginary input up to float rounding.
    ///
    /// # Panics
    /// Panics if `signal.len() != self.len()`.
    pub fn forward(&self, signal: &[f32], out: &mut Vec<C32>) {
        assert_eq!(signal.len(), self.n, "signal length must equal FFT size");
        let h = self.n / 2;
        // Pack adjacent real samples into complex values: z[t] = x[2t] + j·x[2t+1].
        out.clear();
        out.reserve(self.n);
        for t in 0..h {
            out.push(C32::new(signal[2 * t], signal[2 * t + 1]));
        }
        self.half.forward_radix4(&mut out[..h]);

        // Untangle: with E/O the DFTs of the even/odd subsequences,
        //   Z[k]      = E[k] + jO[k]
        //   Z[h-k]^*  = E[k] - jO[k]
        // so X[k] = E[k] + W_n^k O[k] and X[k+h] = E[k] - W_n^k O[k].
        out.resize(self.n, C32::ZERO);
        let (lo, hi) = out.split_at_mut(h);
        // DC and Nyquist bins are real-valued combinations of Z[0].
        let z0 = lo[0];
        lo[0] = C32::new(z0.re + z0.im, 0.0);
        hi[0] = C32::new(z0.re - z0.im, 0.0);
        for k in 1..h / 2 + 1 {
            let zk = lo[k];
            let zmk = if k == h - k { zk } else { lo[h - k] };
            let e = (zk + zmk.conj()).scale(0.5);
            let o_j = (zk - zmk.conj()).scale(0.5); // j·O[k]
            let o = C32::new(o_j.im, -o_j.re);
            let w = self.untangle[k];
            let t = o * w;
            let xk = e + t;
            let xkh = e - t;
            lo[k] = xk;
            hi[k] = xkh;
            if k != h - k {
                // Real-input symmetry: X[n-k] = X[k]^*.
                lo[h - k] = xkh.conj();
                hi[h - k] = xk.conj();
            }
        }
        // Fix the ordering: bins h/2+1..h of the lower half were written as
        // conjugate-symmetric partners above; nothing else to do — lo holds
        // X[0..h], hi holds X[h..n].
    }
}

impl Fft {
    /// In-place forward DFT using radix-4 butterflies where the size is a
    /// power of 4 (falls back to [`Fft::forward`] otherwise). Radix-4 merges
    /// two radix-2 stages and trades one complex multiply for trivial ±j
    /// rotations, so its rounding differs slightly from the radix-2 path —
    /// callers that require bit-exact agreement with the OFDM chain must use
    /// [`Fft::forward`].
    pub fn forward_radix4(&self, buf: &mut [C32]) {
        assert_eq!(buf.len(), self.n, "buffer length must equal FFT size");
        let log2 = self.n.trailing_zeros();
        if !log2.is_multiple_of(2) {
            self.forward(buf);
            return;
        }
        self.permute4(buf);
        self.radix4_butterflies(buf, false);
    }

    /// Base-4 digit reversal permutation (= bit reversal of digit pairs).
    fn permute4(&self, buf: &mut [C32]) {
        debug_assert_eq!(self.rev4.len(), self.n);
        for i in 0..self.n {
            let j = self.rev4[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
    }

    fn radix4_butterflies(&self, buf: &mut [C32], inverse: bool) {
        let n = self.n;
        let tw = if inverse {
            &self.inv_twiddles
        } else {
            &self.twiddles
        };
        // ∓j·(b − d) is the radix-4 "free" rotation (+j when inverting,
        // since W_4^{-1} = +j). Folding the direction into a ±1 factor keeps
        // the butterfly branch-free; multiplying by ±1.0 is exact.
        let s: f32 = if inverse { 1.0 } else { -1.0 };

        // First stage (len = 4): every twiddle is unity, so skip the
        // multiplies entirely.
        for chunk in buf.chunks_exact_mut(4) {
            let (a, b, c, d) = (chunk[0], chunk[1], chunk[2], chunk[3]);
            let ac_p = a + c;
            let ac_m = a - c;
            let bd_p = b + d;
            let t = b - d;
            let bd_rot = C32::new(-s * t.im, s * t.re);
            chunk[0] = ac_p + bd_p;
            chunk[1] = ac_m + bd_rot;
            chunk[2] = ac_p - bd_p;
            chunk[3] = ac_m - bd_rot;
        }

        let mut len = 16;
        while len <= n {
            let quarter = len / 4;
            let stride = n / len;
            for chunk in buf.chunks_exact_mut(len) {
                // Split the block into its four quarters so the inner loop
                // indexes each without bounds checks.
                let (q0, rest) = chunk.split_at_mut(quarter);
                let (q1, rest) = rest.split_at_mut(quarter);
                let (q2, q3) = rest.split_at_mut(quarter);
                for k in 0..quarter {
                    let w1 = tw[k * stride];
                    // w2/w3 via table lookups (k*stride*2 < n/2 holds because
                    // len ≥ 4 ⇒ quarter*stride*2 = n/2 ⇒ k*stride*2 < n/2).
                    let w2 = tw[k * stride * 2];
                    let w3 = w1 * w2;
                    let a = q0[k];
                    let b = q1[k] * w1;
                    let c = q2[k] * w2;
                    let d = q3[k] * w3;
                    let ac_p = a + c;
                    let ac_m = a - c;
                    let bd_p = b + d;
                    let t = b - d;
                    let bd_rot = C32::new(-s * t.im, s * t.re);
                    q0[k] = ac_p + bd_p;
                    q1[k] = ac_m + bd_rot;
                    q2[k] = ac_p - bd_p;
                    q3[k] = ac_m - bd_rot;
                }
            }
            len <<= 2;
        }
    }
}

/// Reverses `digits` base-4 digits of `i`.
fn digit4_reverse(i: usize, digits: u32) -> usize {
    let mut x = i;
    let mut r = 0usize;
    for _ in 0..digits {
        r = (r << 2) | (x & 3);
        x >>= 2;
    }
    r
}

/// Computes the forward DFT of a real signal, returning `n` complex bins.
///
/// Convenience wrapper used by spectral measurements; the hot paths keep
/// their own [`Fft`] plans.
pub fn dft_real(signal: &[f32]) -> Vec<C32> {
    let n = signal.len().next_power_of_two().max(2);
    if n < 4 {
        let fft = Fft::new(n);
        let mut buf: Vec<C32> = signal.iter().map(|&s| C32::new(s, 0.0)).collect();
        buf.resize(n, C32::ZERO);
        fft.forward(&mut buf);
        return buf;
    }
    let rfft = RealFft::new(n);
    let mut padded = signal.to_vec();
    padded.resize(n, 0.0);
    let mut out = Vec::new();
    rfft.forward(&padded, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[C32]) -> Vec<C32> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = C32::ZERO;
                for (t, &v) in x.iter().enumerate() {
                    let theta = -2.0 * std::f64::consts::PI * (k * t % n) as f64 / n as f64;
                    acc += v * C32::from_angle(theta);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft_16() {
        let x: Vec<C32> = (0..16)
            .map(|i| C32::new((i as f32 * 0.37).sin(), (i as f32 * 0.91).cos()))
            .collect();
        let want = naive_dft(&x);
        let fft = Fft::new(16);
        let mut got = x.clone();
        fft.forward(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-4, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn roundtrip_1024() {
        let fft = Fft::new(1024);
        let x: Vec<C32> = (0..1024)
            .map(|i| C32::new((i as f32 * 0.01).sin(), (i as f32 * 0.02).cos()))
            .collect();
        let mut buf = x.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-4);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let fft = Fft::new(64);
        let mut buf = vec![C32::ZERO; 64];
        buf[0] = C32::ONE;
        fft.forward(&mut buf);
        for v in &buf {
            assert!((*v - C32::ONE).abs() < 1e-5);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 256;
        let k0 = 19;
        let fft = Fft::new(n);
        let mut buf: Vec<C32> = (0..n)
            .map(|t| C32::from_angle(2.0 * std::f64::consts::PI * k0 as f64 * t as f64 / n as f64))
            .collect();
        fft.forward(&mut buf);
        for (k, v) in buf.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f32).abs() < 1e-2);
            } else {
                assert!(v.abs() < 1e-2, "leak at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let fft = Fft::new(n);
        let x: Vec<C32> = (0..n).map(|i| C32::new((i as f32).sin(), 0.3)).collect();
        let time: f32 = x.iter().map(|v| v.norm_sq()).sum();
        let mut buf = x;
        fft.forward(&mut buf);
        let freq: f32 = buf.iter().map(|v| v.norm_sq()).sum::<f32>() / n as f32;
        assert!((time - freq).abs() / time < 1e-4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Fft::new(100);
    }

    #[test]
    fn dft_real_pads_to_power_of_two() {
        let out = dft_real(&[1.0, 2.0, 3.0]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn real_fft_matches_complex_fft() {
        for n in [4usize, 16, 64, 1024] {
            let signal: Vec<f32> = (0..n).map(|i| (i as f32 * 0.137).sin() + 0.2).collect();
            let fft = Fft::new(n);
            let mut want: Vec<C32> = signal.iter().map(|&s| C32::new(s, 0.0)).collect();
            fft.forward(&mut want);
            let rfft = RealFft::new(n);
            let mut got = Vec::new();
            rfft.forward(&signal, &mut got);
            assert_eq!(got.len(), n);
            let scale = (n as f32).sqrt();
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((*g - *w).abs() < 1e-3 * scale, "n={n} bin {k}: {g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn radix4_matches_radix2() {
        for n in [4usize, 16, 256, 1024] {
            let x: Vec<C32> = (0..n)
                .map(|i| C32::new((i as f32 * 0.21).sin(), (i as f32 * 0.33).cos()))
                .collect();
            let fft = Fft::new(n);
            let mut want = x.clone();
            fft.forward(&mut want);
            let mut got = x.clone();
            fft.forward_radix4(&mut got);
            let scale = (n as f32).sqrt();
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((*g - *w).abs() < 1e-3 * scale, "n={n} bin {k}: {g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn inverse_radix4_matches_conjugate_identity() {
        // inverse(x) == conj(forward(conj(x)))/n; the right side runs the
        // (radix-2) forward path, checking the radix-4 inverse butterflies.
        for n in [16usize, 64, 1024] {
            let x: Vec<C32> = (0..n)
                .map(|i| C32::new((i as f32 * 0.17).cos(), (i as f32 * 0.29).sin()))
                .collect();
            let fft = Fft::new(n);
            let mut got = x.clone();
            fft.inverse(&mut got);
            let mut want: Vec<C32> = x.iter().map(|v| v.conj()).collect();
            fft.forward(&mut want);
            let scale = (n as f32).sqrt();
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                let w = w.conj().scale(1.0 / n as f32);
                assert!((*g - w).abs() < 1e-4 * scale, "n={n} bin {k}: {g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn radix4_falls_back_on_odd_log_sizes() {
        let n = 32; // 2^5: not a power of 4.
        let x: Vec<C32> = (0..n).map(|i| C32::new(i as f32, -(i as f32))).collect();
        let fft = Fft::new(n);
        let mut want = x.clone();
        fft.forward(&mut want);
        let mut got = x.clone();
        fft.forward_radix4(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.re.to_bits(), w.re.to_bits());
            assert_eq!(g.im.to_bits(), w.im.to_bits());
        }
    }
}
