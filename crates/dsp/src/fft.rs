//! Radix-2 iterative Cooley-Tukey FFT.
//!
//! The OFDM modem performs one forward or inverse transform per symbol, so
//! the plan (bit-reversal permutation + twiddle table) is computed once in
//! [`Fft::new`] and reused. Sizes must be powers of two; the SONIC profiles
//! use 1024.

use crate::complex::C32;

/// A reusable FFT plan for a fixed power-of-two size.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// Twiddles for the forward transform: `e^{-2πjk/n}` for `k < n/2`.
    twiddles: Vec<C32>,
    /// Bit-reversal permutation indices.
    rev: Vec<u32>,
}

impl Fft {
    /// Builds a plan for an `n`-point transform.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or is smaller than 2.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "FFT size must be a power of two >= 2, got {n}");
        let mut twiddles = Vec::with_capacity(n / 2);
        for k in 0..n / 2 {
            let theta = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            twiddles.push(C32::from_angle(theta));
        }
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        Fft { n, twiddles, rev }
    }

    /// Transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; plans are at least 2 points. Present for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward DFT: `X[k] = Σ x[t]·e^{-2πjkt/n}` (no scaling).
    ///
    /// # Panics
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [C32]) {
        assert_eq!(buf.len(), self.n, "buffer length must equal FFT size");
        self.permute(buf);
        self.butterflies(buf, false);
    }

    /// In-place inverse DFT, scaled by `1/n` so `inverse(forward(x)) == x`.
    ///
    /// # Panics
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [C32]) {
        assert_eq!(buf.len(), self.n, "buffer length must equal FFT size");
        self.permute(buf);
        self.butterflies(buf, true);
        let k = 1.0 / self.n as f32;
        for v in buf.iter_mut() {
            *v = v.scale(k);
        }
    }

    fn permute(&self, buf: &mut [C32]) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
    }

    fn butterflies(&self, buf: &mut [C32], inverse: bool) {
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if inverse {
                        w = w.conj();
                    }
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

/// Computes the forward DFT of a real signal, returning `n` complex bins.
///
/// Convenience wrapper used by spectral measurements; the hot paths keep
/// their own [`Fft`] plans.
pub fn dft_real(signal: &[f32]) -> Vec<C32> {
    let n = signal.len().next_power_of_two().max(2);
    let fft = Fft::new(n);
    let mut buf: Vec<C32> = signal.iter().map(|&s| C32::new(s, 0.0)).collect();
    buf.resize(n, C32::ZERO);
    fft.forward(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[C32]) -> Vec<C32> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = C32::ZERO;
                for (t, &v) in x.iter().enumerate() {
                    let theta = -2.0 * std::f64::consts::PI * (k * t % n) as f64 / n as f64;
                    acc += v * C32::from_angle(theta);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft_16() {
        let x: Vec<C32> = (0..16)
            .map(|i| C32::new((i as f32 * 0.37).sin(), (i as f32 * 0.91).cos()))
            .collect();
        let want = naive_dft(&x);
        let fft = Fft::new(16);
        let mut got = x.clone();
        fft.forward(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-4, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn roundtrip_1024() {
        let fft = Fft::new(1024);
        let x: Vec<C32> = (0..1024)
            .map(|i| C32::new((i as f32 * 0.01).sin(), (i as f32 * 0.02).cos()))
            .collect();
        let mut buf = x.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-4);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let fft = Fft::new(64);
        let mut buf = vec![C32::ZERO; 64];
        buf[0] = C32::ONE;
        fft.forward(&mut buf);
        for v in &buf {
            assert!((*v - C32::ONE).abs() < 1e-5);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 256;
        let k0 = 19;
        let fft = Fft::new(n);
        let mut buf: Vec<C32> = (0..n)
            .map(|t| C32::from_angle(2.0 * std::f64::consts::PI * k0 as f64 * t as f64 / n as f64))
            .collect();
        fft.forward(&mut buf);
        for (k, v) in buf.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f32).abs() < 1e-2);
            } else {
                assert!(v.abs() < 1e-2, "leak at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let fft = Fft::new(n);
        let x: Vec<C32> = (0..n).map(|i| C32::new((i as f32).sin(), 0.3)).collect();
        let time: f32 = x.iter().map(|v| v.norm_sq()).sum();
        let mut buf = x;
        fft.forward(&mut buf);
        let freq: f32 = buf.iter().map(|v| v.norm_sq()).sum::<f32>() / n as f32;
        assert!((time - freq).abs() / time < 1e-4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Fft::new(100);
    }

    #[test]
    fn dft_real_pads_to_power_of_two() {
        let out = dft_real(&[1.0, 2.0, 3.0]);
        assert_eq!(out.len(), 4);
    }
}
