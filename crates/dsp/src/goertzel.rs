//! Goertzel single-bin DFT.
//!
//! The FSK baseline modem (GGwave-style) needs the power at a handful of
//! tone frequencies per symbol; Goertzel computes one bin in O(n) without a
//! full FFT.

use std::f64::consts::TAU;

/// Computes the power of `signal` at frequency `freq` (Hz) for sample rate `fs`.
///
/// Returns `|X(f)|²` normalized by the block length so results are comparable
/// across block sizes.
pub fn power(signal: &[f32], fs: f64, freq: f64) -> f32 {
    if signal.is_empty() {
        return 0.0;
    }
    let omega = TAU * freq / fs;
    let coeff = 2.0 * omega.cos();
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for &x in signal {
        let s0 = x as f64 + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    let power = s1 * s1 + s2 * s2 - coeff * s1 * s2;
    (power / (signal.len() as f64 * signal.len() as f64)) as f32
}

/// Returns the index of the strongest frequency among `candidates`.
pub fn strongest(signal: &[f32], fs: f64, candidates: &[f64]) -> usize {
    let mut best = 0;
    let mut best_p = f32::MIN;
    for (i, &f) in candidates.iter().enumerate() {
        let p = power(signal, fs, f);
        if p > best_p {
            best_p = p;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(fs: f64, f: f64, n: usize) -> Vec<f32> {
        (0..n).map(|i| (TAU * f * i as f64 / fs).sin() as f32).collect()
    }

    #[test]
    fn detects_matching_tone() {
        let fs = 48000.0;
        let sig = tone(fs, 3000.0, 480);
        let on = power(&sig, fs, 3000.0);
        let off = power(&sig, fs, 5000.0);
        assert!(on > 50.0 * off, "on={on} off={off}");
    }

    #[test]
    fn strongest_picks_right_candidate() {
        let fs = 48000.0;
        let sig = tone(fs, 2400.0, 960);
        let cands = [1800.0, 2000.0, 2200.0, 2400.0, 2600.0];
        assert_eq!(strongest(&sig, fs, &cands), 3);
    }

    #[test]
    fn empty_signal_is_zero_power() {
        assert_eq!(power(&[], 48000.0, 1000.0), 0.0);
    }

    #[test]
    fn power_scales_with_amplitude() {
        let fs = 8000.0;
        let a: Vec<f32> = tone(fs, 1000.0, 800);
        let b: Vec<f32> = a.iter().map(|x| x * 2.0).collect();
        let pa = power(&a, fs, 1000.0);
        let pb = power(&b, fs, 1000.0);
        assert!((pb / pa - 4.0).abs() < 0.1);
    }
}
