//! Window functions for spectral shaping.
//!
//! The OFDM transmitter applies a short raised-cosine edge taper to reduce
//! out-of-band splatter into the rest of the FM mono band; measurement code
//! uses Hann windows before FFTs.

use std::f64::consts::PI;

/// Window shapes supported by [`generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// All-ones window (no shaping).
    Rectangular,
    /// Hann window: `0.5 - 0.5·cos(2πn/(N-1))`.
    Hann,
    /// Hamming window: `0.54 - 0.46·cos(2πn/(N-1))`.
    Hamming,
    /// Blackman window (three-term, a0=0.42).
    Blackman,
}

/// Generates a window of length `n`.
///
/// For `n == 1` every shape degenerates to `[1.0]`.
pub fn generate(kind: Window, n: usize) -> Vec<f32> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    let m = (n - 1) as f64;
    (0..n)
        .map(|i| {
            let x = 2.0 * PI * i as f64 / m;
            let w = match kind {
                Window::Rectangular => 1.0,
                Window::Hann => 0.5 - 0.5 * x.cos(),
                Window::Hamming => 0.54 - 0.46 * x.cos(),
                Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
            };
            w as f32
        })
        .collect()
}

/// Multiplies `buf` by the window in place.
///
/// # Panics
/// Panics if lengths differ.
pub fn apply(buf: &mut [f32], window: &[f32]) {
    assert_eq!(buf.len(), window.len(), "window length mismatch");
    for (b, w) in buf.iter_mut().zip(window) {
        *b *= w;
    }
}

/// Raised-cosine edge ramp of length `n` rising from 0 to 1.
///
/// Used to taper the first/last samples of each OFDM burst so key-on clicks
/// do not splatter across the audio band.
pub fn raised_cosine_edge(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = PI * (i as f64 + 0.5) / n as f64;
            (0.5 - 0.5 * x.cos()) as f32
        })
        // lint: allow(no-alloc) — ramp table; callers cache it, rebuilt only on burst-length change
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hann_endpoints_are_zero() {
        let w = generate(Window::Hann, 64);
        assert!(w[0].abs() < 1e-6);
        assert!(w[63].abs() < 1e-6);
        assert!((w[31] - 1.0).abs() < 0.01);
    }

    #[test]
    fn hamming_endpoints_are_nonzero() {
        let w = generate(Window::Hamming, 64);
        assert!((w[0] - 0.08).abs() < 1e-3);
    }

    #[test]
    fn rectangular_is_flat() {
        assert!(generate(Window::Rectangular, 8).iter().all(|&x| x == 1.0));
    }

    #[test]
    fn blackman_is_symmetric() {
        let w = generate(Window::Blackman, 33);
        for i in 0..16 {
            assert!((w[i] - w[32 - i]).abs() < 1e-6);
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert!(generate(Window::Hann, 0).is_empty());
        assert_eq!(generate(Window::Hann, 1), vec![1.0]);
    }

    #[test]
    fn apply_multiplies() {
        let mut buf = vec![2.0; 4];
        apply(&mut buf, &[0.0, 0.5, 1.0, 0.25]);
        assert_eq!(buf, vec![0.0, 1.0, 2.0, 0.5]);
    }

    #[test]
    fn edge_ramp_is_monotone() {
        let r = raised_cosine_edge(32);
        for pair in r.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        assert!(r[0] > 0.0 && r[31] < 1.0);
    }
}
