//! Feed-forward automatic gain control.
//!
//! Receivers see wildly different levels depending on channel attenuation
//! (cable vs. 1 m of air vs. a weak RF path). The AGC normalizes the block
//! RMS toward a target so the demodulator's soft-decision scaling stays
//! meaningful.

/// Block-based AGC with exponential gain smoothing.
#[derive(Debug, Clone)]
pub struct Agc {
    target_rms: f32,
    /// Smoothing factor in (0,1]; 1.0 adapts instantly.
    alpha: f32,
    gain: f32,
    max_gain: f32,
}

impl Agc {
    /// Creates an AGC aiming for `target_rms` with smoothing `alpha`.
    ///
    /// # Panics
    /// Panics unless `0 < alpha <= 1` and `target_rms > 0`.
    pub fn new(target_rms: f32, alpha: f32) -> Self {
        assert!(target_rms > 0.0, "target RMS must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Agc {
            target_rms,
            alpha,
            gain: 1.0,
            max_gain: 1e4,
        }
    }

    /// Current gain.
    pub fn gain(&self) -> f32 {
        self.gain
    }

    /// Normalizes a block in place and returns the gain that was applied.
    ///
    /// Silent blocks (RMS below 1e-9) leave the gain untouched.
    pub fn process(&mut self, buf: &mut [f32]) -> f32 {
        let rms = (buf.iter().map(|&x| x * x).sum::<f32>() / buf.len().max(1) as f32).sqrt();
        if rms > 1e-9 {
            let desired = (self.target_rms / rms).min(self.max_gain);
            self.gain += self.alpha * (desired - self.gain);
        }
        for v in buf.iter_mut() {
            *v *= self.gain;
        }
        self.gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rms(x: &[f32]) -> f32 {
        (x.iter().map(|&v| v * v).sum::<f32>() / x.len() as f32).sqrt()
    }

    #[test]
    fn converges_to_target() {
        let mut agc = Agc::new(0.5, 0.5);
        let mut block: Vec<f32> = (0..256).map(|i| 0.01 * ((i as f32) * 0.3).sin()).collect();
        for _ in 0..20 {
            let mut b = block.clone();
            agc.process(&mut b);
            block = block.clone(); // source level unchanged
            if (rms(&b) - 0.5).abs() < 0.05 {
                return;
            }
        }
        let mut b = block;
        agc.process(&mut b);
        assert!((rms(&b) - 0.5).abs() < 0.05, "rms={}", rms(&b));
    }

    #[test]
    fn instant_alpha_normalizes_first_block() {
        let mut agc = Agc::new(1.0, 1.0);
        let mut b: Vec<f32> = (0..128).map(|i| 3.0 * ((i as f32) * 0.2).sin()).collect();
        agc.process(&mut b);
        assert!((rms(&b) - 1.0).abs() < 0.05);
    }

    #[test]
    fn silence_keeps_gain() {
        let mut agc = Agc::new(1.0, 1.0);
        let mut loud: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.5).sin()).collect();
        agc.process(&mut loud);
        let g = agc.gain();
        let mut silent = vec![0.0f32; 64];
        agc.process(&mut silent);
        assert_eq!(agc.gain(), g);
    }

    #[test]
    fn gain_is_bounded() {
        let mut agc = Agc::new(1.0, 1.0);
        let mut tiny = vec![1e-8f32; 64];
        agc.process(&mut tiny);
        assert!(agc.gain() <= 1e4);
    }
}
