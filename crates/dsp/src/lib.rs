//! # sonic-dsp
//!
//! Digital signal processing primitives for the SONIC stack.
//!
//! Everything in this crate is implemented from scratch (no external DSP
//! crates) and is deliberately *sans-IO*: every routine operates on
//! caller-provided slices and returns plain data, so the modem and radio
//! layers built on top stay deterministic and unit-testable.
//!
//! Contents:
//!
//! * [`complex`] — minimal `C32` complex type used throughout the stack.
//! * [`fft`] — radix-2 iterative Cooley-Tukey FFT with cached plans.
//! * [`window`] — Hann / Hamming / Blackman / rectangular window functions.
//! * [`fir`] — windowed-sinc FIR design, streaming filters, decimators.
//! * [`iir`] — biquad sections and first-order shelves (FM de-/pre-emphasis).
//! * [`resample`] — polyphase rational resampler.
//! * [`osc`] — numerically controlled oscillator and quadrature mixer.
//! * [`goertzel`] — single-bin DFT power detector (used by the FSK modem).
//! * [`agc`] — simple feed-forward automatic gain control.
//! * [`measure`] — power, RMS, dB conversions and SNR estimation helpers.
//! * [`split`] — structure-of-arrays complex buffers ([`split::SplitC32`]).
//! * [`simd`] — runtime-dispatched SIMD kernels with scalar twins.
//! * [`plan`] — planned transforms ([`plan::FftPlan`], [`plan::FirPlan`]).

// `unsafe` is denied everywhere except the `simd` kernel module, which opts
// back in item-by-item; every unsafe block there carries a `// SAFETY:`
// comment (enforced by sonic-lint R6).
#![deny(unsafe_code)]
#![warn(missing_docs)]
// Decode paths must degrade, not die: unwrap is a typed-error escape hatch
// we only permit in tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod agc;
pub mod complex;
pub mod fft;
pub mod fir;
pub mod goertzel;
pub mod iir;
pub mod measure;
pub mod osc;
pub mod plan;
pub mod resample;
#[allow(unsafe_code)]
pub mod simd;
pub mod split;
pub mod window;

pub use complex::C32;
pub use fft::{Fft, RealFft};
pub use plan::{FftPlan, FirPlan};
pub use split::SplitC32;
