//! Structure-of-arrays complex buffers.
//!
//! The SIMD kernels in [`crate::simd`] operate on separate real/imaginary
//! planes so that an 8-lane vector load touches 8 *independent* samples with
//! no gather, shuffle, or deinterleave step. [`SplitC32`] is the owning
//! buffer for that layout, with conversion shims to and from the interleaved
//! [`C32`] representation used at module boundaries.

use crate::complex::C32;

/// A complex buffer stored as two parallel `f32` planes (structure of
/// arrays). Invariant: `re.len() == im.len()` at all public API boundaries.
#[derive(Debug, Clone, Default)]
pub struct SplitC32 {
    /// Real plane.
    pub re: Vec<f32>,
    /// Imaginary plane.
    pub im: Vec<f32>,
}

impl SplitC32 {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SplitC32::default()
    }

    /// Creates a zero-filled buffer of `n` samples.
    pub fn zeroed(n: usize) -> Self {
        SplitC32 {
            re: vec![0.0; n],
            im: vec![0.0; n],
        }
    }

    /// Number of complex samples.
    #[inline]
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.re.len(), self.im.len());
        self.re.len()
    }

    /// True when the buffer holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Clears both planes (capacity is retained).
    pub fn clear(&mut self) {
        self.re.clear();
        self.im.clear();
    }

    /// Resizes both planes to `n` samples, zero-filling growth.
    pub fn resize(&mut self, n: usize) {
        self.re.resize(n, 0.0);
        self.im.resize(n, 0.0);
    }

    /// Zero-fills both planes without changing the length.
    pub fn fill_zero(&mut self) {
        self.re.fill(0.0);
        self.im.fill(0.0);
    }

    /// Builds a split buffer from interleaved complex samples.
    pub fn from_interleaved(src: &[C32]) -> Self {
        let mut s = SplitC32::zeroed(src.len());
        s.copy_from_interleaved(src);
        s
    }

    /// Overwrites this buffer with interleaved samples (resizing to match).
    pub fn copy_from_interleaved(&mut self, src: &[C32]) {
        self.resize(src.len());
        for (i, v) in src.iter().enumerate() {
            self.re[i] = v.re;
            self.im[i] = v.im;
        }
    }

    /// Writes the buffer out as interleaved complex samples.
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn write_interleaved(&self, out: &mut [C32]) {
        assert_eq!(out.len(), self.len(), "interleaved target length mismatch");
        for (i, v) in out.iter_mut().enumerate() {
            *v = C32::new(self.re[i], self.im[i]);
        }
    }

    /// Appends the buffer to `out` as interleaved complex samples.
    pub fn append_interleaved(&self, out: &mut Vec<C32>) {
        let start = out.len();
        out.resize(start + self.len(), C32::ZERO);
        self.write_interleaved(&mut out[start..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_interleaved() {
        let src: Vec<C32> = (0..37).map(|i| C32::new(i as f32, -(i as f32))).collect();
        let s = SplitC32::from_interleaved(&src);
        assert_eq!(s.len(), 37);
        let mut back = vec![C32::ZERO; 37];
        s.write_interleaved(&mut back);
        assert_eq!(src, back);
        let mut appended = vec![C32::ONE];
        s.append_interleaved(&mut appended);
        assert_eq!(&appended[1..], &src[..]);
    }

    #[test]
    fn resize_and_clear_keep_planes_in_sync() {
        let mut s = SplitC32::new();
        assert!(s.is_empty());
        s.resize(9);
        assert_eq!(s.len(), 9);
        s.re[3] = 1.0;
        s.fill_zero();
        assert_eq!(s.re[3], 0.0);
        s.clear();
        assert!(s.is_empty());
    }
}
