//! FIR filter design and streaming application.
//!
//! Filters are designed with the windowed-sinc method (Hamming window by
//! default), which is plenty for the roll-offs the FM multiplexer and the
//! acoustic channel models need. Streaming state is kept in the filter so the
//! radio pipeline can process audio in arbitrary block sizes.

use crate::complex::C32;
use crate::plan::FirPlan;
use crate::simd;
use crate::split::SplitC32;
use crate::window::{generate, Window};
use std::f64::consts::PI;
use std::sync::Arc;

/// Designs a linear-phase low-pass FIR with `taps` coefficients.
///
/// `cutoff` is the -6 dB point as a fraction of the sample rate (0..0.5).
/// Odd tap counts are recommended so the group delay is an integer number of
/// samples (`(taps-1)/2`).
///
/// # Panics
/// Panics if `taps == 0` or `cutoff` is outside `(0, 0.5)`.
pub fn design_lowpass(taps: usize, cutoff: f64) -> Vec<f32> {
    assert!(taps > 0, "need at least one tap");
    assert!(cutoff > 0.0 && cutoff < 0.5, "cutoff must be in (0, 0.5), got {cutoff}");
    let m = (taps - 1) as f64 / 2.0;
    let window = generate(Window::Hamming, taps);
    let mut h: Vec<f32> = (0..taps)
        .map(|i| {
            let t = i as f64 - m;
            let sinc = if t.abs() < 1e-12 {
                2.0 * cutoff
            } else {
                (2.0 * PI * cutoff * t).sin() / (PI * t)
            };
            sinc as f32 * window[i]
        })
        .collect();
    // Normalize to unity DC gain.
    let sum: f32 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    h
}

/// Designs a band-pass FIR centered between `low` and `high` (fractions of
/// the sample rate) by subtracting two low-passes.
///
/// # Panics
/// Panics unless `0 < low < high < 0.5`.
pub fn design_bandpass(taps: usize, low: f64, high: f64) -> Vec<f32> {
    assert!(low > 0.0 && high > low && high < 0.5, "need 0 < low < high < 0.5");
    let lp_high = design_lowpass(taps, high);
    let lp_low = design_lowpass(taps, low);
    lp_high
        .iter()
        .zip(&lp_low)
        .map(|(h, l)| h - l)
        .collect()
}

/// A streaming FIR filter with internal history.
#[derive(Debug, Clone)]
pub struct Fir {
    taps: Vec<f32>,
    /// Circular history of the most recent `taps.len()-1` inputs.
    history: Vec<f32>,
    pos: usize,
    /// Linearized window scratch for [`Fir::process`].
    scratch: Vec<f32>,
}

impl Fir {
    /// Wraps a coefficient vector in a streaming filter.
    ///
    /// # Panics
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<f32>) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        let n = taps.len();
        Fir {
            taps,
            history: vec![0.0; n],
            pos: 0,
            scratch: Vec::new(),
        }
    }

    /// Group delay in samples for the linear-phase designs in this module.
    pub fn delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// The coefficient vector.
    pub fn taps(&self) -> &[f32] {
        &self.taps
    }

    /// Filters one sample.
    #[inline]
    pub fn push(&mut self, x: f32) -> f32 {
        let n = self.taps.len();
        self.history[self.pos] = x;
        let mut acc = 0.0f32;
        let mut idx = self.pos;
        for &t in &self.taps {
            acc += t * self.history[idx];
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        self.pos = (self.pos + 1) % n;
        acc
    }

    /// Filters a block in place.
    ///
    /// Linearizes history + block into a contiguous scratch window so every
    /// output is a straight dot product over a contiguous slice — no
    /// per-sample circular-index wraparound or memmove. Accumulation order
    /// matches [`Fir::push`], so the output is bit-identical to
    /// [`Fir::process_reference`].
    pub fn process(&mut self, buf: &mut [f32]) {
        if buf.is_empty() {
            return;
        }
        let n = self.taps.len();
        let m = n - 1;
        // scratch = the m most recent inputs (oldest→newest) ++ buf.
        self.scratch.clear();
        self.scratch.reserve(m + buf.len());
        for j in 1..n {
            self.scratch.push(self.history[(self.pos + j) % n]);
        }
        self.scratch.extend_from_slice(buf);
        // Taps newest-first over each window, accumulated in `push` order;
        // the kernel vectorizes across outputs so every output's sum is
        // still bit-identical to the scalar twin.
        simd::fir_mac(&self.taps, &self.scratch, buf);
        // Restore the circular history invariant for subsequent `push`es:
        // slots 0..m hold the m most recent samples oldest→newest and the
        // next write lands on slot m.
        let e = self.scratch.len();
        self.history[..m].copy_from_slice(&self.scratch[e - m..]);
        self.pos = m;
    }

    /// Original per-sample implementation of [`Fir::process`], kept as the
    /// executable specification for equivalence tests.
    pub fn process_reference(&mut self, buf: &mut [f32]) {
        for v in buf.iter_mut() {
            *v = self.push(*v);
        }
    }

    /// Resets the history to silence.
    pub fn reset(&mut self) {
        self.history.fill(0.0);
        self.pos = 0;
    }
}

/// Tap count at and above which [`BlockFir`]/[`BlockFirC`] beat the direct
/// form on typical hosts (FFT cost amortizes over the block).
pub const BLOCK_FIR_MIN_TAPS: usize = 64;

/// Picks the overlap-save FFT size for a tap count: the block length
/// (`fft − taps + 1`) stays at least ~3× the tap count so the two
/// transforms amortize well.
pub(crate) fn overlap_save_fft_size(taps: usize) -> usize {
    (4 * taps).next_power_of_two().max(128)
}

/// Overlap-save frames transformed per batched FFT sweep: enough to amortize
/// the per-batch bookkeeping while keeping the frame scratch around L2-sized.
const BLOCK_FIR_BATCH: usize = 8;

/// Streaming FFT overlap-save convolution for real signals.
///
/// Drop-in replacement for [`Fir::process`] when the filter is long
/// (≥ [`BLOCK_FIR_MIN_TAPS`] taps): output differs from the direct form only
/// by FFT rounding (relative error ~1e-6), while the cost per sample drops
/// from `O(taps)` to `O(log taps)`. Two blocks of the real signal are packed
/// into the real/imaginary parts of one complex FFT frame, halving the
/// transform count.
#[derive(Debug, Clone)]
pub struct BlockFir {
    /// Shared immutable plan: FFT + tap spectrum (see [`FirPlan`]).
    plan: Arc<FirPlan>,
    /// The `taps − 1` most recent inputs (streaming history).
    tail: Vec<f32>,
    /// Split-plane scratch for up to [`BLOCK_FIR_BATCH`] frames.
    frames: SplitC32,
    /// `(a_start, a_len, b_start, b_len)` for each gathered frame.
    spans: Vec<(usize, usize, usize, usize)>,
    ext: Vec<f32>,
}

impl BlockFir {
    /// Builds an overlap-save engine for a coefficient vector.
    ///
    /// # Panics
    /// Panics if `taps` is empty.
    pub fn new(taps: &[f32]) -> Self {
        BlockFir::with_plan(FirPlan::shared(taps))
    }

    /// Builds a stream over an existing shared plan (no re-planning: many
    /// receivers can stream through clones of one `Arc<FirPlan>`).
    pub fn with_plan(plan: Arc<FirPlan>) -> Self {
        let m = plan.taps_len() - 1;
        BlockFir {
            plan,
            tail: vec![0.0; m],
            frames: SplitC32::new(),
            spans: Vec::new(),
            ext: Vec::new(),
        }
    }

    /// Group delay in samples for the linear-phase designs in this module.
    pub fn delay(&self) -> usize {
        self.plan.delay()
    }

    /// Filters a block in place (streaming: history carries across calls).
    ///
    /// Frames are gathered [`BLOCK_FIR_BATCH`] at a time and pushed through
    /// the plan's batched split-plane transforms; each frame still packs two
    /// real blocks into the real/imaginary planes, so the SoA layout *is*
    /// the two-blocks-per-transform packing with no interleave step.
    pub fn process(&mut self, buf: &mut [f32]) {
        if buf.is_empty() {
            return;
        }
        let m = self.plan.taps_len() - 1;
        let n = self.plan.fft().len();
        let block = self.plan.block();
        // ext = history ++ input; every FFT frame is a contiguous slice of it.
        self.ext.clear();
        self.ext.reserve(m + buf.len());
        self.ext.extend_from_slice(&self.tail);
        self.ext.extend_from_slice(buf);
        let total = buf.len();
        let mut p = 0usize;
        while p < total {
            // Gather up to BLOCK_FIR_BATCH frames. Block A of each frame
            // fills the real plane and block B (the next one) the imaginary
            // plane: both convolve with the real taps in one transform pair.
            self.spans.clear();
            let mut q = p;
            while q < total && self.spans.len() < BLOCK_FIR_BATCH {
                let a_len = block.min(total - q);
                let b_start = q + a_len;
                let b_len = block.min(total.saturating_sub(b_start));
                // lint: allow(no-alloc) — span list reuses retained capacity (≤ BLOCK_FIR_BATCH entries)
                self.spans.push((q, a_len, b_start, b_len));
                q = b_start + b_len;
            }
            let nb = self.spans.len();
            self.frames.resize(nb * n);
            for (f, &(a0, a_len, b0, b_len)) in self.spans.iter().enumerate() {
                let re = &mut self.frames.re[f * n..(f + 1) * n];
                let im = &mut self.frames.im[f * n..(f + 1) * n];
                for i in 0..n {
                    re[i] = if i < m + a_len { self.ext[a0 + i] } else { 0.0 };
                    im[i] = if i < m + b_len { self.ext[b0 + i] } else { 0.0 };
                }
            }
            self.plan.fft().forward_batch(&mut self.frames);
            self.plan.apply_spectrum(&mut self.frames);
            self.plan.fft().inverse_batch(&mut self.frames);
            for (f, &(a0, a_len, b0, b_len)) in self.spans.iter().enumerate() {
                let re = &self.frames.re[f * n..(f + 1) * n];
                let im = &self.frames.im[f * n..(f + 1) * n];
                debug_assert!(m + a_len.max(b_len) <= n);
                buf[a0..a0 + a_len].copy_from_slice(&re[m..m + a_len]);
                buf[b0..b0 + b_len].copy_from_slice(&im[m..m + b_len]);
            }
            p = q;
        }
        let e = self.ext.len();
        self.tail.copy_from_slice(&self.ext[e - m..]);
    }

    /// Filters `input`, appending the output to `out`.
    pub fn process_into(&mut self, input: &[f32], out: &mut Vec<f32>) {
        let start = out.len();
        out.extend_from_slice(input);
        self.process(&mut out[start..]);
    }

    /// Resets the history to silence.
    pub fn reset(&mut self) {
        self.tail.fill(0.0);
    }
}

/// Streaming FFT overlap-save convolution of a complex signal with a real
/// tap vector (e.g. the I/Q baseband low-pass after downconversion, which
/// otherwise costs two full direct-form FIRs per sample).
#[derive(Debug, Clone)]
pub struct BlockFirC {
    /// Shared immutable plan: FFT + tap spectrum (see [`FirPlan`]).
    plan: Arc<FirPlan>,
    tail: Vec<C32>,
    /// Split-plane scratch for up to [`BLOCK_FIR_BATCH`] frames.
    frames: SplitC32,
    /// `(start, chunk)` for each gathered frame.
    spans: Vec<(usize, usize)>,
    ext: Vec<C32>,
}

impl BlockFirC {
    /// Builds an overlap-save engine for a coefficient vector.
    ///
    /// # Panics
    /// Panics if `taps` is empty.
    pub fn new(taps: &[f32]) -> Self {
        BlockFirC::with_plan(FirPlan::shared(taps))
    }

    /// Builds a stream over an existing shared plan (no re-planning).
    pub fn with_plan(plan: Arc<FirPlan>) -> Self {
        let m = plan.taps_len() - 1;
        BlockFirC {
            plan,
            tail: vec![C32::ZERO; m],
            frames: SplitC32::new(),
            spans: Vec::new(),
            ext: Vec::new(),
        }
    }

    /// Group delay in samples for the linear-phase designs in this module.
    pub fn delay(&self) -> usize {
        self.plan.delay()
    }

    /// Filters a block in place (streaming: history carries across calls).
    pub fn process(&mut self, buf: &mut [C32]) {
        if buf.is_empty() {
            return;
        }
        let m = self.plan.taps_len() - 1;
        let n = self.plan.fft().len();
        let block = self.plan.block();
        self.ext.clear();
        self.ext.reserve(m + buf.len());
        self.ext.extend_from_slice(&self.tail);
        self.ext.extend_from_slice(buf);
        let total = buf.len();
        let mut p = 0usize;
        while p < total {
            self.spans.clear();
            let mut q = p;
            while q < total && self.spans.len() < BLOCK_FIR_BATCH {
                let chunk = block.min(total - q);
                // lint: allow(no-alloc) — span list reuses retained capacity (≤ BLOCK_FIR_BATCH entries)
                self.spans.push((q, chunk));
                q += chunk;
            }
            let nb = self.spans.len();
            self.frames.resize(nb * n);
            for (f, &(start, chunk)) in self.spans.iter().enumerate() {
                let re = &mut self.frames.re[f * n..(f + 1) * n];
                let im = &mut self.frames.im[f * n..(f + 1) * n];
                for i in 0..n {
                    if i < m + chunk {
                        let v = self.ext[start + i];
                        re[i] = v.re;
                        im[i] = v.im;
                    } else {
                        re[i] = 0.0;
                        im[i] = 0.0;
                    }
                }
            }
            self.plan.fft().forward_batch(&mut self.frames);
            self.plan.apply_spectrum(&mut self.frames);
            self.plan.fft().inverse_batch(&mut self.frames);
            for (f, &(start, chunk)) in self.spans.iter().enumerate() {
                let re = &self.frames.re[f * n..(f + 1) * n];
                let im = &self.frames.im[f * n..(f + 1) * n];
                for i in 0..chunk {
                    buf[start + i] = C32::new(re[m + i], im[m + i]);
                }
            }
            p = q;
        }
        let e = self.ext.len();
        self.tail.copy_from_slice(&self.ext[e - m..]);
    }

    /// Filters `input`, appending the output to `out`.
    pub fn process_into(&mut self, input: &[C32], out: &mut Vec<C32>) {
        let start = out.len();
        out.extend_from_slice(input);
        self.process(&mut out[start..]);
    }

    /// Resets the history to silence.
    pub fn reset(&mut self) {
        self.tail.fill(C32::ZERO);
    }
}

/// Multi-band FFT overlap-save: one real signal filtered through several
/// equal-shape [`FirPlan`]s with the forward transforms shared.
///
/// Every frame (two real blocks packed into the complex planes, exactly as
/// [`BlockFir`] packs them) is forward-transformed **once**, then multiplied
/// by each band's tap spectrum and inverse-transformed per band — `B` bands
/// cost `1 + B` transforms per frame instead of `2B`. The per-band
/// arithmetic (frame gathering, spectrum multiply, inverse, scatter) is the
/// same as a fresh [`BlockFir`] over the same plan, so each band's output is
/// bit-identical to filtering it separately. The receive-side MPX
/// decomposer — mono, pilot, and RDS band-selects over one composite — is
/// the shape this exists for.
#[derive(Debug, Clone)]
pub struct FirBank {
    plans: Vec<Arc<FirPlan>>,
    /// Shared forward spectra for up to [`BLOCK_FIR_BATCH`] frames.
    frames: SplitC32,
    /// Per-band working copy of the spectra.
    band: SplitC32,
    /// `(a_start, a_len, b_start, b_len)` for each gathered frame.
    spans: Vec<(usize, usize, usize, usize)>,
    ext: Vec<f32>,
}

impl FirBank {
    /// Builds a bank over shared plans.
    ///
    /// # Panics
    /// Panics if `plans` is empty or the plans disagree on FFT size or tap
    /// count (the bank shares one forward transform, so every band must
    /// gather identical frames).
    pub fn new(plans: Vec<Arc<FirPlan>>) -> Self {
        assert!(!plans.is_empty(), "FirBank needs at least one band");
        let n = plans[0].fft().len();
        let t = plans[0].taps_len();
        for p in &plans {
            assert!(
                p.fft().len() == n && p.taps_len() == t,
                "all bank plans must share FFT size and tap count"
            );
        }
        FirBank {
            plans,
            frames: SplitC32::new(),
            band: SplitC32::new(),
            spans: Vec::with_capacity(BLOCK_FIR_BATCH),
            ext: Vec::new(),
        }
    }

    /// Number of bands in the bank.
    pub fn bands(&self) -> usize {
        self.plans.len()
    }

    /// Filters `input` through every band in one pass, appending band `b`'s
    /// output (`input.len()` samples, starting from silence like a fresh
    /// [`BlockFir`]) to `outputs[b]`.
    ///
    /// # Panics
    /// Panics if `outputs.len() != self.bands()`.
    pub fn process_into(&mut self, input: &[f32], outputs: &mut [Vec<f32>]) {
        assert_eq!(outputs.len(), self.plans.len(), "one output per band");
        let mut starts = [0usize; 8];
        assert!(outputs.len() <= starts.len(), "bank limited to 8 bands");
        for (s, out) in starts.iter_mut().zip(outputs.iter_mut()) {
            *s = out.len();
            out.resize(*s + input.len(), 0.0);
        }
        if input.is_empty() {
            return;
        }
        let m = self.plans[0].taps_len() - 1;
        let n = self.plans[0].fft().len();
        let block = self.plans[0].block();
        // ext = zero history ++ input; every frame is a contiguous slice.
        self.ext.resize(m + input.len(), 0.0);
        self.ext[..m].fill(0.0);
        self.ext[m..].copy_from_slice(input);
        let total = input.len();
        let mut p = 0usize;
        while p < total {
            self.spans.clear();
            let mut q = p;
            while q < total && self.spans.len() < BLOCK_FIR_BATCH {
                let a_len = block.min(total - q);
                let b_start = q + a_len;
                let b_len = block.min(total.saturating_sub(b_start));
                // `spans` was built with capacity BLOCK_FIR_BATCH and the
                // loop guard caps len below it, so this push never allocates.
                // lint: allow(no-alloc)
                self.spans.push((q, a_len, b_start, b_len));
                q = b_start + b_len;
            }
            let nb = self.spans.len();
            self.frames.resize(nb * n);
            for (f, &(a0, a_len, b0, b_len)) in self.spans.iter().enumerate() {
                let re = &mut self.frames.re[f * n..(f + 1) * n];
                let im = &mut self.frames.im[f * n..(f + 1) * n];
                for i in 0..n {
                    re[i] = if i < m + a_len { self.ext[a0 + i] } else { 0.0 };
                    im[i] = if i < m + b_len { self.ext[b0 + i] } else { 0.0 };
                }
            }
            // One forward sweep shared by every band.
            self.plans[0].fft().forward_batch(&mut self.frames);
            for (bi, plan) in self.plans.iter().enumerate() {
                self.band.resize(nb * n);
                self.band.re.copy_from_slice(&self.frames.re[..nb * n]);
                self.band.im.copy_from_slice(&self.frames.im[..nb * n]);
                plan.apply_spectrum(&mut self.band);
                plan.fft().inverse_batch(&mut self.band);
                let out = &mut outputs[bi][starts[bi]..];
                for (f, &(a0, a_len, b0, b_len)) in self.spans.iter().enumerate() {
                    let re = &self.band.re[f * n..(f + 1) * n];
                    let im = &self.band.im[f * n..(f + 1) * n];
                    out[a0..a0 + a_len].copy_from_slice(&re[m..m + a_len]);
                    out[b0..b0 + b_len].copy_from_slice(&im[m..m + b_len]);
                }
            }
            p = q;
        }
    }
}

/// FIR filter followed by decimation by an integer factor.
///
/// Only the retained output samples are computed: the anti-alias dot product
/// runs once per *output* sample over a linearized history window, so the
/// cost is `taps / factor` MACs per input sample instead of the `taps` a
/// filter-then-drop structure pays. Accumulation order matches the
/// filter-everything reference, so outputs are bit-identical to the
/// direct-form [`Fir`] sampled at the kept positions.
#[derive(Debug, Clone)]
pub struct Decimator {
    taps: Vec<f32>,
    factor: usize,
    /// Samples until the next retained output (0 = the next input produces
    /// an output).
    phase: usize,
    /// The `taps − 1` most recent inputs (oldest→newest).
    tail: Vec<f32>,
    ext: Vec<f32>,
}

impl Decimator {
    /// Creates a decimator with an anti-alias low-pass sized for `factor`.
    ///
    /// # Panics
    /// Panics if `factor == 0`.
    pub fn new(factor: usize, taps: usize) -> Self {
        assert!(factor > 0, "decimation factor must be positive");
        let cutoff = 0.45 / factor as f64;
        let taps = design_lowpass(taps, cutoff);
        let history = taps.len() - 1;
        Decimator {
            taps,
            factor,
            phase: 0,
            tail: vec![0.0; history],
            ext: Vec::new(),
        }
    }

    /// Decimation factor.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Processes a block, appending kept samples to `out`.
    pub fn process_into(&mut self, input: &[f32], out: &mut Vec<f32>) {
        if input.is_empty() {
            return;
        }
        let n = self.taps.len();
        let m = n - 1;
        self.ext.clear();
        self.ext.reserve(m + input.len());
        self.ext.extend_from_slice(&self.tail);
        self.ext.extend_from_slice(input);
        // Kept positions are input indices phase, phase+factor, …
        let kept = if self.phase < input.len() {
            (input.len() - self.phase).div_ceil(self.factor)
        } else {
            0
        };
        let start = out.len();
        out.resize(start + kept, 0.0);
        let o = &mut out[start..];
        let mut i = self.phase;
        let mut j = 0usize;
        while i < input.len() {
            let window = &self.ext[i..i + n];
            let mut acc = 0.0f32;
            for (&t, &x) in self.taps.iter().zip(window.iter().rev()) {
                acc += t * x;
            }
            o[j] = acc;
            j += 1;
            i += self.factor;
        }
        self.phase = i - input.len();
        let e = self.ext.len();
        self.tail.copy_from_slice(&self.ext[e - m..]);
    }
}

/// Zero-stuffing interpolator: upsamples by an integer factor with an
/// image-rejection low-pass, used by the FM modulator to climb from the
/// audio rate to the RF rate.
#[derive(Debug, Clone)]
pub struct Interpolator {
    fir: Fir,
    factor: usize,
}

impl Interpolator {
    /// Creates an interpolator for `factor`× upsampling.
    ///
    /// # Panics
    /// Panics if `factor == 0`.
    pub fn new(factor: usize, taps: usize) -> Self {
        assert!(factor > 0, "interpolation factor must be positive");
        let cutoff = 0.45 / factor as f64;
        let mut coeffs = design_lowpass(taps, cutoff);
        // Compensate the 1/factor energy loss of zero stuffing.
        for c in &mut coeffs {
            *c *= factor as f32;
        }
        Interpolator {
            fir: Fir::new(coeffs),
            factor,
        }
    }

    /// Processes a block, appending `input.len() * factor` samples to `out`.
    pub fn process_into(&mut self, input: &[f32], out: &mut Vec<f32>) {
        let start = out.len();
        out.resize(start + input.len() * self.factor, 0.0);
        let o = &mut out[start..];
        // Same `fir.push` call order as the original append loop, so the
        // streamed filter state (and output) is unchanged. `Fir::push`
        // streams one sample through the fixed-size delay line — it never
        // allocates — but R1's token matcher cannot tell it from `Vec::push`.
        for (j, &x) in input.iter().enumerate() {
            // lint: allow(no-alloc)
            o[j * self.factor] = self.fir.push(x);
            for k in 1..self.factor {
                // lint: allow(no-alloc)
                o[j * self.factor + k] = self.fir.push(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Measures filter magnitude response at a normalized frequency by
    /// running a tone through it and comparing RMS.
    fn gain_at(taps: &[f32], freq: f64) -> f32 {
        let mut fir = Fir::new(taps.to_vec());
        let n = 4096;
        let mut out_energy = 0.0f64;
        let mut in_energy = 0.0f64;
        for i in 0..n {
            let x = (2.0 * PI * freq * i as f64).sin() as f32;
            let y = fir.push(x);
            if i > taps.len() {
                in_energy += (x as f64) * (x as f64);
                out_energy += (y as f64) * (y as f64);
            }
        }
        (out_energy / in_energy).sqrt() as f32
    }

    #[test]
    fn lowpass_passes_low_blocks_high() {
        let h = design_lowpass(101, 0.1);
        assert!(gain_at(&h, 0.02) > 0.95, "passband should be ~1");
        assert!(gain_at(&h, 0.25) < 0.01, "stopband should be ~0");
    }

    #[test]
    fn lowpass_unity_dc_gain() {
        let h = design_lowpass(63, 0.2);
        let sum: f32 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bandpass_rejects_both_sides() {
        let h = design_bandpass(201, 0.15, 0.25);
        assert!(gain_at(&h, 0.2) > 0.9, "center of band should pass");
        assert!(gain_at(&h, 0.05) < 0.02, "below band should be rejected");
        assert!(gain_at(&h, 0.35) < 0.02, "above band should be rejected");
    }

    #[test]
    fn fir_impulse_response_replays_taps() {
        let taps = vec![0.5, -0.25, 0.125];
        let mut fir = Fir::new(taps.clone());
        let got: Vec<f32> = (0..3)
            .map(|i| fir.push(if i == 0 { 1.0 } else { 0.0 }))
            .collect();
        assert_eq!(got, taps);
    }

    #[test]
    fn fir_reset_clears_history() {
        let mut fir = Fir::new(vec![1.0, 1.0]);
        fir.push(5.0);
        fir.reset();
        assert_eq!(fir.push(0.0), 0.0);
    }

    #[test]
    fn decimator_keeps_one_in_n() {
        let mut d = Decimator::new(4, 31);
        let mut out = Vec::new();
        d.process_into(&vec![1.0; 100], &mut out);
        assert_eq!(out.len(), 25);
    }

    #[test]
    fn interpolator_expands_by_factor() {
        let mut i = Interpolator::new(3, 31);
        let mut out = Vec::new();
        i.process_into(&[1.0, 2.0], &mut out);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn interpolate_then_decimate_preserves_tone() {
        let factor = 5;
        let mut up = Interpolator::new(factor, 151);
        let mut down = Decimator::new(factor, 151);
        let tone: Vec<f32> = (0..2000)
            .map(|i| (2.0 * PI * 0.01 * i as f64).sin() as f32)
            .collect();
        let mut hi = Vec::new();
        up.process_into(&tone, &mut hi);
        let mut back = Vec::new();
        down.process_into(&hi, &mut back);
        // Skip transients, compare energies.
        let e_in: f64 = tone[500..1500].iter().map(|&x| (x as f64).powi(2)).sum();
        let e_out: f64 = back[500..1500].iter().map(|&x| (x as f64).powi(2)).sum();
        assert!((e_in - e_out).abs() / e_in < 0.05, "{e_in} vs {e_out}");
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn rejects_bad_cutoff() {
        let _ = design_lowpass(11, 0.6);
    }

    /// Deterministic pseudo-random signal for equivalence tests.
    fn noise(n: usize, seed: u32) -> Vec<f32> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(1103515245).wrapping_add(12345);
                ((x >> 16) as f32 / 32768.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn process_is_bit_identical_to_reference() {
        let taps = design_lowpass(101, 0.2);
        let sig = noise(1000, 7);
        let mut a = Fir::new(taps.clone());
        let mut b = Fir::new(taps);
        let mut got = sig.clone();
        let mut want = sig;
        // Split the block processing at awkward boundaries to exercise the
        // history hand-off.
        let (g1, g2) = got.split_at_mut(137);
        a.process(g1);
        a.process(g2);
        b.process_reference(&mut want);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn block_fir_matches_direct_form() {
        for taps_len in [1usize, 3, 64, 101, 257] {
            let taps = if taps_len == 1 {
                vec![0.7]
            } else {
                design_lowpass(taps_len, 0.17)
            };
            let sig = noise(2000, taps_len as u32);
            let mut want = sig.clone();
            Fir::new(taps.clone()).process_reference(&mut want);
            let mut got = sig;
            BlockFir::new(&taps).process(&mut got);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < 1e-4, "taps {taps_len} sample {i}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn fir_bank_is_bit_identical_to_per_band_block_fir() {
        use crate::plan::FirPlan;
        let designs = [
            design_lowpass(257, 0.07),
            design_bandpass(257, 0.15, 0.25),
            design_bandpass(257, 0.38, 0.45),
        ];
        let plans: Vec<_> = designs.iter().map(|t| FirPlan::shared(t)).collect();
        let block = plans[0].block();
        // Empty, sub-block, exactly one block, odd multi-batch lengths.
        for len in [0usize, 7, block, 8 * block + 123, 20_001] {
            let sig = noise(len, len as u32 + 3);
            let mut bank = FirBank::new(plans.clone());
            let mut outs = vec![Vec::new(), Vec::new(), Vec::new()];
            bank.process_into(&sig, &mut outs);
            for (b, plan) in plans.iter().enumerate() {
                let mut want = sig.clone();
                BlockFir::with_plan(Arc::clone(plan)).process(&mut want);
                assert_eq!(outs[b].len(), want.len(), "len {len} band {b}");
                for (i, (g, w)) in outs[b].iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "len {len} band {b} sample {i}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn block_fir_is_streaming() {
        let taps = design_lowpass(257, 0.1);
        let sig = noise(3000, 42);
        let mut whole = sig.clone();
        BlockFir::new(&taps).process(&mut whole);
        // Odd chunk sizes, including chunks smaller than the tap count.
        let mut split = sig;
        let mut f = BlockFir::new(&taps);
        let mut at = 0usize;
        for chunk in [13usize, 250, 999, 1, 1737] {
            let hi = (at + chunk).min(split.len());
            f.process(&mut split[at..hi]);
            at = hi;
        }
        for (i, (g, w)) in split.iter().zip(&whole).enumerate() {
            assert!((g - w).abs() < 1e-5, "sample {i}: {g} vs {w}");
        }
    }

    #[test]
    fn block_fir_complex_matches_two_real_filters() {
        let taps = design_lowpass(101, 0.22);
        let re = noise(1500, 5);
        let im = noise(1500, 9);
        let mut want_re = re.clone();
        let mut want_im = im.clone();
        Fir::new(taps.clone()).process_reference(&mut want_re);
        Fir::new(taps.clone()).process_reference(&mut want_im);
        let mut buf: Vec<C32> = re
            .iter()
            .zip(&im)
            .map(|(&r, &i)| C32::new(r, i))
            .collect();
        let mut f = BlockFirC::new(&taps);
        let (b1, b2) = buf.split_at_mut(733);
        f.process(b1);
        f.process(b2);
        for (i, v) in buf.iter().enumerate() {
            assert!((v.re - want_re[i]).abs() < 1e-4, "re {i}");
            assert!((v.im - want_im[i]).abs() < 1e-4, "im {i}");
        }
    }

    #[test]
    fn block_fir_reset_clears_history() {
        let taps = design_lowpass(65, 0.2);
        let mut f = BlockFir::new(&taps);
        let mut warm = noise(500, 3);
        f.process(&mut warm);
        f.reset();
        let mut fresh = noise(500, 3);
        let mut want = fresh.clone();
        BlockFir::new(&taps).process(&mut want);
        f.process(&mut fresh);
        for (g, w) in fresh.iter().zip(&want) {
            assert!((g - w).abs() < 1e-6);
        }
    }

    #[test]
    fn decimator_matches_filter_then_drop() {
        let factor = 5;
        let taps = 31;
        let sig = noise(1000, 11);
        // Reference: full filter, keep every `factor`-th output.
        let cutoff = 0.45 / factor as f64;
        let mut full = sig.clone();
        Fir::new(design_lowpass(taps, cutoff)).process_reference(&mut full);
        let want: Vec<f32> = full.iter().step_by(factor).copied().collect();
        let mut d = Decimator::new(factor, taps);
        let mut got = Vec::new();
        // Split at a non-multiple of the factor to exercise phase carry.
        d.process_into(&sig[..333], &mut got);
        d.process_into(&sig[333..], &mut got);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "decimator must be bit-exact");
        }
    }
}
