//! FIR filter design and streaming application.
//!
//! Filters are designed with the windowed-sinc method (Hamming window by
//! default), which is plenty for the roll-offs the FM multiplexer and the
//! acoustic channel models need. Streaming state is kept in the filter so the
//! radio pipeline can process audio in arbitrary block sizes.

use crate::window::{generate, Window};
use std::f64::consts::PI;

/// Designs a linear-phase low-pass FIR with `taps` coefficients.
///
/// `cutoff` is the -6 dB point as a fraction of the sample rate (0..0.5).
/// Odd tap counts are recommended so the group delay is an integer number of
/// samples (`(taps-1)/2`).
///
/// # Panics
/// Panics if `taps == 0` or `cutoff` is outside `(0, 0.5)`.
pub fn design_lowpass(taps: usize, cutoff: f64) -> Vec<f32> {
    assert!(taps > 0, "need at least one tap");
    assert!(cutoff > 0.0 && cutoff < 0.5, "cutoff must be in (0, 0.5), got {cutoff}");
    let m = (taps - 1) as f64 / 2.0;
    let window = generate(Window::Hamming, taps);
    let mut h: Vec<f32> = (0..taps)
        .map(|i| {
            let t = i as f64 - m;
            let sinc = if t.abs() < 1e-12 {
                2.0 * cutoff
            } else {
                (2.0 * PI * cutoff * t).sin() / (PI * t)
            };
            sinc as f32 * window[i]
        })
        .collect();
    // Normalize to unity DC gain.
    let sum: f32 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    h
}

/// Designs a band-pass FIR centered between `low` and `high` (fractions of
/// the sample rate) by subtracting two low-passes.
///
/// # Panics
/// Panics unless `0 < low < high < 0.5`.
pub fn design_bandpass(taps: usize, low: f64, high: f64) -> Vec<f32> {
    assert!(low > 0.0 && high > low && high < 0.5, "need 0 < low < high < 0.5");
    let lp_high = design_lowpass(taps, high);
    let lp_low = design_lowpass(taps, low);
    lp_high
        .iter()
        .zip(&lp_low)
        .map(|(h, l)| h - l)
        .collect()
}

/// A streaming FIR filter with internal history.
#[derive(Debug, Clone)]
pub struct Fir {
    taps: Vec<f32>,
    /// Circular history of the most recent `taps.len()-1` inputs.
    history: Vec<f32>,
    pos: usize,
}

impl Fir {
    /// Wraps a coefficient vector in a streaming filter.
    ///
    /// # Panics
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<f32>) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        let n = taps.len();
        Fir {
            taps,
            history: vec![0.0; n],
            pos: 0,
        }
    }

    /// Group delay in samples for the linear-phase designs in this module.
    pub fn delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// Filters one sample.
    #[inline]
    pub fn push(&mut self, x: f32) -> f32 {
        let n = self.taps.len();
        self.history[self.pos] = x;
        let mut acc = 0.0f32;
        let mut idx = self.pos;
        for &t in &self.taps {
            acc += t * self.history[idx];
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        self.pos = (self.pos + 1) % n;
        acc
    }

    /// Filters a block in place.
    pub fn process(&mut self, buf: &mut [f32]) {
        for v in buf.iter_mut() {
            *v = self.push(*v);
        }
    }

    /// Resets the history to silence.
    pub fn reset(&mut self) {
        self.history.fill(0.0);
        self.pos = 0;
    }
}

/// FIR filter followed by decimation by an integer factor.
///
/// Only the retained output samples are computed... by nature of the direct
/// form this implementation computes all of them; the decimator exists so the
/// FM demodulator can drop from the 480 kHz RF rate to the 48 kHz audio rate
/// behind one API.
#[derive(Debug, Clone)]
pub struct Decimator {
    fir: Fir,
    factor: usize,
    phase: usize,
}

impl Decimator {
    /// Creates a decimator with an anti-alias low-pass sized for `factor`.
    ///
    /// # Panics
    /// Panics if `factor == 0`.
    pub fn new(factor: usize, taps: usize) -> Self {
        assert!(factor > 0, "decimation factor must be positive");
        let cutoff = 0.45 / factor as f64;
        Decimator {
            fir: Fir::new(design_lowpass(taps, cutoff)),
            factor,
            phase: 0,
        }
    }

    /// Decimation factor.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Processes a block, appending kept samples to `out`.
    pub fn process_into(&mut self, input: &[f32], out: &mut Vec<f32>) {
        for &x in input {
            let y = self.fir.push(x);
            if self.phase == 0 {
                out.push(y);
            }
            self.phase = (self.phase + 1) % self.factor;
        }
    }
}

/// Zero-stuffing interpolator: upsamples by an integer factor with an
/// image-rejection low-pass, used by the FM modulator to climb from the
/// audio rate to the RF rate.
#[derive(Debug, Clone)]
pub struct Interpolator {
    fir: Fir,
    factor: usize,
}

impl Interpolator {
    /// Creates an interpolator for `factor`× upsampling.
    ///
    /// # Panics
    /// Panics if `factor == 0`.
    pub fn new(factor: usize, taps: usize) -> Self {
        assert!(factor > 0, "interpolation factor must be positive");
        let cutoff = 0.45 / factor as f64;
        let mut coeffs = design_lowpass(taps, cutoff);
        // Compensate the 1/factor energy loss of zero stuffing.
        for c in &mut coeffs {
            *c *= factor as f32;
        }
        Interpolator {
            fir: Fir::new(coeffs),
            factor,
        }
    }

    /// Processes a block, appending `input.len() * factor` samples to `out`.
    pub fn process_into(&mut self, input: &[f32], out: &mut Vec<f32>) {
        for &x in input {
            out.push(self.fir.push(x));
            for _ in 1..self.factor {
                out.push(self.fir.push(0.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Measures filter magnitude response at a normalized frequency by
    /// running a tone through it and comparing RMS.
    fn gain_at(taps: &[f32], freq: f64) -> f32 {
        let mut fir = Fir::new(taps.to_vec());
        let n = 4096;
        let mut out_energy = 0.0f64;
        let mut in_energy = 0.0f64;
        for i in 0..n {
            let x = (2.0 * PI * freq * i as f64).sin() as f32;
            let y = fir.push(x);
            if i > taps.len() {
                in_energy += (x as f64) * (x as f64);
                out_energy += (y as f64) * (y as f64);
            }
        }
        (out_energy / in_energy).sqrt() as f32
    }

    #[test]
    fn lowpass_passes_low_blocks_high() {
        let h = design_lowpass(101, 0.1);
        assert!(gain_at(&h, 0.02) > 0.95, "passband should be ~1");
        assert!(gain_at(&h, 0.25) < 0.01, "stopband should be ~0");
    }

    #[test]
    fn lowpass_unity_dc_gain() {
        let h = design_lowpass(63, 0.2);
        let sum: f32 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bandpass_rejects_both_sides() {
        let h = design_bandpass(201, 0.15, 0.25);
        assert!(gain_at(&h, 0.2) > 0.9, "center of band should pass");
        assert!(gain_at(&h, 0.05) < 0.02, "below band should be rejected");
        assert!(gain_at(&h, 0.35) < 0.02, "above band should be rejected");
    }

    #[test]
    fn fir_impulse_response_replays_taps() {
        let taps = vec![0.5, -0.25, 0.125];
        let mut fir = Fir::new(taps.clone());
        let got: Vec<f32> = (0..3)
            .map(|i| fir.push(if i == 0 { 1.0 } else { 0.0 }))
            .collect();
        assert_eq!(got, taps);
    }

    #[test]
    fn fir_reset_clears_history() {
        let mut fir = Fir::new(vec![1.0, 1.0]);
        fir.push(5.0);
        fir.reset();
        assert_eq!(fir.push(0.0), 0.0);
    }

    #[test]
    fn decimator_keeps_one_in_n() {
        let mut d = Decimator::new(4, 31);
        let mut out = Vec::new();
        d.process_into(&vec![1.0; 100], &mut out);
        assert_eq!(out.len(), 25);
    }

    #[test]
    fn interpolator_expands_by_factor() {
        let mut i = Interpolator::new(3, 31);
        let mut out = Vec::new();
        i.process_into(&[1.0, 2.0], &mut out);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn interpolate_then_decimate_preserves_tone() {
        let factor = 5;
        let mut up = Interpolator::new(factor, 151);
        let mut down = Decimator::new(factor, 151);
        let tone: Vec<f32> = (0..2000)
            .map(|i| (2.0 * PI * 0.01 * i as f64).sin() as f32)
            .collect();
        let mut hi = Vec::new();
        up.process_into(&tone, &mut hi);
        let mut back = Vec::new();
        down.process_into(&hi, &mut back);
        // Skip transients, compare energies.
        let e_in: f64 = tone[500..1500].iter().map(|&x| (x as f64).powi(2)).sum();
        let e_out: f64 = back[500..1500].iter().map(|&x| (x as f64).powi(2)).sum();
        assert!((e_in - e_out).abs() / e_in < 0.05, "{e_in} vs {e_out}");
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn rejects_bad_cutoff() {
        let _ = design_lowpass(11, 0.6);
    }
}
