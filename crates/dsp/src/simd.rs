//! Runtime-dispatched SIMD kernels for the DSP hot paths.
//!
//! Every kernel here comes in (up to) three implementations:
//!
//! * a **scalar twin** named `*_reference` — the executable specification,
//!   always compiled, and the only implementation on architectures without a
//!   vector path;
//! * an **AVX2** path (`x86_64`, selected at runtime via
//!   `is_x86_feature_detected!`);
//! * a **NEON** path (`aarch64`, selected at runtime via
//!   `is_aarch64_feature_detected!`).
//!
//! The vector paths are written to be **bit-exact** with their scalar twins:
//! they vectorize *across independent outputs* (or across split-plane lanes
//! with a pinned lane→element mapping), keep each output's accumulation
//! order identical to the scalar code, and use separate multiply/add
//! instructions (never FMA, which contracts rounding steps the scalar code
//! performs separately). That is what lets `SONIC_DSP_FORCE_SCALAR=1`
//! produce the same simulation results sample-for-sample — dispatch is a
//! performance knob, not a semantics knob (lint R3).
//!
//! Dispatch is decided once per process (cached in an atomic) from, in
//! order: an in-process override ([`force_scalar`], used by benches to
//! compare both paths in one run), the `SONIC_DSP_FORCE_SCALAR=1`
//! environment variable, and CPU feature detection.

use crate::complex::C32;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation dispatch selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Scalar twins only (fallback, forced, or unsupported CPU).
    Scalar,
    /// AVX2 256-bit kernels (x86_64).
    Avx2,
    /// NEON 128-bit kernels (aarch64).
    Neon,
}

impl Backend {
    /// Short lowercase name for logs and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

/// 0 = not yet detected, 1 = scalar, 2 = avx2, 3 = neon.
static DETECTED: AtomicU8 = AtomicU8::new(0);
/// 0 = no override, 1 = force scalar (in-process, see [`force_scalar`]).
static FORCED: AtomicU8 = AtomicU8::new(0);

fn detect() -> Backend {
    if std::env::var("SONIC_DSP_FORCE_SCALAR").is_ok_and(|v| v == "1") {
        return Backend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Backend::Neon;
        }
    }
    Backend::Scalar
}

/// The backend every kernel in this module dispatches to.
///
/// Detection runs once and is cached; [`force_scalar`] overrides it at any
/// time (benches use this to time scalar vs SIMD in a single process).
pub fn backend() -> Backend {
    if FORCED.load(Ordering::Relaxed) == 1 {
        return Backend::Scalar;
    }
    match DETECTED.load(Ordering::Relaxed) {
        2 => Backend::Avx2,
        3 => Backend::Neon,
        1 => Backend::Scalar,
        _ => {
            let b = detect();
            DETECTED.store(
                match b {
                    Backend::Scalar => 1,
                    Backend::Avx2 => 2,
                    Backend::Neon => 3,
                },
                Ordering::Relaxed,
            );
            b
        }
    }
}

/// In-process dispatch override: `force_scalar(true)` routes every kernel to
/// its scalar twin until `force_scalar(false)`. Used by the `perf_dsp` bench
/// and the parity tests; the `SONIC_DSP_FORCE_SCALAR=1` environment variable
/// is the equivalent process-wide switch.
pub fn force_scalar(on: bool) {
    FORCED.store(u8::from(on), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// FIR multiply-accumulate across outputs
// ---------------------------------------------------------------------------

/// Dense FIR dot products: `out[i] = Σ_k taps[k]·window[i + T − 1 − k]`
/// (taps newest-first over a linearized window, `T = taps.len()`).
///
/// `window.len()` must equal `out.len() + taps.len() − 1`. Bit-exact with
/// [`fir_mac_reference`]: the vector path runs 8 (AVX2) or 4 (NEON) outputs
/// side by side while each output still accumulates taps in scalar order.
pub fn fir_mac(taps: &[f32], window: &[f32], out: &mut [f32]) {
    assert_eq!(
        window.len(),
        out.len() + taps.len() - 1,
        "window must hold history + block"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch returned Avx2, so the CPU supports AVX2.
        Backend::Avx2 => unsafe { fir_mac_avx2(taps, window, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: dispatch returned Neon, so the CPU supports NEON.
        Backend::Neon => unsafe { fir_mac_neon(taps, window, out) },
        _ => fir_mac_reference(taps, window, out),
    }
}

/// Scalar twin of [`fir_mac`] (the executable specification).
pub fn fir_mac_reference(taps: &[f32], window: &[f32], out: &mut [f32]) {
    let t = taps.len();
    for (i, o) in out.iter_mut().enumerate() {
        let win = &window[i..i + t];
        let mut acc = 0.0f32;
        for (&c, &x) in taps.iter().zip(win.iter().rev()) {
            acc += c * x;
        }
        *o = acc;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller guarantees AVX2 is available.
unsafe fn fir_mac_avx2(taps: &[f32], window: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let t = taps.len();
    let n8 = out.len() / 8 * 8;
    let wp = window.as_ptr();
    let mut i = 0;
    while i < n8 {
        let mut acc = _mm256_setzero_ps();
        // Output i+j (j < 8) needs window[(i+j) + t−1 − k]: one unaligned
        // contiguous load per tap covers all 8 lanes.
        for (k, &c) in taps.iter().enumerate() {
            let cv = _mm256_set1_ps(c);
            // SAFETY: i + t − 1 − k + 7 ≤ (n8 − 8) + t − 1 + 7 <
            // out.len() + t − 1 = window.len(), so the 8-float load is in
            // bounds.
            let xv = unsafe { _mm256_loadu_ps(wp.add(i + t - 1 - k)) };
            acc = _mm256_add_ps(acc, _mm256_mul_ps(cv, xv));
        }
        // SAFETY: i + 7 < n8 ≤ out.len(), so the 8-float store is in bounds.
        unsafe { _mm256_storeu_ps(out.as_mut_ptr().add(i), acc) };
        i += 8;
    }
    fir_mac_reference(taps, &window[n8..], &mut out[n8..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// SAFETY: caller guarantees NEON is available.
unsafe fn fir_mac_neon(taps: &[f32], window: &[f32], out: &mut [f32]) {
    use std::arch::aarch64::*;
    let t = taps.len();
    let n4 = out.len() / 4 * 4;
    let wp = window.as_ptr();
    let mut i = 0;
    while i < n4 {
        let mut acc = vdupq_n_f32(0.0);
        for (k, &c) in taps.iter().enumerate() {
            let cv = vdupq_n_f32(c);
            // SAFETY: i + t − 1 − k + 3 < out.len() + t − 1 = window.len().
            let xv = unsafe { vld1q_f32(wp.add(i + t - 1 - k)) };
            // Separate mul + add (not vfmaq) to stay bit-exact with scalar.
            acc = vaddq_f32(acc, vmulq_f32(cv, xv));
        }
        // SAFETY: i + 3 < n4 ≤ out.len().
        unsafe { vst1q_f32(out.as_mut_ptr().add(i), acc) };
        i += 4;
    }
    fir_mac_reference(taps, &window[n4..], &mut out[n4..]);
}

// ---------------------------------------------------------------------------
// Pointwise complex multiply on split planes (overlap-save spectrum product)
// ---------------------------------------------------------------------------

/// Elementwise complex multiply-in-place on split planes:
/// `a[i] *= b[i]` with `(re, im) = (ar·br − ai·bi, ar·bi + ai·br)`.
///
/// Bit-exact with [`cmul_in_place_reference`] (and with `C32`'s `Mul`).
pub fn cmul_in_place(a_re: &mut [f32], a_im: &mut [f32], b_re: &[f32], b_im: &[f32]) {
    let n = a_re.len();
    assert!(
        a_im.len() == n && b_re.len() == n && b_im.len() == n,
        "plane length mismatch"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch returned Avx2, so the CPU supports AVX2.
        Backend::Avx2 => unsafe { cmul_in_place_avx2(a_re, a_im, b_re, b_im) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: dispatch returned Neon, so the CPU supports NEON.
        Backend::Neon => unsafe { cmul_in_place_neon(a_re, a_im, b_re, b_im) },
        _ => cmul_in_place_reference(a_re, a_im, b_re, b_im),
    }
}

/// Scalar twin of [`cmul_in_place`].
pub fn cmul_in_place_reference(a_re: &mut [f32], a_im: &mut [f32], b_re: &[f32], b_im: &[f32]) {
    for i in 0..a_re.len() {
        let ar = a_re[i];
        let ai = a_im[i];
        a_re[i] = ar * b_re[i] - ai * b_im[i];
        a_im[i] = ar * b_im[i] + ai * b_re[i];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller guarantees AVX2 is available.
unsafe fn cmul_in_place_avx2(a_re: &mut [f32], a_im: &mut [f32], b_re: &[f32], b_im: &[f32]) {
    use std::arch::x86_64::*;
    let n = a_re.len();
    let n8 = n / 8 * 8;
    let mut i = 0;
    while i < n8 {
        // SAFETY: i + 7 < n8 ≤ length of all four equal-length planes.
        unsafe {
            let ar = _mm256_loadu_ps(a_re.as_ptr().add(i));
            let ai = _mm256_loadu_ps(a_im.as_ptr().add(i));
            let br = _mm256_loadu_ps(b_re.as_ptr().add(i));
            let bi = _mm256_loadu_ps(b_im.as_ptr().add(i));
            let nr = _mm256_sub_ps(_mm256_mul_ps(ar, br), _mm256_mul_ps(ai, bi));
            let ni = _mm256_add_ps(_mm256_mul_ps(ar, bi), _mm256_mul_ps(ai, br));
            _mm256_storeu_ps(a_re.as_mut_ptr().add(i), nr);
            _mm256_storeu_ps(a_im.as_mut_ptr().add(i), ni);
        }
        i += 8;
    }
    cmul_in_place_reference(&mut a_re[n8..], &mut a_im[n8..], &b_re[n8..], &b_im[n8..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// SAFETY: caller guarantees NEON is available.
unsafe fn cmul_in_place_neon(a_re: &mut [f32], a_im: &mut [f32], b_re: &[f32], b_im: &[f32]) {
    use std::arch::aarch64::*;
    let n = a_re.len();
    let n4 = n / 4 * 4;
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 3 < n4 ≤ length of all four equal-length planes.
        unsafe {
            let ar = vld1q_f32(a_re.as_ptr().add(i));
            let ai = vld1q_f32(a_im.as_ptr().add(i));
            let br = vld1q_f32(b_re.as_ptr().add(i));
            let bi = vld1q_f32(b_im.as_ptr().add(i));
            let nr = vsubq_f32(vmulq_f32(ar, br), vmulq_f32(ai, bi));
            let ni = vaddq_f32(vmulq_f32(ar, bi), vmulq_f32(ai, br));
            vst1q_f32(a_re.as_mut_ptr().add(i), nr);
            vst1q_f32(a_im.as_mut_ptr().add(i), ni);
        }
        i += 4;
    }
    cmul_in_place_reference(&mut a_re[n4..], &mut a_im[n4..], &b_re[n4..], &b_im[n4..]);
}

// ---------------------------------------------------------------------------
// Radix-2 FFT butterfly stage on split planes
// ---------------------------------------------------------------------------

/// One radix-2 butterfly span on split planes: for each `k`,
/// `t = b[k]·w[k]; b[k] = a[k] − t; a[k] = a[k] + t`.
///
/// `a` and `b` are the two halves of one butterfly block; `tw` holds the
/// stage's contiguous twiddles. Bit-exact with
/// [`butterfly_radix2_reference`].
pub fn butterfly_radix2(
    a_re: &mut [f32],
    a_im: &mut [f32],
    b_re: &mut [f32],
    b_im: &mut [f32],
    tw_re: &[f32],
    tw_im: &[f32],
) {
    let h = a_re.len();
    assert!(
        a_im.len() == h && b_re.len() == h && b_im.len() == h && tw_re.len() == h && tw_im.len() == h,
        "butterfly plane length mismatch"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch returned Avx2, so the CPU supports AVX2.
        Backend::Avx2 => unsafe { butterfly_radix2_avx2(a_re, a_im, b_re, b_im, tw_re, tw_im) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: dispatch returned Neon, so the CPU supports NEON.
        Backend::Neon => unsafe { butterfly_radix2_neon(a_re, a_im, b_re, b_im, tw_re, tw_im) },
        _ => butterfly_radix2_reference(a_re, a_im, b_re, b_im, tw_re, tw_im),
    }
}

/// Scalar twin of [`butterfly_radix2`].
pub fn butterfly_radix2_reference(
    a_re: &mut [f32],
    a_im: &mut [f32],
    b_re: &mut [f32],
    b_im: &mut [f32],
    tw_re: &[f32],
    tw_im: &[f32],
) {
    for k in 0..a_re.len() {
        let tr = b_re[k] * tw_re[k] - b_im[k] * tw_im[k];
        let ti = b_re[k] * tw_im[k] + b_im[k] * tw_re[k];
        let ar = a_re[k];
        let ai = a_im[k];
        a_re[k] = ar + tr;
        a_im[k] = ai + ti;
        b_re[k] = ar - tr;
        b_im[k] = ai - ti;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller guarantees AVX2 is available.
unsafe fn butterfly_radix2_avx2(
    a_re: &mut [f32],
    a_im: &mut [f32],
    b_re: &mut [f32],
    b_im: &mut [f32],
    tw_re: &[f32],
    tw_im: &[f32],
) {
    use std::arch::x86_64::*;
    let h = a_re.len();
    let h8 = h / 8 * 8;
    let mut k = 0;
    while k < h8 {
        // SAFETY: k + 7 < h8 ≤ length of all six equal-length planes.
        unsafe {
            let br = _mm256_loadu_ps(b_re.as_ptr().add(k));
            let bi = _mm256_loadu_ps(b_im.as_ptr().add(k));
            let wr = _mm256_loadu_ps(tw_re.as_ptr().add(k));
            let wi = _mm256_loadu_ps(tw_im.as_ptr().add(k));
            let tr = _mm256_sub_ps(_mm256_mul_ps(br, wr), _mm256_mul_ps(bi, wi));
            let ti = _mm256_add_ps(_mm256_mul_ps(br, wi), _mm256_mul_ps(bi, wr));
            let ar = _mm256_loadu_ps(a_re.as_ptr().add(k));
            let ai = _mm256_loadu_ps(a_im.as_ptr().add(k));
            _mm256_storeu_ps(a_re.as_mut_ptr().add(k), _mm256_add_ps(ar, tr));
            _mm256_storeu_ps(a_im.as_mut_ptr().add(k), _mm256_add_ps(ai, ti));
            _mm256_storeu_ps(b_re.as_mut_ptr().add(k), _mm256_sub_ps(ar, tr));
            _mm256_storeu_ps(b_im.as_mut_ptr().add(k), _mm256_sub_ps(ai, ti));
        }
        k += 8;
    }
    butterfly_radix2_reference(
        &mut a_re[h8..],
        &mut a_im[h8..],
        &mut b_re[h8..],
        &mut b_im[h8..],
        &tw_re[h8..],
        &tw_im[h8..],
    );
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// SAFETY: caller guarantees NEON is available.
unsafe fn butterfly_radix2_neon(
    a_re: &mut [f32],
    a_im: &mut [f32],
    b_re: &mut [f32],
    b_im: &mut [f32],
    tw_re: &[f32],
    tw_im: &[f32],
) {
    use std::arch::aarch64::*;
    let h = a_re.len();
    let h4 = h / 4 * 4;
    let mut k = 0;
    while k < h4 {
        // SAFETY: k + 3 < h4 ≤ length of all six equal-length planes.
        unsafe {
            let br = vld1q_f32(b_re.as_ptr().add(k));
            let bi = vld1q_f32(b_im.as_ptr().add(k));
            let wr = vld1q_f32(tw_re.as_ptr().add(k));
            let wi = vld1q_f32(tw_im.as_ptr().add(k));
            let tr = vsubq_f32(vmulq_f32(br, wr), vmulq_f32(bi, wi));
            let ti = vaddq_f32(vmulq_f32(br, wi), vmulq_f32(bi, wr));
            let ar = vld1q_f32(a_re.as_ptr().add(k));
            let ai = vld1q_f32(a_im.as_ptr().add(k));
            vst1q_f32(a_re.as_mut_ptr().add(k), vaddq_f32(ar, tr));
            vst1q_f32(a_im.as_mut_ptr().add(k), vaddq_f32(ai, ti));
            vst1q_f32(b_re.as_mut_ptr().add(k), vsubq_f32(ar, tr));
            vst1q_f32(b_im.as_mut_ptr().add(k), vsubq_f32(ai, ti));
        }
        k += 4;
    }
    butterfly_radix2_reference(
        &mut a_re[h4..],
        &mut a_im[h4..],
        &mut b_re[h4..],
        &mut b_im[h4..],
        &tw_re[h4..],
        &tw_im[h4..],
    );
}

// ---------------------------------------------------------------------------
// FM discriminator product: a[i]·conj(b[i]) into split planes
// ---------------------------------------------------------------------------

/// Elementwise `a[i]·conj(b[i])` from interleaved inputs into split planes:
/// `(re, im) = (ar·br + ai·bi, ai·br − ar·bi)`.
///
/// The FM discriminator calls this with `b` = `a` delayed by one sample.
/// Bit-exact with [`mul_conj_split_reference`] (and with `C32::mul_conj`).
pub fn mul_conj_split(a: &[C32], b: &[C32], out_re: &mut [f32], out_im: &mut [f32]) {
    let n = a.len();
    assert!(
        b.len() == n && out_re.len() == n && out_im.len() == n,
        "mul_conj plane length mismatch"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch returned Avx2, so the CPU supports AVX2.
        Backend::Avx2 => unsafe { mul_conj_split_avx2(a, b, out_re, out_im) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: dispatch returned Neon, so the CPU supports NEON.
        Backend::Neon => unsafe { mul_conj_split_neon(a, b, out_re, out_im) },
        _ => mul_conj_split_reference(a, b, out_re, out_im),
    }
}

/// Scalar twin of [`mul_conj_split`].
pub fn mul_conj_split_reference(a: &[C32], b: &[C32], out_re: &mut [f32], out_im: &mut [f32]) {
    for i in 0..a.len() {
        let x = a[i];
        let y = b[i];
        out_re[i] = x.re * y.re + x.im * y.im;
        out_im[i] = x.im * y.re - x.re * y.im;
    }
}

/// Deinterleaves 8 complex samples (16 floats at `ptr`) into (re, im)
/// vectors.
///
/// # Safety
/// `ptr` must be valid for reading 16 `f32`s.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: `unsafe fn` required by target_feature; contract documented above.
unsafe fn deinterleave8_avx2(
    ptr: *const f32,
) -> (std::arch::x86_64::__m256, std::arch::x86_64::__m256) {
    use std::arch::x86_64::*;
    // SAFETY: caller guarantees 16 readable floats at ptr.
    let (v0, v1) = unsafe { (_mm256_loadu_ps(ptr), _mm256_loadu_ps(ptr.add(8))) };
    // v0 = r0 i0 r1 i1 | r2 i2 r3 i3, v1 = r4 i4 r5 i5 | r6 i6 r7 i7.
    // shuffle picks (0,2) of each 128-bit lane: re = r0 r1 r4 r5 | r2 r3 r6 r7.
    let re = _mm256_shuffle_ps(v0, v1, 0b10_00_10_00);
    let im = _mm256_shuffle_ps(v0, v1, 0b11_01_11_01);
    let order = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
    (
        _mm256_permutevar8x32_ps(re, order),
        _mm256_permutevar8x32_ps(im, order),
    )
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller guarantees AVX2 is available.
unsafe fn mul_conj_split_avx2(a: &[C32], b: &[C32], out_re: &mut [f32], out_im: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = a.len();
    let n8 = n / 8 * 8;
    let mut i = 0;
    while i < n8 {
        // SAFETY: i + 7 < n8 ≤ a.len() == b.len(); C32 is two f32s, so 8
        // complex samples are 16 readable floats; stores stay below n8 ≤
        // out plane lengths.
        unsafe {
            let (ar, ai) = deinterleave8_avx2(a.as_ptr().add(i).cast::<f32>());
            let (br, bi) = deinterleave8_avx2(b.as_ptr().add(i).cast::<f32>());
            let re = _mm256_add_ps(_mm256_mul_ps(ar, br), _mm256_mul_ps(ai, bi));
            let im = _mm256_sub_ps(_mm256_mul_ps(ai, br), _mm256_mul_ps(ar, bi));
            _mm256_storeu_ps(out_re.as_mut_ptr().add(i), re);
            _mm256_storeu_ps(out_im.as_mut_ptr().add(i), im);
        }
        i += 8;
    }
    mul_conj_split_reference(&a[n8..], &b[n8..], &mut out_re[n8..], &mut out_im[n8..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// SAFETY: caller guarantees NEON is available.
unsafe fn mul_conj_split_neon(a: &[C32], b: &[C32], out_re: &mut [f32], out_im: &mut [f32]) {
    use std::arch::aarch64::*;
    let n = a.len();
    let n4 = n / 4 * 4;
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 3 < n4 ≤ a.len() == b.len(); C32 is two f32s, so
        // vld2q reads 8 valid floats and deinterleaves; stores stay below
        // n4 ≤ out plane lengths.
        unsafe {
            let av = vld2q_f32(a.as_ptr().add(i).cast::<f32>());
            let bv = vld2q_f32(b.as_ptr().add(i).cast::<f32>());
            let (ar, ai) = (av.0, av.1);
            let (br, bi) = (bv.0, bv.1);
            let re = vaddq_f32(vmulq_f32(ar, br), vmulq_f32(ai, bi));
            let im = vsubq_f32(vmulq_f32(ai, br), vmulq_f32(ar, bi));
            vst1q_f32(out_re.as_mut_ptr().add(i), re);
            vst1q_f32(out_im.as_mut_ptr().add(i), im);
        }
        i += 4;
    }
    mul_conj_split_reference(&a[n4..], &b[n4..], &mut out_re[n4..], &mut out_im[n4..]);
}

// ---------------------------------------------------------------------------
// Polynomial atan2 over split planes (discriminator angle extraction)
// ---------------------------------------------------------------------------

/// Polynomial `atan` on `[-1, 1]` (Abramowitz & Stegun 4.4.49 form),
/// max error ≈ 1e-5 rad. Shared by the scalar twin and the FM demodulator.
#[inline(always)]
pub fn fast_atan(z: f32) -> f32 {
    let z2 = z * z;
    z * (0.999_866
        + z2 * (-0.330_299_5 + z2 * (0.180_141 + z2 * (-0.085_133 + 0.020_835_1 * z2))))
}

/// Branch-light `atan2` built on [`fast_atan`]; max error ≈ 1e-5 rad.
/// Returns 0 at the origin (the discriminator maps a dead carrier to
/// silence).
#[inline(always)]
pub fn fast_atan2(y: f32, x: f32) -> f32 {
    use std::f32::consts::{FRAC_PI_2, PI};
    let ax = x.abs();
    let ay = y.abs();
    if ax == 0.0 && ay == 0.0 {
        return 0.0;
    }
    let mut a = if ay > ax {
        FRAC_PI_2 - fast_atan(ax / ay)
    } else {
        fast_atan(ay / ax)
    };
    if x < 0.0 {
        a = PI - a;
    }
    if y < 0.0 {
        a = -a;
    }
    a
}

/// `out[i] = fast_atan2(y[i], x[i]) · scale` over whole planes.
///
/// Bit-exact with [`atan2_scale_reference`]: the vector path evaluates the
/// same polynomial in the same order and resolves the quadrant branches
/// with blends over identical operands.
pub fn atan2_scale(y: &[f32], x: &[f32], scale: f32, out: &mut [f32]) {
    let n = y.len();
    assert!(x.len() == n && out.len() == n, "atan2 plane length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch returned Avx2, so the CPU supports AVX2.
        Backend::Avx2 => unsafe { atan2_scale_avx2(y, x, scale, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: dispatch returned Neon, so the CPU supports NEON.
        Backend::Neon => unsafe { atan2_scale_neon(y, x, scale, out) },
        _ => atan2_scale_reference(y, x, scale, out),
    }
}

/// Scalar twin of [`atan2_scale`].
pub fn atan2_scale_reference(y: &[f32], x: &[f32], scale: f32, out: &mut [f32]) {
    for i in 0..y.len() {
        out[i] = fast_atan2(y[i], x[i]) * scale;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller guarantees AVX2 is available.
unsafe fn atan2_scale_avx2(y: &[f32], x: &[f32], scale: f32, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = y.len();
    let n8 = n / 8 * 8;
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
    let sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(i32::MIN));
    let zero = _mm256_setzero_ps();
    let pi = _mm256_set1_ps(std::f32::consts::PI);
    let pi2 = _mm256_set1_ps(std::f32::consts::FRAC_PI_2);
    let (c0, c1, c2, c3, c4) = (
        _mm256_set1_ps(0.999_866),
        _mm256_set1_ps(-0.330_299_5),
        _mm256_set1_ps(0.180_141),
        _mm256_set1_ps(-0.085_133),
        _mm256_set1_ps(0.020_835_1),
    );
    let sv = _mm256_set1_ps(scale);
    let mut i = 0;
    while i < n8 {
        // SAFETY: i + 7 < n8 ≤ length of the three equal-length planes.
        unsafe {
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let ax = _mm256_and_ps(xv, abs_mask);
            let ay = _mm256_and_ps(yv, abs_mask);
            // swap lanes compute FRAC_PI_2 − atan(ax/ay), others atan(ay/ax).
            let swap = _mm256_cmp_ps::<_CMP_GT_OQ>(ay, ax);
            let num = _mm256_blendv_ps(ay, ax, swap);
            let den = _mm256_blendv_ps(ax, ay, swap);
            let z = _mm256_div_ps(num, den);
            let z2 = _mm256_mul_ps(z, z);
            // Same Horner order as fast_atan: c3 + c4·z2, ×z2, +c2, ….
            let mut p = _mm256_add_ps(c3, _mm256_mul_ps(c4, z2));
            p = _mm256_add_ps(c2, _mm256_mul_ps(z2, p));
            p = _mm256_add_ps(c1, _mm256_mul_ps(z2, p));
            p = _mm256_add_ps(c0, _mm256_mul_ps(z2, p));
            let atan = _mm256_mul_ps(z, p);
            let mut a = _mm256_blendv_ps(atan, _mm256_sub_ps(pi2, atan), swap);
            let xneg = _mm256_cmp_ps::<_CMP_LT_OQ>(xv, zero);
            a = _mm256_blendv_ps(a, _mm256_sub_ps(pi, a), xneg);
            let yneg = _mm256_cmp_ps::<_CMP_LT_OQ>(yv, zero);
            a = _mm256_blendv_ps(a, _mm256_xor_ps(a, sign_mask), yneg);
            // Origin → exactly 0 (the scalar early-out).
            let origin = _mm256_and_ps(
                _mm256_cmp_ps::<_CMP_EQ_OQ>(ax, zero),
                _mm256_cmp_ps::<_CMP_EQ_OQ>(ay, zero),
            );
            a = _mm256_blendv_ps(a, zero, origin);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_mul_ps(a, sv));
        }
        i += 8;
    }
    atan2_scale_reference(&y[n8..], &x[n8..], scale, &mut out[n8..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// SAFETY: caller guarantees NEON is available.
unsafe fn atan2_scale_neon(y: &[f32], x: &[f32], scale: f32, out: &mut [f32]) {
    use std::arch::aarch64::*;
    let n = y.len();
    let n4 = n / 4 * 4;
    let zero = vdupq_n_f32(0.0);
    let pi = vdupq_n_f32(std::f32::consts::PI);
    let pi2 = vdupq_n_f32(std::f32::consts::FRAC_PI_2);
    let (c0, c1, c2, c3, c4) = (
        vdupq_n_f32(0.999_866),
        vdupq_n_f32(-0.330_299_5),
        vdupq_n_f32(0.180_141),
        vdupq_n_f32(-0.085_133),
        vdupq_n_f32(0.020_835_1),
    );
    let sign_bit = vdupq_n_u32(0x8000_0000);
    let sv = vdupq_n_f32(scale);
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 3 < n4 ≤ length of the three equal-length planes.
        unsafe {
            let yv = vld1q_f32(y.as_ptr().add(i));
            let xv = vld1q_f32(x.as_ptr().add(i));
            let ax = vabsq_f32(xv);
            let ay = vabsq_f32(yv);
            let swap = vcgtq_f32(ay, ax);
            let num = vbslq_f32(swap, ax, ay);
            let den = vbslq_f32(swap, ay, ax);
            let z = vdivq_f32(num, den);
            let z2 = vmulq_f32(z, z);
            let mut p = vaddq_f32(c3, vmulq_f32(c4, z2));
            p = vaddq_f32(c2, vmulq_f32(z2, p));
            p = vaddq_f32(c1, vmulq_f32(z2, p));
            p = vaddq_f32(c0, vmulq_f32(z2, p));
            let atan = vmulq_f32(z, p);
            let mut a = vbslq_f32(swap, vsubq_f32(pi2, atan), atan);
            let xneg = vcltq_f32(xv, zero);
            a = vbslq_f32(xneg, vsubq_f32(pi, a), a);
            let yneg = vcltq_f32(yv, zero);
            let negated = vreinterpretq_f32_u32(veorq_u32(vreinterpretq_u32_f32(a), sign_bit));
            a = vbslq_f32(yneg, negated, a);
            let origin = vandq_u32(vceqq_f32(ax, zero), vceqq_f32(ay, zero));
            a = vbslq_f32(origin, zero, a);
            vst1q_f32(out.as_mut_ptr().add(i), vmulq_f32(a, sv));
        }
        i += 4;
    }
    atan2_scale_reference(&y[n4..], &x[n4..], scale, &mut out[n4..]);
}

// ---------------------------------------------------------------------------
// Correlation reduction: Σ a[i]·conj(b[i]) and Σ |a[i]|²
// ---------------------------------------------------------------------------

/// Number of independent accumulator lanes used by [`dot_mul_conj_energy`].
///
/// The sum is *defined* as a LANES-way split: element `i` of a full chunk
/// goes to lane `i mod LANES`, tail elements continue in lane order, and the
/// lanes are reduced sequentially at the end. Both the scalar twin and the
/// vector paths implement exactly this, so results are bit-identical across
/// backends (NEON accumulates pairs of 4-wide vectors to match).
pub const DOT_LANES: usize = 8;

/// Correlates `a` against `b`, returning `(Σ a[i]·conj(b[i]), Σ |a[i]|²)`
/// with the lane-split accumulation order described at [`DOT_LANES`].
pub fn dot_mul_conj_energy(a: &[C32], b: &[C32]) -> (C32, f32) {
    assert_eq!(a.len(), b.len(), "correlation length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch returned Avx2, so the CPU supports AVX2.
        Backend::Avx2 => unsafe { dot_mul_conj_energy_avx2(a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: dispatch returned Neon, so the CPU supports NEON.
        Backend::Neon => unsafe { dot_mul_conj_energy_neon(a, b) },
        _ => dot_mul_conj_energy_reference(a, b),
    }
}

/// Scalar twin of [`dot_mul_conj_energy`].
pub fn dot_mul_conj_energy_reference(a: &[C32], b: &[C32]) -> (C32, f32) {
    let mut acc_re = [0.0f32; DOT_LANES];
    let mut acc_im = [0.0f32; DOT_LANES];
    let mut en = [0.0f32; DOT_LANES];
    for (i, (&x, &h)) in a.iter().zip(b).enumerate() {
        let l = i % DOT_LANES;
        acc_re[l] += x.re * h.re + x.im * h.im;
        acc_im[l] += x.im * h.re - x.re * h.im;
        en[l] += x.re * x.re + x.im * x.im;
    }
    reduce_lanes(&acc_re, &acc_im, &en)
}

/// Sequential lane reduction shared by every backend.
fn reduce_lanes(acc_re: &[f32; DOT_LANES], acc_im: &[f32; DOT_LANES], en: &[f32; DOT_LANES]) -> (C32, f32) {
    let mut r = 0.0f32;
    let mut i = 0.0f32;
    let mut e = 0.0f32;
    for l in 0..DOT_LANES {
        r += acc_re[l];
        i += acc_im[l];
        e += en[l];
    }
    (C32::new(r, i), e)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller guarantees AVX2 is available.
unsafe fn dot_mul_conj_energy_avx2(a: &[C32], b: &[C32]) -> (C32, f32) {
    use std::arch::x86_64::*;
    let n = a.len();
    let n8 = n / 8 * 8;
    let mut vr = _mm256_setzero_ps();
    let mut vi = _mm256_setzero_ps();
    let mut ve = _mm256_setzero_ps();
    let mut i = 0;
    while i < n8 {
        // SAFETY: i + 7 < n8 ≤ a.len() == b.len(); 8 complex samples are 16
        // readable floats each.
        unsafe {
            let (ar, ai) = deinterleave8_avx2(a.as_ptr().add(i).cast::<f32>());
            let (br, bi) = deinterleave8_avx2(b.as_ptr().add(i).cast::<f32>());
            vr = _mm256_add_ps(
                vr,
                _mm256_add_ps(_mm256_mul_ps(ar, br), _mm256_mul_ps(ai, bi)),
            );
            vi = _mm256_add_ps(
                vi,
                _mm256_sub_ps(_mm256_mul_ps(ai, br), _mm256_mul_ps(ar, bi)),
            );
            ve = _mm256_add_ps(
                ve,
                _mm256_add_ps(_mm256_mul_ps(ar, ar), _mm256_mul_ps(ai, ai)),
            );
        }
        i += 8;
    }
    let mut acc_re = [0.0f32; DOT_LANES];
    let mut acc_im = [0.0f32; DOT_LANES];
    let mut en = [0.0f32; DOT_LANES];
    // SAFETY: the arrays are 8 f32s, exactly one __m256 each.
    unsafe {
        _mm256_storeu_ps(acc_re.as_mut_ptr(), vr);
        _mm256_storeu_ps(acc_im.as_mut_ptr(), vi);
        _mm256_storeu_ps(en.as_mut_ptr(), ve);
    }
    // Tail elements continue the lane rotation exactly like the scalar twin.
    for (j, (&x, &h)) in a[n8..].iter().zip(&b[n8..]).enumerate() {
        let l = j % DOT_LANES;
        acc_re[l] += x.re * h.re + x.im * h.im;
        acc_im[l] += x.im * h.re - x.re * h.im;
        en[l] += x.re * x.re + x.im * x.im;
    }
    reduce_lanes(&acc_re, &acc_im, &en)
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// SAFETY: caller guarantees NEON is available.
unsafe fn dot_mul_conj_energy_neon(a: &[C32], b: &[C32]) -> (C32, f32) {
    use std::arch::aarch64::*;
    let n = a.len();
    let n8 = n / 8 * 8;
    // Two 4-wide accumulators per quantity model the 8 scalar lanes: lanes
    // 0..4 live in the first vector, 4..8 in the second.
    let mut vr0 = vdupq_n_f32(0.0);
    let mut vr1 = vdupq_n_f32(0.0);
    let mut vi0 = vdupq_n_f32(0.0);
    let mut vi1 = vdupq_n_f32(0.0);
    let mut ve0 = vdupq_n_f32(0.0);
    let mut ve1 = vdupq_n_f32(0.0);
    let mut i = 0;
    while i < n8 {
        // SAFETY: i + 7 < n8 ≤ a.len() == b.len(); each vld2q reads 8 valid
        // floats (4 complex samples).
        unsafe {
            let a0 = vld2q_f32(a.as_ptr().add(i).cast::<f32>());
            let b0 = vld2q_f32(b.as_ptr().add(i).cast::<f32>());
            let a1 = vld2q_f32(a.as_ptr().add(i + 4).cast::<f32>());
            let b1 = vld2q_f32(b.as_ptr().add(i + 4).cast::<f32>());
            vr0 = vaddq_f32(vr0, vaddq_f32(vmulq_f32(a0.0, b0.0), vmulq_f32(a0.1, b0.1)));
            vr1 = vaddq_f32(vr1, vaddq_f32(vmulq_f32(a1.0, b1.0), vmulq_f32(a1.1, b1.1)));
            vi0 = vaddq_f32(vi0, vsubq_f32(vmulq_f32(a0.1, b0.0), vmulq_f32(a0.0, b0.1)));
            vi1 = vaddq_f32(vi1, vsubq_f32(vmulq_f32(a1.1, b1.0), vmulq_f32(a1.0, b1.1)));
            ve0 = vaddq_f32(ve0, vaddq_f32(vmulq_f32(a0.0, a0.0), vmulq_f32(a0.1, a0.1)));
            ve1 = vaddq_f32(ve1, vaddq_f32(vmulq_f32(a1.0, a1.0), vmulq_f32(a1.1, a1.1)));
        }
        i += 8;
    }
    let mut acc_re = [0.0f32; DOT_LANES];
    let mut acc_im = [0.0f32; DOT_LANES];
    let mut en = [0.0f32; DOT_LANES];
    // SAFETY: each half-array is 4 f32s, exactly one float32x4_t.
    unsafe {
        vst1q_f32(acc_re.as_mut_ptr(), vr0);
        vst1q_f32(acc_re.as_mut_ptr().add(4), vr1);
        vst1q_f32(acc_im.as_mut_ptr(), vi0);
        vst1q_f32(acc_im.as_mut_ptr().add(4), vi1);
        vst1q_f32(en.as_mut_ptr(), ve0);
        vst1q_f32(en.as_mut_ptr().add(4), ve1);
    }
    for (j, (&x, &h)) in a[n8..].iter().zip(&b[n8..]).enumerate() {
        let l = j % DOT_LANES;
        acc_re[l] += x.re * h.re + x.im * h.im;
        acc_im[l] += x.im * h.re - x.re * h.im;
        en[l] += x.re * x.re + x.im * x.im;
    }
    reduce_lanes(&acc_re, &acc_im, &en)
}

/// Real dot product `Σ a[i]·b[i]` with the lane-split accumulation order
/// described at [`DOT_LANES`]. Bit-exact with [`dot_reference`].
///
/// The polyphase resampler calls this once per output sample with one
/// reversed phase-tap vector against a contiguous input window.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch returned Avx2, so the CPU supports AVX2.
        Backend::Avx2 => unsafe { dot_avx2(a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: dispatch returned Neon, so the CPU supports NEON.
        Backend::Neon => unsafe { dot_neon(a, b) },
        _ => dot_reference(a, b),
    }
}

/// Scalar twin of [`dot`].
pub fn dot_reference(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; DOT_LANES];
    for (i, (&x, &h)) in a.iter().zip(b).enumerate() {
        acc[i % DOT_LANES] += x * h;
    }
    let mut s = 0.0f32;
    for lane in acc {
        s += lane;
    }
    s
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller guarantees AVX2 is available.
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n8 = a.len() / 8 * 8;
    let mut v = _mm256_setzero_ps();
    let mut i = 0;
    while i < n8 {
        // SAFETY: i + 7 < n8 ≤ a.len() == b.len(), so both 8-float loads are
        // in bounds.
        unsafe {
            let av = _mm256_loadu_ps(a.as_ptr().add(i));
            let bv = _mm256_loadu_ps(b.as_ptr().add(i));
            v = _mm256_add_ps(v, _mm256_mul_ps(av, bv));
        }
        i += 8;
    }
    let mut acc = [0.0f32; DOT_LANES];
    // SAFETY: the array is 8 f32s, exactly one __m256.
    unsafe { _mm256_storeu_ps(acc.as_mut_ptr(), v) };
    // Tail elements continue the lane rotation exactly like the scalar twin.
    for (j, (&x, &h)) in a[n8..].iter().zip(&b[n8..]).enumerate() {
        acc[j % DOT_LANES] += x * h;
    }
    let mut s = 0.0f32;
    for lane in acc {
        s += lane;
    }
    s
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// SAFETY: caller guarantees NEON is available.
unsafe fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::aarch64::*;
    let n8 = a.len() / 8 * 8;
    // Two 4-wide accumulators model the 8 scalar lanes: lanes 0..4 live in
    // the first vector, 4..8 in the second.
    let mut v0 = vdupq_n_f32(0.0);
    let mut v1 = vdupq_n_f32(0.0);
    let mut i = 0;
    while i < n8 {
        // SAFETY: i + 7 < n8 ≤ a.len() == b.len(), so each 4-float load is
        // in bounds.
        unsafe {
            let a0 = vld1q_f32(a.as_ptr().add(i));
            let b0 = vld1q_f32(b.as_ptr().add(i));
            let a1 = vld1q_f32(a.as_ptr().add(i + 4));
            let b1 = vld1q_f32(b.as_ptr().add(i + 4));
            // Separate mul + add (not vfmaq) to stay bit-exact with scalar.
            v0 = vaddq_f32(v0, vmulq_f32(a0, b0));
            v1 = vaddq_f32(v1, vmulq_f32(a1, b1));
        }
        i += 8;
    }
    let mut acc = [0.0f32; DOT_LANES];
    // SAFETY: each half-array is 4 f32s, exactly one float32x4_t.
    unsafe {
        vst1q_f32(acc.as_mut_ptr(), v0);
        vst1q_f32(acc.as_mut_ptr().add(4), v1);
    }
    for (j, (&x, &h)) in a[n8..].iter().zip(&b[n8..]).enumerate() {
        acc[j % DOT_LANES] += x * h;
    }
    let mut s = 0.0f32;
    for lane in acc {
        s += lane;
    }
    s
}

// ---------------------------------------------------------------------------
// QAM per-axis soft demap
// ---------------------------------------------------------------------------

/// Per-axis square-QAM max-log soft metrics for a batch of received axis
/// values.
///
/// For each value `x` and each of `bits` gray-coded axis bits, computes
/// `min_{points with bit=0} (x−p)² − min_{points with bit=1} (x−p)²` over
/// the `m = 2^bits` axis points `p = (2·idx − (m−1))·norm`. Output is
/// bit-major: `out[bit·xs.len() + i]` is bit `bit` of value `i` (caller
/// applies per-carrier weight/scale). Bit-exact with
/// [`qam_axis_soft_reference`].
pub fn qam_axis_soft(xs: &[f32], bits: u32, norm: f32, out: &mut [f32]) {
    assert_eq!(
        out.len(),
        xs.len() * bits as usize,
        "soft output must be bits × values"
    );
    assert!((1..=5).contains(&bits), "axis bits must be in 1..=5");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch returned Avx2, so the CPU supports AVX2.
        Backend::Avx2 => unsafe { qam_axis_soft_avx2(xs, bits, norm, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: dispatch returned Neon, so the CPU supports NEON.
        Backend::Neon => unsafe { qam_axis_soft_neon(xs, bits, norm, out) },
        _ => qam_axis_soft_reference(xs, bits, norm, out),
    }
}

/// Scalar twin of [`qam_axis_soft`].
pub fn qam_axis_soft_reference(xs: &[f32], bits: u32, norm: f32, out: &mut [f32]) {
    let m = 1usize << bits;
    let stride = xs.len();
    for (i, &x) in xs.iter().enumerate() {
        let mut min0 = [f32::INFINITY; 5];
        let mut min1 = [f32::INFINITY; 5];
        for idx in 0..m {
            let v = (2.0 * idx as f32 - (m as f32 - 1.0)) * norm;
            let d = (x - v) * (x - v);
            let g = (idx ^ (idx >> 1)) as u32;
            for (bit, (m0, m1)) in min0.iter_mut().zip(min1.iter_mut()).take(bits as usize).enumerate() {
                if (g >> (bits - 1 - bit as u32)) & 1 == 0 {
                    if d < *m0 {
                        *m0 = d;
                    }
                } else if d < *m1 {
                    *m1 = d;
                }
            }
        }
        for bit in 0..bits as usize {
            out[bit * stride + i] = min0[bit] - min1[bit];
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller guarantees AVX2 is available.
unsafe fn qam_axis_soft_avx2(xs: &[f32], bits: u32, norm: f32, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let m = 1usize << bits;
    let stride = xs.len();
    let n8 = stride / 8 * 8;
    let inf = _mm256_set1_ps(f32::INFINITY);
    let mut i = 0;
    while i < n8 {
        // SAFETY: i + 7 < n8 ≤ xs.len(); stores land at bit·stride + i + 7
        // < bits·stride = out.len().
        unsafe {
            let xv = _mm256_loadu_ps(xs.as_ptr().add(i));
            let mut min0 = [inf; 5];
            let mut min1 = [inf; 5];
            for idx in 0..m {
                let v = _mm256_set1_ps((2.0 * idx as f32 - (m as f32 - 1.0)) * norm);
                let dx = _mm256_sub_ps(xv, v);
                let d = _mm256_mul_ps(dx, dx);
                let g = (idx ^ (idx >> 1)) as u32;
                for bit in 0..bits as usize {
                    // min_ps(d, cur): for finite inputs identical to the
                    // scalar `if d < cur { cur = d }` update.
                    if (g >> (bits - 1 - bit as u32)) & 1 == 0 {
                        min0[bit] = _mm256_min_ps(d, min0[bit]);
                    } else {
                        min1[bit] = _mm256_min_ps(d, min1[bit]);
                    }
                }
            }
            for bit in 0..bits as usize {
                let soft = _mm256_sub_ps(min0[bit], min1[bit]);
                _mm256_storeu_ps(out.as_mut_ptr().add(bit * stride + i), soft);
            }
        }
        i += 8;
    }
    // Tail values: scalar twin on the remainder, writing at the same
    // bit-major offsets.
    let mut tail_out = vec![0.0f32; (stride - n8) * bits as usize];
    qam_axis_soft_reference(&xs[n8..], bits, norm, &mut tail_out);
    for bit in 0..bits as usize {
        let src = &tail_out[bit * (stride - n8)..(bit + 1) * (stride - n8)];
        out[bit * stride + n8..bit * stride + stride].copy_from_slice(src);
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// SAFETY: caller guarantees NEON is available.
unsafe fn qam_axis_soft_neon(xs: &[f32], bits: u32, norm: f32, out: &mut [f32]) {
    use std::arch::aarch64::*;
    let m = 1usize << bits;
    let stride = xs.len();
    let n4 = stride / 4 * 4;
    let inf = vdupq_n_f32(f32::INFINITY);
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 3 < n4 ≤ xs.len(); stores land at bit·stride + i + 3
        // < bits·stride = out.len().
        unsafe {
            let xv = vld1q_f32(xs.as_ptr().add(i));
            let mut min0 = [inf; 5];
            let mut min1 = [inf; 5];
            for idx in 0..m {
                let v = vdupq_n_f32((2.0 * idx as f32 - (m as f32 - 1.0)) * norm);
                let dx = vsubq_f32(xv, v);
                let d = vmulq_f32(dx, dx);
                let g = (idx ^ (idx >> 1)) as u32;
                for bit in 0..bits as usize {
                    if (g >> (bits - 1 - bit as u32)) & 1 == 0 {
                        min0[bit] = vminq_f32(d, min0[bit]);
                    } else {
                        min1[bit] = vminq_f32(d, min1[bit]);
                    }
                }
            }
            for bit in 0..bits as usize {
                let soft = vsubq_f32(min0[bit], min1[bit]);
                vst1q_f32(out.as_mut_ptr().add(bit * stride + i), soft);
            }
        }
        i += 4;
    }
    let mut tail_out = vec![0.0f32; (stride - n4) * bits as usize];
    qam_axis_soft_reference(&xs[n4..], bits, norm, &mut tail_out);
    for bit in 0..bits as usize {
        let src = &tail_out[bit * (stride - n4)..(bit + 1) * (stride - n4)];
        out[bit * stride + n4..bit * stride + stride].copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u32) -> Vec<f32> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(1103515245).wrapping_add(12345);
                ((x >> 16) as f32 / 32768.0) - 1.0
            })
            .collect()
    }

    fn cnoise(n: usize, seed: u32) -> Vec<C32> {
        let re = noise(n, seed);
        let im = noise(n, seed.wrapping_mul(7).wrapping_add(13));
        re.iter().zip(&im).map(|(&r, &i)| C32::new(r, i)).collect()
    }

    /// Lengths chosen to exercise empty, sub-vector, odd, and full-vector
    /// paths (plus unaligned offsets below).
    const LENS: [usize; 7] = [0, 1, 3, 7, 8, 31, 257];

    #[test]
    fn backend_name_is_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Avx2.name(), "avx2");
        assert_eq!(Backend::Neon.name(), "neon");
        let _ = backend();
    }

    #[test]
    fn fir_mac_matches_fir_mac_reference_bit_exactly() {
        for &n in &LENS {
            for taps_len in [1usize, 5, 32] {
                let taps = noise(taps_len, 3);
                // Offset 1 into a larger buffer = unaligned window start.
                let big = noise(n + taps_len, 11 + n as u32);
                let window = &big[1..];
                let mut got = vec![0.0f32; n];
                let mut want = vec![0.0f32; n];
                fir_mac(&taps, window, &mut got);
                fir_mac_reference(&taps, window, &mut want);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "n={n} taps={taps_len}");
                }
            }
        }
    }

    #[test]
    fn dot_matches_dot_reference_bit_exactly() {
        for &n in &LENS {
            // Offset 1 into larger buffers = unaligned slice starts.
            let big_a = noise(n + 1, 41 + n as u32);
            let big_b = noise(n + 1, 43 + n as u32);
            let got = dot(&big_a[1..], &big_b[1..]);
            let want = dot_reference(&big_a[1..], &big_b[1..]);
            assert_eq!(got.to_bits(), want.to_bits(), "n={n}: {got} vs {want}");
        }
    }

    #[test]
    fn cmul_in_place_matches_cmul_in_place_reference_bit_exactly() {
        for &n in &LENS {
            let (br, bi) = (noise(n, 5), noise(n, 6));
            let mut gr = noise(n, 7);
            let mut gi = noise(n, 8);
            let mut wr = gr.clone();
            let mut wi = gi.clone();
            cmul_in_place(&mut gr, &mut gi, &br, &bi);
            cmul_in_place_reference(&mut wr, &mut wi, &br, &bi);
            for i in 0..n {
                assert_eq!(gr[i].to_bits(), wr[i].to_bits(), "re n={n} i={i}");
                assert_eq!(gi[i].to_bits(), wi[i].to_bits(), "im n={n} i={i}");
            }
        }
    }

    #[test]
    fn butterfly_radix2_matches_butterfly_radix2_reference_bit_exactly() {
        for &n in &LENS {
            let (tr, ti) = (noise(n, 21), noise(n, 22));
            let mut g = [noise(n, 31), noise(n, 32), noise(n, 33), noise(n, 34)];
            let mut w = g.clone();
            {
                let [ar, ai, br, bi] = &mut g;
                butterfly_radix2(ar, ai, br, bi, &tr, &ti);
            }
            {
                let [ar, ai, br, bi] = &mut w;
                butterfly_radix2_reference(ar, ai, br, bi, &tr, &ti);
            }
            for p in 0..4 {
                for i in 0..n {
                    assert_eq!(g[p][i].to_bits(), w[p][i].to_bits(), "plane {p} n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn mul_conj_split_matches_mul_conj_split_reference_bit_exactly() {
        for &n in &LENS {
            let big_a = cnoise(n + 1, 41);
            let big_b = cnoise(n + 1, 42);
            // Offset 1 = unaligned complex slice start.
            let (a, b) = (&big_a[1..], &big_b[1..]);
            let mut gr = vec![0.0f32; n];
            let mut gi = vec![0.0f32; n];
            let mut wr = vec![0.0f32; n];
            let mut wi = vec![0.0f32; n];
            mul_conj_split(a, b, &mut gr, &mut gi);
            mul_conj_split_reference(a, b, &mut wr, &mut wi);
            for i in 0..n {
                assert_eq!(gr[i].to_bits(), wr[i].to_bits(), "re n={n} i={i}");
                assert_eq!(gi[i].to_bits(), wi[i].to_bits(), "im n={n} i={i}");
            }
        }
    }

    #[test]
    fn atan2_scale_matches_atan2_scale_reference_bit_exactly() {
        for &n in &LENS {
            let mut y = noise(n, 51);
            let mut x = noise(n, 52);
            // Force the special lanes: origin, axes, negative halves.
            if n >= 8 {
                y[0] = 0.0;
                x[0] = 0.0;
                y[1] = 0.0;
                x[2] = 0.0;
                y[3] = -0.0;
                x[3] = -1.0;
                x[4] = -x[4].abs();
                y[5] = -y[5].abs();
            }
            let mut got = vec![0.0f32; n];
            let mut want = vec![0.0f32; n];
            atan2_scale(&y, &x, 0.37, &mut got);
            atan2_scale_reference(&y, &x, 0.37, &mut want);
            for i in 0..n {
                assert_eq!(got[i].to_bits(), want[i].to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn dot_mul_conj_energy_matches_dot_mul_conj_energy_reference_bit_exactly() {
        for &n in &LENS {
            let big_a = cnoise(n + 1, 61);
            let big_b = cnoise(n + 1, 62);
            let (a, b) = (&big_a[1..], &big_b[1..]);
            let (gc, ge) = dot_mul_conj_energy(a, b);
            let (wc, we) = dot_mul_conj_energy_reference(a, b);
            assert_eq!(gc.re.to_bits(), wc.re.to_bits(), "n={n}");
            assert_eq!(gc.im.to_bits(), wc.im.to_bits(), "n={n}");
            assert_eq!(ge.to_bits(), we.to_bits(), "n={n}");
        }
    }

    #[test]
    fn qam_axis_soft_matches_qam_axis_soft_reference_bit_exactly() {
        for &n in &LENS {
            for bits in 1..=5u32 {
                let xs = noise(n, 70 + bits);
                let mut got = vec![0.0f32; n * bits as usize];
                let mut want = vec![0.0f32; n * bits as usize];
                qam_axis_soft(&xs, bits, 0.31, &mut got);
                qam_axis_soft_reference(&xs, bits, 0.31, &mut want);
                for i in 0..got.len() {
                    assert_eq!(got[i].to_bits(), want[i].to_bits(), "n={n} bits={bits} i={i}");
                }
            }
        }
    }

    #[test]
    fn force_scalar_round_trips() {
        force_scalar(true);
        assert_eq!(backend(), Backend::Scalar);
        force_scalar(false);
        let _ = backend();
        // Kernels still agree after toggling.
        let a = cnoise(33, 91);
        let b = cnoise(33, 92);
        let with_dispatch = dot_mul_conj_energy(&a, &b);
        force_scalar(true);
        let forced = dot_mul_conj_energy(&a, &b);
        force_scalar(false);
        assert_eq!(with_dispatch.0.re.to_bits(), forced.0.re.to_bits());
        assert_eq!(with_dispatch.0.im.to_bits(), forced.0.im.to_bits());
        assert_eq!(with_dispatch.1.to_bits(), forced.1.to_bits());
    }
}
