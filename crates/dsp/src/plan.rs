//! Planned transforms over structure-of-arrays buffers.
//!
//! [`FftPlan`] is the split-plane (SoA) counterpart of [`crate::fft::Fft`]:
//! the bit-reversal permutation and **per-stage contiguous twiddle tables**
//! are computed once, and every butterfly stage runs through the
//! runtime-dispatched [`crate::simd::butterfly_radix2`] kernel. Twiddles are
//! evaluated with the same `f64` angles as `Fft`, and the kernel's scalar
//! twin performs the same arithmetic as the interleaved butterflies, so the
//! scalar path is bit-identical to `Fft` — SIMD dispatch is bit-identical to
//! the scalar path by kernel construction.
//!
//! [`FirPlan`] is the shareable, immutable half of an overlap-save FIR: the
//! FFT plan plus the tap spectrum. Streaming state (history tails, frame
//! scratch) lives in `fir::BlockFir`/`fir::BlockFirC`, so one plan can be
//! cloned behind an `Arc` across many receivers — the shape needed to
//! demodulate many simulated receivers per tick without re-planning.

use crate::complex::C32;
use crate::simd;
use crate::split::SplitC32;
use std::sync::Arc;

/// A reusable split-plane FFT plan for a fixed power-of-two size.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal permutation indices.
    rev: Vec<u32>,
    /// Per-stage contiguous forward twiddles; stage `s` (block length
    /// `2^{s+1}`) occupies `stage_off[s] .. stage_off[s] + 2^s`.
    fwd_re: Vec<f32>,
    fwd_im: Vec<f32>,
    /// Conjugated twiddles for the inverse transform.
    inv_re: Vec<f32>,
    inv_im: Vec<f32>,
    stage_off: Vec<usize>,
}

impl FftPlan {
    /// Builds a plan for an `n`-point transform.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or is smaller than 2.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "FFT size must be a power of two >= 2, got {n}"
        );
        let bits = n.trailing_zeros();
        let rev = (0..n as u32).map(|i| i.reverse_bits() >> (32 - bits)).collect();
        let mut fwd_re = Vec::with_capacity(n - 1);
        let mut fwd_im = Vec::with_capacity(n - 1);
        let mut stage_off = Vec::with_capacity(bits as usize);
        let mut len = 2usize;
        while len <= n {
            stage_off.push(fwd_re.len());
            for k in 0..len / 2 {
                // Same f64 angle as `Fft`'s table (k·stride/n == k/len as
                // exact rationals, so the rounded quotients agree).
                let theta = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                let w = C32::from_angle(theta);
                fwd_re.push(w.re);
                fwd_im.push(w.im);
            }
            len <<= 1;
        }
        let inv_re = fwd_re.clone();
        let inv_im = fwd_im.iter().map(|v| -v).collect();
        FftPlan {
            n,
            rev,
            fwd_re,
            fwd_im,
            inv_re,
            inv_im,
            stage_off,
        }
    }

    /// Transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; plans are at least 2 points. Present for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn permute(&self, re: &mut [f32], im: &mut [f32]) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
    }

    fn butterflies(&self, re: &mut [f32], im: &mut [f32], inverse: bool) {
        let n = self.n;
        let (tw_re, tw_im) = if inverse {
            (&self.inv_re, &self.inv_im)
        } else {
            (&self.fwd_re, &self.fwd_im)
        };
        let mut len = 2usize;
        let mut s = 0usize;
        while len <= n {
            let half = len / 2;
            let off = self.stage_off[s];
            let (wr, wi) = (&tw_re[off..off + half], &tw_im[off..off + half]);
            for start in (0..n).step_by(len) {
                let (a_re, b_re) = re[start..start + len].split_at_mut(half);
                let (a_im, b_im) = im[start..start + len].split_at_mut(half);
                if half >= 8 {
                    simd::butterfly_radix2(a_re, a_im, b_re, b_im, wr, wi);
                } else {
                    // Short spans: skip per-call dispatch, same arithmetic.
                    simd::butterfly_radix2_reference(a_re, a_im, b_re, b_im, wr, wi);
                }
            }
            len <<= 1;
            s += 1;
        }
    }

    /// In-place forward DFT on split planes (no scaling). Bit-identical to
    /// [`crate::fft::Fft::forward`] on the same samples.
    ///
    /// # Panics
    /// Panics if the planes are not exactly `len()` samples.
    pub fn forward_split(&self, re: &mut [f32], im: &mut [f32]) {
        assert!(
            re.len() == self.n && im.len() == self.n,
            "plane length must equal FFT size"
        );
        self.permute(re, im);
        self.butterflies(re, im, false);
    }

    /// In-place inverse DFT on split planes, scaled by `1/n`.
    ///
    /// Always radix-2 (unlike [`crate::fft::Fft::inverse`], which merges
    /// stages radix-4 on power-of-4 sizes); differs from it only by float
    /// rounding.
    ///
    /// # Panics
    /// Panics if the planes are not exactly `len()` samples.
    pub fn inverse_split(&self, re: &mut [f32], im: &mut [f32]) {
        assert!(
            re.len() == self.n && im.len() == self.n,
            "plane length must equal FFT size"
        );
        self.permute(re, im);
        self.butterflies(re, im, true);
        let k = 1.0 / self.n as f32;
        for v in re.iter_mut() {
            *v *= k;
        }
        for v in im.iter_mut() {
            *v *= k;
        }
    }

    /// Forward-transforms `buf` as a batch of concatenated `len()`-point
    /// transforms — the one-operation shape for demodulating many receivers
    /// (or overlap-save frames) per tick.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not a multiple of `len()`.
    pub fn forward_batch(&self, buf: &mut SplitC32) {
        assert!(
            buf.len().is_multiple_of(self.n),
            "batch length must be a multiple of the FFT size"
        );
        for start in (0..buf.len()).step_by(self.n) {
            let (re, im) = (&mut buf.re[start..start + self.n], &mut buf.im[start..start + self.n]);
            self.permute(re, im);
            self.butterflies(re, im, false);
        }
    }

    /// Inverse-transforms `buf` as a batch of concatenated `len()`-point
    /// transforms, each scaled by `1/n`.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not a multiple of `len()`.
    pub fn inverse_batch(&self, buf: &mut SplitC32) {
        assert!(
            buf.len().is_multiple_of(self.n),
            "batch length must be a multiple of the FFT size"
        );
        for start in (0..buf.len()).step_by(self.n) {
            let (re, im) = (&mut buf.re[start..start + self.n], &mut buf.im[start..start + self.n]);
            self.inverse_split(re, im);
        }
    }
}

/// Tap count at and above which overlap-save beats the direct form on
/// typical hosts (re-exported alongside the plan for callers that choose).
pub use crate::fir::BLOCK_FIR_MIN_TAPS;

/// The immutable, shareable half of an overlap-save FIR: FFT plan + tap
/// spectrum. Wrap it in an [`Arc`] and hand clones to any number of
/// `BlockFir`/`BlockFirC` streams — planning (twiddles, tap FFT) happens
/// once per filter design instead of once per receiver.
#[derive(Debug, Clone)]
pub struct FirPlan {
    taps_len: usize,
    fft: FftPlan,
    /// FFT of the zero-padded taps, split planes.
    spec: SplitC32,
    /// New samples consumed per FFT frame (`fft − taps + 1`).
    block: usize,
}

impl FirPlan {
    /// Plans an overlap-save engine for a coefficient vector.
    ///
    /// # Panics
    /// Panics if `taps` is empty.
    pub fn new(taps: &[f32]) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        let n = crate::fir::overlap_save_fft_size(taps.len());
        let fft = FftPlan::new(n);
        let mut spec = SplitC32::zeroed(n);
        spec.re[..taps.len()].copy_from_slice(taps);
        fft.forward_split(&mut spec.re, &mut spec.im);
        FirPlan {
            taps_len: taps.len(),
            fft,
            spec,
            block: n - taps.len() + 1,
        }
    }

    /// Convenience: a plan already wrapped for sharing.
    pub fn shared(taps: &[f32]) -> Arc<Self> {
        Arc::new(FirPlan::new(taps))
    }

    /// Number of taps the plan was built for.
    #[inline]
    pub fn taps_len(&self) -> usize {
        self.taps_len
    }

    /// New samples consumed per FFT frame.
    #[inline]
    pub fn block(&self) -> usize {
        self.block
    }

    /// The FFT plan (frame size = `fft().len()`).
    #[inline]
    pub fn fft(&self) -> &FftPlan {
        &self.fft
    }

    /// Group delay in samples for the linear-phase designs in `fir`.
    #[inline]
    pub fn delay(&self) -> usize {
        (self.taps_len - 1) / 2
    }

    /// Multiplies a batch of transformed frames by the tap spectrum in
    /// place (`frames.len()` must be a multiple of the frame size).
    pub fn apply_spectrum(&self, frames: &mut SplitC32) {
        let n = self.fft.len();
        assert!(frames.len().is_multiple_of(n), "frame batch length mismatch");
        for start in (0..frames.len()).step_by(n) {
            simd::cmul_in_place(
                &mut frames.re[start..start + n],
                &mut frames.im[start..start + n],
                &self.spec.re,
                &self.spec.im,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::Fft;

    fn cnoise(n: usize, seed: u32) -> Vec<C32> {
        let mut x = seed | 1;
        let mut f = || {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            ((x >> 16) as f32 / 32768.0) - 1.0
        };
        (0..n).map(|_| C32::new(f(), f())).collect()
    }

    #[test]
    fn forward_split_is_bit_identical_to_fft_forward() {
        for n in [2usize, 8, 32, 512, 1024, 2048] {
            let x = cnoise(n, n as u32 + 1);
            let mut want = x.clone();
            Fft::new(n).forward(&mut want);
            let mut s = SplitC32::from_interleaved(&x);
            FftPlan::new(n).forward_split(&mut s.re, &mut s.im);
            for (i, w) in want.iter().enumerate() {
                assert_eq!(s.re[i].to_bits(), w.re.to_bits(), "n={n} re[{i}]");
                assert_eq!(s.im[i].to_bits(), w.im.to_bits(), "n={n} im[{i}]");
            }
        }
    }

    #[test]
    fn inverse_split_roundtrips_within_1e5_rms() {
        for n in [16usize, 256, 1024, 2048] {
            let x = cnoise(n, 7 * n as u32 + 3);
            let mut s = SplitC32::from_interleaved(&x);
            let plan = FftPlan::new(n);
            plan.forward_split(&mut s.re, &mut s.im);
            plan.inverse_split(&mut s.re, &mut s.im);
            let mut err = 0.0f64;
            let mut pwr = 0.0f64;
            for (i, v) in x.iter().enumerate() {
                err += ((s.re[i] - v.re) as f64).powi(2) + ((s.im[i] - v.im) as f64).powi(2);
                pwr += (v.re as f64).powi(2) + (v.im as f64).powi(2);
            }
            assert!((err / pwr).sqrt() < 1e-5, "n={n} rms {}", (err / pwr).sqrt());
        }
    }

    #[test]
    fn batch_matches_per_transform_loop() {
        let n = 64;
        let count = 5;
        let plan = FftPlan::new(n);
        let x = cnoise(n * count, 99);
        let mut batch = SplitC32::from_interleaved(&x);
        plan.forward_batch(&mut batch);
        plan.inverse_batch(&mut batch);
        for (t, chunk) in x.chunks(n).enumerate() {
            let mut one = SplitC32::from_interleaved(chunk);
            plan.forward_split(&mut one.re, &mut one.im);
            plan.inverse_split(&mut one.re, &mut one.im);
            for i in 0..n {
                assert_eq!(batch.re[t * n + i].to_bits(), one.re[i].to_bits(), "t={t} i={i}");
                assert_eq!(batch.im[t * n + i].to_bits(), one.im[i].to_bits(), "t={t} i={i}");
            }
        }
    }

    #[test]
    fn fir_plan_spectrum_matches_fft_of_padded_taps() {
        let taps: Vec<f32> = (0..101).map(|i| ((i as f32) * 0.1).sin()).collect();
        let plan = FirPlan::new(&taps);
        assert_eq!(plan.taps_len(), 101);
        assert_eq!(plan.delay(), 50);
        let n = plan.fft().len();
        assert_eq!(plan.block(), n - 101 + 1);
        let mut want: Vec<C32> = taps.iter().map(|&t| C32::new(t, 0.0)).collect();
        want.resize(n, C32::ZERO);
        Fft::new(n).forward(&mut want);
        let mut frames = SplitC32::zeroed(n);
        frames.re[0] = 1.0; // impulse: output = spectrum
        plan.fft().forward_split(&mut frames.re, &mut frames.im);
        plan.apply_spectrum(&mut frames);
        for (i, w) in want.iter().enumerate() {
            assert!((frames.re[i] - w.re).abs() < 1e-5, "re[{i}]");
            assert!((frames.im[i] - w.im).abs() < 1e-5, "im[{i}]");
        }
    }
}
