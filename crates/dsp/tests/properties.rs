//! Property-based tests of the DSP primitives.

use proptest::prelude::*;
use sonic_dsp::fft::Fft;
use sonic_dsp::fir::{design_lowpass, BlockFir, Fir};
use sonic_dsp::plan::FftPlan;
use sonic_dsp::resample::Resampler;
use sonic_dsp::simd;
use sonic_dsp::window::{generate, Window};
use sonic_dsp::C32;

/// Feeds `signal` through a fresh direct-form FIR, one sample at a time.
fn direct_form(taps: &[f32], signal: &[f32]) -> Vec<f32> {
    let mut fir = Fir::new(taps.to_vec());
    signal.iter().map(|&x| fir.push(x)).collect()
}

/// Feeds `signal` through a fresh overlap-save FIR in chunks of `block`.
fn overlap_save(taps: &[f32], signal: &[f32], block: usize) -> Vec<f32> {
    let mut fir = BlockFir::new(taps);
    let mut out = signal.to_vec();
    for chunk in out.chunks_mut(block.max(1)) {
        fir.process(chunk);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// forward ∘ inverse is the identity for every power-of-two size.
    #[test]
    fn fft_roundtrip(
        log_n in 1u32..10,
        seed in any::<u32>(),
    ) {
        let n = 1usize << log_n;
        let fft = Fft::new(n);
        let mut x = seed;
        let orig: Vec<C32> = (0..n)
            .map(|_| {
                x = x.wrapping_mul(1103515245).wrapping_add(12345);
                let re = ((x >> 16) as f32 / 32768.0) - 1.0;
                x = x.wrapping_mul(1103515245).wrapping_add(12345);
                let im = ((x >> 16) as f32 / 32768.0) - 1.0;
                C32::new(re, im)
            })
            .collect();
        let mut buf = orig.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-3);
        }
    }

    /// Parseval holds for random signals at random sizes.
    #[test]
    fn fft_parseval(log_n in 2u32..9, seed in any::<u32>()) {
        let n = 1usize << log_n;
        let fft = Fft::new(n);
        let mut x = seed | 1;
        let sig: Vec<C32> = (0..n)
            .map(|_| {
                x = x.wrapping_mul(48271);
                C32::new(((x >> 16) & 0xFF) as f32 / 255.0 - 0.5, 0.1)
            })
            .collect();
        let time: f64 = sig.iter().map(|v| v.norm_sq() as f64).sum();
        let mut buf = sig;
        fft.forward(&mut buf);
        let freq: f64 = buf.iter().map(|v| v.norm_sq() as f64).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() <= time * 1e-3 + 1e-6);
    }

    /// FIR impulse response replays the taps for any tap vector.
    #[test]
    fn fir_impulse_is_taps(taps in proptest::collection::vec(-1.0f32..1.0, 1..32)) {
        let mut fir = Fir::new(taps.clone());
        let got: Vec<f32> = (0..taps.len())
            .map(|i| fir.push(if i == 0 { 1.0 } else { 0.0 }))
            .collect();
        for (g, t) in got.iter().zip(&taps) {
            prop_assert!((g - t).abs() < 1e-6);
        }
    }

    /// Overlap-save equals the direct form on an impulse for any tap count
    /// (including the FFT path's minimum and odd lengths) and any block size.
    #[test]
    fn overlap_save_impulse(n_taps in 1usize..300, block in 1usize..700) {
        let taps: Vec<f32> = (0..n_taps)
            .map(|i| ((i as f32 * 0.37).sin() * 0.9) / (1.0 + i as f32 * 0.01))
            .collect();
        let mut signal = vec![0.0f32; (2 * n_taps).max(64)];
        signal[0] = 1.0;
        let want = direct_form(&taps, &signal);
        let got = overlap_save(&taps, &signal, block);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!((g - w).abs() < 1e-4, "tap-impulse sample {i}: {g} vs {w}");
        }
    }

    /// Overlap-save equals the direct form on a step input (worst case for
    /// accumulated DC error) for odd block sizes.
    #[test]
    fn overlap_save_step(n_taps in 1usize..300, block in 1usize..700) {
        let taps = design_lowpass(n_taps.max(3) | 1, 0.1);
        let signal = vec![1.0f32; 1000];
        let want = direct_form(&taps, &signal);
        let got = overlap_save(&taps, &signal, block | 1);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!((g - w).abs() < 1e-4, "step sample {i}: {g} vs {w}");
        }
    }

    /// Overlap-save equals the direct form on random signals, random tap
    /// sets, and random (odd and even) streaming block sizes.
    #[test]
    fn overlap_save_random(
        n_taps in 1usize..300,
        block in 1usize..700,
        seed in any::<u32>(),
    ) {
        let mut x = seed | 1;
        let mut rnd = move || {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            ((x >> 16) as f32 / 32768.0) - 1.0
        };
        let taps: Vec<f32> = (0..n_taps).map(|_| rnd() * 0.5).collect();
        let signal: Vec<f32> = (0..1200).map(|_| rnd()).collect();
        let want = direct_form(&taps, &signal);
        let got = overlap_save(&taps, &signal, block);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!((g - w).abs() < 2e-4, "random sample {i}: {g} vs {w}");
        }
    }

    /// Low-pass design always has unit DC gain.
    #[test]
    fn lowpass_dc_gain(taps in 3usize..200, cutoff in 0.01f64..0.49) {
        let h = design_lowpass(taps, cutoff);
        let sum: f32 = h.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// Resampler output length tracks the rational ratio for any rates.
    #[test]
    fn resampler_length(from in 1000usize..50_000, to in 1000usize..50_000) {
        let mut r = Resampler::new(from, to, 8);
        let n_in = 2048usize;
        let mut out = Vec::new();
        r.process_into(&vec![0.25f32; n_in], &mut out);
        let expect = n_in as f64 * to as f64 / from as f64;
        prop_assert!(
            (out.len() as f64 - expect).abs() <= expect * 0.02 + 8.0,
            "{} vs {}", out.len(), expect
        );
    }

    /// The dispatched FIR MAC kernel is bit-identical to its scalar twin on
    /// random taps, random (including zero) output lengths, and unaligned
    /// window offsets.
    #[test]
    fn simd_fir_mac_matches_reference_bit_exactly(
        n_taps in 1usize..64,
        n in 0usize..300,
        offset in 0usize..8,
        seed in any::<u32>(),
    ) {
        let mut x = seed | 1;
        let mut rnd = move || {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            ((x >> 16) as f32 / 32768.0) - 1.0
        };
        let taps: Vec<f32> = (0..n_taps).map(|_| rnd()).collect();
        let window: Vec<f32> = (0..offset + n + n_taps - 1).map(|_| rnd()).collect();
        let view = &window[offset..];
        let mut fast = vec![0.0f32; n];
        let mut reference = vec![0.0f32; n];
        simd::fir_mac(&taps, view, &mut fast);
        simd::fir_mac_reference(&taps, view, &mut reference);
        for (i, (f, r)) in fast.iter().zip(&reference).enumerate() {
            prop_assert_eq!(f.to_bits(), r.to_bits(), "sample {}: {} vs {}", i, f, r);
        }
    }

    /// The discriminator kernels (`x·conj(y)` product and scaled atan2) are
    /// bit-identical to their scalar twins on random odd lengths and
    /// unaligned slice starts.
    #[test]
    fn simd_discriminator_kernels_match_reference_bit_exactly(
        n in 0usize..300,
        offset in 0usize..4,
        scale in 0.1f32..10.0,
        seed in any::<u32>(),
    ) {
        let mut x = seed | 1;
        let mut rnd = move || {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            ((x >> 16) as f32 / 32768.0) - 1.0
        };
        let a: Vec<C32> = (0..offset + n).map(|_| C32::new(rnd(), rnd())).collect();
        let b: Vec<C32> = (0..offset + n).map(|_| C32::new(rnd(), rnd())).collect();
        let (a, b) = (&a[offset..], &b[offset..]);
        let (mut re_f, mut im_f) = (vec![0.0f32; n], vec![0.0f32; n]);
        let (mut re_r, mut im_r) = (vec![0.0f32; n], vec![0.0f32; n]);
        simd::mul_conj_split(a, b, &mut re_f, &mut im_f);
        simd::mul_conj_split_reference(a, b, &mut re_r, &mut im_r);
        for i in 0..n {
            prop_assert_eq!(re_f[i].to_bits(), re_r[i].to_bits(), "re[{}]", i);
            prop_assert_eq!(im_f[i].to_bits(), im_r[i].to_bits(), "im[{}]", i);
        }
        let mut ang_f = vec![0.0f32; n];
        let mut ang_r = vec![0.0f32; n];
        simd::atan2_scale(&im_f, &re_f, scale, &mut ang_f);
        simd::atan2_scale_reference(&im_r, &re_r, scale, &mut ang_r);
        for i in 0..n {
            prop_assert_eq!(ang_f[i].to_bits(), ang_r[i].to_bits(), "angle[{}]", i);
        }
    }

    /// The planned split-plane forward FFT is bit-identical to the
    /// interleaved `Fft::forward`, and the planned round trip
    /// (forward ∘ inverse) recovers the input within 1e-5 RMS.
    #[test]
    fn fft_plan_split_matches_fft(log_n in 1u32..11, seed in any::<u32>()) {
        let n = 1usize << log_n;
        let mut x = seed | 1;
        let mut rnd = move || {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            ((x >> 16) as f32 / 32768.0) - 1.0
        };
        let orig: Vec<C32> = (0..n).map(|_| C32::new(rnd(), rnd())).collect();
        let mut interleaved = orig.clone();
        Fft::new(n).forward(&mut interleaved);
        let plan = FftPlan::new(n);
        let mut re: Vec<f32> = orig.iter().map(|v| v.re).collect();
        let mut im: Vec<f32> = orig.iter().map(|v| v.im).collect();
        plan.forward_split(&mut re, &mut im);
        for i in 0..n {
            prop_assert_eq!(re[i].to_bits(), interleaved[i].re.to_bits(), "re[{}]", i);
            prop_assert_eq!(im[i].to_bits(), interleaved[i].im.to_bits(), "im[{}]", i);
        }
        plan.inverse_split(&mut re, &mut im);
        let err: f64 = (0..n)
            .map(|i| {
                let d = C32::new(re[i] - orig[i].re, im[i] - orig[i].im);
                d.norm_sq() as f64
            })
            .sum::<f64>()
            / n as f64;
        prop_assert!(err.sqrt() <= 1e-5, "round-trip RMS {} at n = {}", err.sqrt(), n);
    }

    /// Windows are bounded in [0, 1] and symmetric.
    #[test]
    fn window_bounds(n in 2usize..512) {
        for kind in [Window::Hann, Window::Hamming, Window::Blackman] {
            let w = generate(kind, n);
            for (i, &v) in w.iter().enumerate() {
                prop_assert!((-1e-6..=1.0 + 1e-6).contains(&v), "{kind:?}[{i}] = {v}");
                let mirror = w[n - 1 - i];
                prop_assert!((v - mirror).abs() < 1e-5, "{kind:?} asymmetric at {i}");
            }
        }
    }
}
