//! Adversarial robustness: the linter eats *source text*, including the
//! half-saved, merge-conflicted or outright corrupt files an editor can
//! leave behind. Whatever the input, `lint_sources` must neither panic nor
//! drift between runs — CI diffs two invocations, so any nondeterminism
//! is itself a bug.

use proptest::prelude::*;
use sonic_lint::{lint_sources, SourceFile};

/// Virtual paths that arm every path-scoped rule (R3/R4/R7/R8) plus an
/// out-of-scope control.
const ARMED_PATHS: &[&str] = &[
    "crates/core/src/net/proto.rs",
    "crates/sim/src/fixture.rs",
    "crates/fec/src/fixture.rs",
    "crates/dsp/src/simd.rs",
    "crates/pagegen/src/fixture.rs",
];

fn lint_under_all_paths(text: &str) -> Vec<Vec<sonic_lint::Finding>> {
    ARMED_PATHS
        .iter()
        .map(|p| {
            lint_sources(&[SourceFile {
                path: p.to_string(),
                text: text.to_string(),
            }])
        })
        .collect()
}

/// Rust-shaped fragments: concatenations of these hit the lexer and
/// scanner edge cases (unterminated strings, raw idents, generics vs
/// shifts, nested braces, test attributes) far more often than raw bytes.
const FRAGMENTS: &[&str] = &[
    "fn ", "impl ", "enum E ", "mod t ", "{", "}", "(", ")", "[", "]",
    "::", "->", ";", ",", "<", ">", ">>", "\n", " ", "as u8", "as u32",
    "r#type", "r#fn", "'a", "'\\n'", "\"str\\\"", "\"s\"", "b\"x\"",
    "0xFF_u16", "1_187.5", "228_000", "// c\n", "/* b */", "/* unterminated",
    "#[test]\n", "#[cfg(test)]\n", "use a::{b, c as d};", "use e::*;",
    "unsafe ", ".unwrap()", ".push(x)", "Vec::new()", "HashMap",
    "thread_rng", "Instant::now()", "match x ", "let y = ", "self.",
    "Self::f()", "x.len()", "& 0xFF", "% 256", "// lint: allow(no-alloc)\n",
    "// lint: checked-cast — ok\n", "encode_cmd", "decode_cmd", "_into",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn byte_soup_never_panics_and_is_stable(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let a = lint_under_all_paths(&text);
        let b = lint_under_all_paths(&text);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn token_soup_never_panics_and_is_stable(
        picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..256)
    ) {
        let text: String = picks
            .iter()
            .map(|ix| FRAGMENTS[ix.index(FRAGMENTS.len())])
            .collect();
        let a = lint_under_all_paths(&text);
        let b = lint_under_all_paths(&text);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn truncated_real_source_never_panics(cut in 0usize..40_000) {
        // A real module chopped mid-token: the worst case an interrupted
        // save produces. Clamp the cut to a char boundary.
        let real = concat!(
            include_str!("../src/rules.rs"),
            include_str!("../src/graph.rs"),
        );
        let mut end = cut.min(real.len());
        while !real.is_char_boundary(end) {
            end -= 1;
        }
        let text = &real[..end];
        let a = lint_under_all_paths(text);
        let b = lint_under_all_paths(text);
        prop_assert_eq!(a, b);
    }
}
