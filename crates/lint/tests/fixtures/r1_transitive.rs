//! Transitive R1 fixture: `mix_into` is allocation-free in its own body
//! but reaches an allocating helper three hops down. `vetted_into` makes
//! the same call under an edge-breaking allow and must stay silent.

pub fn mix_into(out: &mut [f32]) {
    for v in out.iter_mut() {
        *v = shape(*v);
    }
}

pub fn vetted_into(out: &mut [f32]) {
    for v in out.iter_mut() {
        // lint: allow(no-alloc) — fixture: growth through this call is amortized
        *v = shape(*v);
    }
}

fn shape(x: f32) -> f32 {
    scale(x)
}

fn scale(x: f32) -> f32 {
    let t = grow();
    x * t[0]
}

fn grow() -> Vec<f32> {
    let mut v = Vec::new();
    v.push(0.5);
    v
}
