//! R7 fixture: a wire enum with one fully covered variant (`Ping`), one
//! missing only round-trip evidence (`Fetch`), one missing the decode
//! path (`Stop`), and one missing the encode path (`Nack`). The encode
//! side names its variants one hop down (`tag`) to exercise reachability.

pub enum Cmd {
    Ping,
    Fetch,
    Stop,
    Nack,
}

pub fn encode_cmd(c: &Cmd, out: &mut Vec<u8>) {
    out.push(tag(c));
}

fn tag(c: &Cmd) -> u8 {
    match c {
        Cmd::Ping => 1,
        Cmd::Fetch => 2,
        Cmd::Stop => 3,
        _ => 0,
    }
}

pub fn decode_cmd(b: u8) -> Option<Cmd> {
    match b {
        1 => Some(Cmd::Ping),
        2 => Some(Cmd::Fetch),
        4 => Some(Cmd::Nack),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_round_trips() {
        let mut b = Vec::new();
        encode_cmd(&Cmd::Ping, &mut b);
        assert!(matches!(decode_cmd(b[0]), Some(Cmd::Ping)));
    }
}
