//! Transitive R3 fixture (root half): a scheduler in `crates/sim/src/` —
//! deterministic scope — whose own body is clean but which calls into a
//! helper crate that consults an unseeded RNG.

use sonic_dsp::helper_fixture::jitter;

pub fn schedule(slots: &mut [u64]) {
    for s in slots.iter_mut() {
        *s = jitter(*s);
    }
}
