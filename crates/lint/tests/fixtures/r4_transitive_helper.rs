//! Transitive R4 fixture (helper half): outside the panic-free scope, so
//! only the call graph connects its `.unwrap()` back to the decode chain.

pub fn pick(x: &[u8]) -> u8 {
    head(x)
}

fn head(x: &[u8]) -> u8 {
    *x.first().unwrap()
}
