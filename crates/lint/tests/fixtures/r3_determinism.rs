// Fixture: R3 determinism violations. Fed under a virtual
// `crates/sim/src/` path so the deterministic-scope rules arm.

use std::collections::HashMap; // line 4: HashMap import
use std::time::{Instant, SystemTime}; // line 5: SystemTime import

pub fn sample_latency(events: &HashMap<u64, f64>) -> f64 {
    // line 7: HashMap in a fn signature
    let t0 = Instant::now(); // line 9: wall-clock read
    let _stamp = SystemTime::now(); // line 10: wall-clock read
    let mut rng = thread_rng(); // line 11: unseeded RNG
    let noise: f64 = rng.gen();
    events.values().sum::<f64>() + t0.elapsed().as_secs_f64() + noise
}
