//! Transitive R4 fixture (root half): decode-chain code in
//! `crates/fec/src/` — panic-free scope — calling a helper crate whose
//! nested helper unwraps.

use sonic_sms::helper_fixture::pick;

pub fn decode_page(x: &[u8]) -> u8 {
    pick(x)
}
