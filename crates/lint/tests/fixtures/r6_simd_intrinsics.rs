// Fixture: R6 on `std::arch` SIMD intrinsics. Runtime-dispatched kernels
// must tag every `unsafe` token — the `#[target_feature]` fn decl AND the
// intrinsic block — with a `// SAFETY:` line, like `sonic-dsp::simd` does.

#[target_feature(enable = "avx2")]
unsafe fn sum8_avx2(x: &[f32; 8]) -> f32 {
    use std::arch::x86_64::{_mm256_loadu_ps, _mm256_storeu_ps};
    let mut out = [0.0f32; 8];
    unsafe {
        let v = _mm256_loadu_ps(x.as_ptr());
        _mm256_storeu_ps(out.as_mut_ptr(), v);
    }
    out.iter().sum()
}

// SAFETY: `unsafe fn` solely for `target_feature`; callers check AVX2 first.
#[target_feature(enable = "avx2")]
unsafe fn scale8_avx2(x: &mut [f32; 8]) {
    use std::arch::x86_64::{_mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps};
    // SAFETY: `x` is exactly 8 floats; loadu/storeu require no alignment.
    unsafe {
        let v = _mm256_loadu_ps(x.as_ptr());
        _mm256_storeu_ps(x.as_mut_ptr(), _mm256_mul_ps(v, _mm256_set1_ps(0.5)));
    }
}
