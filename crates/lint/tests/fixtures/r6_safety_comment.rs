// Fixture: R6 SAFETY-comment violations.

pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p } // line 4: unsafe without SAFETY comment
}

pub unsafe fn raw_len(p: *const u8, n: usize) -> usize {
    // line 7: unsafe fn without SAFETY comment
    let _ = (p, n);
    n
}

pub fn read_checked(p: *const u8) -> u8 {
    // SAFETY: caller contract guarantees `p` is valid for one byte.
    unsafe { *p } // covered by the SAFETY line above
}
