// Fixture: R5 unit-hygiene violations — magic rate/frequency literals
// outside named constants.

pub const COMPOSITE_RATE: f64 = 228_000.0; // allowed: const definition

pub fn design_filter() -> (f64, f64, f64) {
    let fs = 228_000.0; // line 7: magic composite rate
    let pilot = 19_000.0; // line 8: magic pilot frequency
    let audio = 44_100; // line 9: magic audio rate (integer form)
    (fs, pilot, audio as f64)
}

pub fn rds_bit_period() -> f64 {
    1.0 / 1_187.5 // line 14: magic RDS bit rate
}
