// Cluster-shaped R4 fixture: a coordinator fold path that panics on
// malformed peer responses instead of degrading gracefully.

pub fn fold_response(sites: &[u32], wire: &[u8]) -> u32 {
    let site = sites.first().unwrap(); // line 5: .unwrap on peer state
    if wire.is_empty() {
        panic!("empty response from site {site}"); // line 7: panic! in fold
    }
    let tag = wire.get(0).expect("response tag"); // line 9: .expect on wire bytes
    match tag {
        0 => unreachable!("reserved tag"), // line 11: unreachable!
        t => u32::from(*t),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
