//! R8 fixture: the three flagged shapes (a `.len()` chain, a declared-wide
//! identifier, an oversized literal), the `// lint: checked-cast` escape
//! hatch, and the silent proofs (in-range mask/modulo, fitting literal).

pub fn pack(len_hint: usize, seq: u64, out: &mut Vec<u8>) {
    let lo = (seq & 0xFF) as u8;
    let id = (len_hint % 256) as u8;
    let ok = 42 as u8;
    out.push(lo);
    out.push(id);
    out.push(ok);
    out.extend_from_slice(&(out.len() as u32).to_be_bytes());
    let s = seq as u32;
    out.extend_from_slice(&s.to_be_bytes());
    // lint: checked-cast — fixture: sequence tags wrap by design
    let t = seq as u16;
    out.extend_from_slice(&t.to_be_bytes());
    let big = 300 as u16;
    out.extend_from_slice(&big.to_be_bytes());
    let bad = 300 as u8;
    out.push(bad);
}
