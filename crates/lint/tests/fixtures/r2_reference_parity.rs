// Fixture: R2 reference-parity violations. Two fast/reference twins, no
// test file ever names the pair together.

pub fn equalize(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v *= 2.0;
    }
}

pub fn equalize_reference(x: &mut [f32]) {
    // line 10: twin of `equalize`, never tested against it
    for v in x.iter_mut() {
        *v += *v;
    }
}

pub fn window(x: &[f32]) -> f32 {
    x.iter().sum()
}

pub fn window_reference(x: &[f32]) -> f32 {
    // line 21: twin of `window`, never tested against it
    let mut acc = 0.0;
    for v in x {
        acc += v;
    }
    acc
}
