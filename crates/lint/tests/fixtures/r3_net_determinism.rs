// Transport-shaped R3 fixture: a fault-injecting link that leaks hasher
// order and wall clocks into chunk fates that must replay byte-identically
use std::collections::HashMap;
use std::time::SystemTime;

pub struct BadLink {
    inflight: HashMap<u64, Vec<u8>>,
}

impl BadLink {
    pub fn send(&mut self, bytes: &[u8]) -> u64 {
        let t0 = std::time::Instant::now();
        let stamp = SystemTime::now();
        let _ = stamp;
        let roll: f64 = rand::thread_rng().gen();
        let seq = self.inflight.len() as u64;
        self.inflight.insert(seq, bytes.to_vec());
        t0.elapsed().as_nanos() as u64 ^ roll.to_bits() ^ seq
    }
}
