// Scenario-engine-shaped R3 fixture: a population evaluator that leaks
// hasher order, wall clocks and unseeded randomness into aggregates that
// must be byte-identical for the same seed at any worker count.
use std::collections::{HashMap, HashSet};

pub struct BadEngine {
    band_counts: HashMap<u8, u64>,
    seen: HashSet<u32>,
}

impl BadEngine {
    pub fn run_hour(&mut self, listeners: &[u32]) -> u64 {
        let t0 = std::time::Instant::now();
        for &l in listeners {
            if self.seen.insert(l) {
                let jitter: u64 = rand::thread_rng().gen();
                *self.band_counts.entry((jitter % 100) as u8).or_insert(0) += 1;
            }
        }
        let stamp = std::time::SystemTime::now();
        let _ = stamp;
        t0.elapsed().as_micros() as u64
    }
}
