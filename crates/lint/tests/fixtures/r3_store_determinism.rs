// Store-shaped R3 fixture: an index-log replay that leaks hasher order
// and wall clocks into state that must be byte-identical across same-seed
use std::collections::HashMap;
use std::time::SystemTime;

pub struct BadStore {
    blobs: HashMap<u64, (u64, u64)>,
}

impl BadStore {
    pub fn rebuild(&mut self, records: &[[u8; 69]]) -> u64 {
        let t0 = std::time::Instant::now();
        for _rec in records {
            let stamp = SystemTime::now();
            let _ = stamp;
        }
        let jitter: u64 = rand::thread_rng().gen();
        t0.elapsed().as_nanos() as u64 ^ jitter
    }
}
