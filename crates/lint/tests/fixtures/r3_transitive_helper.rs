//! Transitive R3 fixture (helper half): lives outside the deterministic
//! scope, so the lexical rule never flags it — only the call graph does.

pub fn jitter(x: u64) -> u64 {
    let r: u64 = rand::thread_rng().gen();
    x ^ r
}
