// Fixture: R4 panic-freedom violations. Fed under a virtual decode-chain
// path (`crates/fec/src/`).

pub fn decode_header(bytes: &[u8]) -> u32 {
    let first = bytes.first().unwrap(); // line 5: .unwrap in decode chain
    if *first > 0x7f {
        panic!("bad header byte"); // line 7: panic! in decode chain
    }
    let len: u32 = (*bytes.get(1).expect("length byte")).into(); // line 9: .expect
    match len {
        0 => unreachable!("zero-length frame"), // line 11: unreachable!
        n => n,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
