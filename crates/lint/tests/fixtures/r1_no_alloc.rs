// Fixture: R1 no-alloc violations. Fed to the linter under a virtual
// `crates/*/src/` path by tests/fixtures.rs — never compiled.

pub fn render_into(out: &mut Vec<u8>) {
    let scratch = Vec::new(); // line 5: Vec::new in a `_into` fn
    let tmp = vec![0u8; 16]; // line 6: vec! in a `_into` fn
    out.extend(scratch.iter().chain(tmp.iter()));
}

// lint: no-alloc
pub fn hot_mix(buf: &mut [f32], gain: f32) -> String {
    let copies: Vec<f32> = buf.iter().map(|x| x * gain).collect(); // line 12: .collect
    format!("{}", copies.len()) // line 13: format!
}

pub fn cold_path() -> Vec<u8> {
    // Not a hot path: allocation is fine here.
    let mut v = Vec::new();
    v.push(1);
    v
}
