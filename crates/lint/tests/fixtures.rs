//! Fixture-driven self-tests: every rule must produce its exact
//! diagnostics (rule id + line) on the known-bad corpus under
//! `tests/fixtures/`, and stay quiet on the known-good parts.
//!
//! Fixture files are fed to the linter under *virtual* workspace paths so
//! the path-scoped rules (R3 determinism, R4 panic-free, R5 unit-hygiene)
//! arm exactly as they would in the real tree. The fixtures directory is
//! excluded from the workspace walker, so none of this counts as a real
//! finding.

use sonic_lint::{lint_sources, Rule, SourceFile};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// (rule, line, key) triples for every diagnostic of one run.
fn triples(virtual_path: &str, name: &str) -> Vec<(Rule, u32, String)> {
    let src = SourceFile {
        path: virtual_path.to_string(),
        text: fixture(name),
    };
    lint_sources(&[src])
        .into_iter()
        .map(|f| (f.rule, f.line, f.key))
        .collect()
}

#[test]
fn r1_no_alloc_exact_diagnostics() {
    let got = triples("crates/dsp/src/fixture.rs", "r1_no_alloc.rs");
    let want = vec![
        (Rule::NoAlloc, 5, "Vec::new".to_string()),
        (Rule::NoAlloc, 6, "vec!".to_string()),
        (Rule::NoAlloc, 7, ".extend".to_string()),
        (Rule::NoAlloc, 12, ".collect".to_string()),
        (Rule::NoAlloc, 13, "format!".to_string()),
    ];
    assert_eq!(got, want);
}

#[test]
fn r2_reference_parity_exact_diagnostics() {
    let got = triples("crates/modem/src/fixture.rs", "r2_reference_parity.rs");
    let want = vec![
        (Rule::ReferenceParity, 10, "equalize".to_string()),
        (Rule::ReferenceParity, 21, "window".to_string()),
    ];
    assert_eq!(got, want);
}

#[test]
fn r2_parity_satisfied_by_joint_test_file() {
    let lib = SourceFile {
        path: "crates/modem/src/fixture.rs".to_string(),
        text: fixture("r2_reference_parity.rs"),
    };
    let tests = SourceFile {
        path: "crates/modem/tests/parity.rs".to_string(),
        text: "#[test]\nfn twins() {\n  equalize(&mut []); equalize_reference(&mut []);\n  assert_eq!(window(&[]), window_reference(&[]));\n}\n"
            .to_string(),
    };
    assert!(lint_sources(&[lib, tests]).is_empty());
}

#[test]
fn r3_determinism_exact_diagnostics() {
    let got = triples("crates/sim/src/fixture.rs", "r3_determinism.rs");
    let want = vec![
        (Rule::Determinism, 4, "HashMap".to_string()),
        (Rule::Determinism, 5, "SystemTime".to_string()),
        (Rule::Determinism, 7, "HashMap".to_string()),
        (Rule::Determinism, 9, "Instant::now".to_string()),
        (Rule::Determinism, 10, "SystemTime".to_string()),
        (Rule::Determinism, 11, "thread_rng".to_string()),
    ];
    assert_eq!(got, want);
}

#[test]
fn r3_covers_tiered_store_module() {
    // The disk artifact store lives under `crates/core/src/server/` and is
    // therefore in R3's deterministic scope: same-seed runs must leave
    // byte-identical on-disk state, so hasher order and wall clocks are
    // banned from it. A store-shaped fixture must light up line by line…
    let got = triples("crates/core/src/server/store.rs", "r3_store_determinism.rs");
    let want = vec![
        (Rule::Determinism, 3, "HashMap".to_string()),
        (Rule::Determinism, 4, "SystemTime".to_string()),
        (Rule::Determinism, 7, "HashMap".to_string()),
        (Rule::Determinism, 12, "Instant::now".to_string()),
        (Rule::Determinism, 14, "SystemTime".to_string()),
        (Rule::Determinism, 17, "thread_rng".to_string()),
    ];
    assert_eq!(got, want);

    // …and the real store module must stay silent under the same rule.
    let real = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../core/src/server/store.rs");
    let src = SourceFile {
        path: "crates/core/src/server/store.rs".to_string(),
        text: std::fs::read_to_string(&real)
            .unwrap_or_else(|e| panic!("store module unreadable: {e}")),
    };
    let findings = lint_sources(&[src]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r3_covers_scenario_and_terrain_modules() {
    // The country-scale scenario engine and its terrain live under
    // `crates/sim/src/` and are therefore in R3's deterministic scope:
    // same-seed runs must render byte-identical reports at any worker
    // count, so hash-ordered containers, wall clocks and unseeded RNGs
    // are banned. An engine-shaped fixture must light up line by line
    // under both virtual paths…
    let want = vec![
        (Rule::Determinism, 4, "HashMap".to_string()),
        (Rule::Determinism, 4, "HashSet".to_string()),
        (Rule::Determinism, 7, "HashMap".to_string()),
        (Rule::Determinism, 8, "HashSet".to_string()),
        (Rule::Determinism, 13, "Instant::now".to_string()),
        (Rule::Determinism, 16, "thread_rng".to_string()),
        (Rule::Determinism, 20, "SystemTime".to_string()),
    ];
    let engine = triples(
        "crates/sim/src/scenario/engine.rs",
        "r3_scenario_determinism.rs",
    );
    assert_eq!(engine, want);
    let terrain = triples("crates/sim/src/terrain.rs", "r3_scenario_determinism.rs");
    assert_eq!(terrain, want);

    // …and the real modules must stay silent under the same rule.
    for rel in [
        "src/scenario/engine.rs",
        "src/scenario/population.rs",
        "src/scenario/aggregate.rs",
        "src/scenario/mod.rs",
        "src/terrain.rs",
    ] {
        let real = Path::new(env!("CARGO_MANIFEST_DIR")).join("../sim").join(rel);
        let src = SourceFile {
            path: format!("crates/sim/{rel}"),
            text: std::fs::read_to_string(&real)
                .unwrap_or_else(|e| panic!("{rel} unreadable: {e}")),
        };
        let findings = lint_sources(&[src]);
        assert!(findings.is_empty(), "{rel}: {findings:?}");
    }
}

#[test]
fn r3_out_of_scope_is_silent() {
    // Same nondeterministic code outside sim/faults/server: not our rule.
    let got = triples("crates/pagegen/src/fixture.rs", "r3_determinism.rs");
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn r3_covers_framed_transport_modules() {
    // The framed transport and RPC layer live under `crates/core/src/net/`
    // and are in R3's deterministic scope: link fates, retry timers and
    // chunk arrival order must be pure functions of (seed, sim-time) so
    // same-seed chaos runs replay byte-identically. A transport-shaped
    // fixture must light up line by line under both virtual paths…
    let want = vec![
        (Rule::Determinism, 3, "HashMap".to_string()),
        (Rule::Determinism, 4, "SystemTime".to_string()),
        (Rule::Determinism, 7, "HashMap".to_string()),
        (Rule::Determinism, 12, "Instant::now".to_string()),
        (Rule::Determinism, 13, "SystemTime".to_string()),
        (Rule::Determinism, 15, "thread_rng".to_string()),
    ];
    let transport = triples("crates/core/src/net/transport.rs", "r3_net_determinism.rs");
    assert_eq!(transport, want);
    let rpc = triples("crates/core/src/net/rpc.rs", "r3_net_determinism.rs");
    assert_eq!(rpc, want);

    // …and the real net modules must stay silent under the same rule.
    for rel in [
        "src/net/codec.rs",
        "src/net/mod.rs",
        "src/net/proto.rs",
        "src/net/rpc.rs",
        "src/net/transport.rs",
    ] {
        let real = Path::new(env!("CARGO_MANIFEST_DIR")).join("../core").join(rel);
        let src = SourceFile {
            path: format!("crates/core/{rel}"),
            text: std::fs::read_to_string(&real)
                .unwrap_or_else(|e| panic!("{rel} unreadable: {e}")),
        };
        let findings = lint_sources(&[src]);
        assert!(findings.is_empty(), "{rel}: {findings:?}");
    }
}

#[test]
fn r4_panic_free_exact_diagnostics() {
    let got = triples("crates/fec/src/fixture.rs", "r4_panic_free.rs");
    let want = vec![
        (Rule::PanicFree, 5, ".unwrap".to_string()),
        (Rule::PanicFree, 7, "panic!".to_string()),
        (Rule::PanicFree, 9, ".expect".to_string()),
        (Rule::PanicFree, 11, "unreachable!".to_string()),
    ];
    assert_eq!(got, want);
}

#[test]
fn r4_decode_chain_scope_includes_reassembly_only_for_core() {
    let src = fixture("r4_panic_free.rs");
    let in_scope = lint_sources(&[SourceFile {
        path: "crates/core/src/reassembly.rs".to_string(),
        text: src.clone(),
    }]);
    assert_eq!(in_scope.len(), 4);
    let out_of_scope = lint_sources(&[SourceFile {
        path: "crates/core/src/server/mod.rs".to_string(),
        text: src,
    }]);
    assert!(out_of_scope.iter().all(|f| f.rule != Rule::PanicFree));
}

#[test]
fn r4_covers_net_and_cluster_modules() {
    // The wire codec parses attacker-shaped bytes and the coordinator folds
    // responses from crashed sites: both must degrade (resync, mark the
    // site Down) instead of panicking, so `crates/core/src/net/` and the
    // cluster coordinator are in R4's panic-free scope. A fold-shaped
    // fixture must light up line by line under both virtual paths…
    let want = vec![
        (Rule::PanicFree, 5, ".unwrap".to_string()),
        (Rule::PanicFree, 7, "panic!".to_string()),
        (Rule::PanicFree, 9, ".expect".to_string()),
        (Rule::PanicFree, 11, "unreachable!".to_string()),
    ];
    let codec = triples("crates/core/src/net/codec.rs", "r4_cluster_panic_free.rs");
    assert_eq!(codec, want);
    let cluster = triples(
        "crates/core/src/server/cluster.rs",
        "r4_cluster_panic_free.rs",
    );
    assert_eq!(cluster, want);

    // Only the coordinator is in R4 scope under `server/`; its siblings
    // answer to R3 alone.
    let sibling = lint_sources(&[SourceFile {
        path: "crates/core/src/server/cache.rs".to_string(),
        text: fixture("r4_cluster_panic_free.rs"),
    }]);
    assert!(sibling.iter().all(|f| f.rule != Rule::PanicFree));

    // …and the real coordinator must stay silent under the same rule.
    let real = Path::new(env!("CARGO_MANIFEST_DIR")).join("../core/src/server/cluster.rs");
    let src = SourceFile {
        path: "crates/core/src/server/cluster.rs".to_string(),
        text: std::fs::read_to_string(&real)
            .unwrap_or_else(|e| panic!("cluster module unreadable: {e}")),
    };
    let findings = lint_sources(&[src]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r5_unit_hygiene_exact_diagnostics() {
    let got = triples("crates/radio/src/fixture.rs", "r5_unit_hygiene.rs");
    let want = vec![
        (Rule::UnitHygiene, 7, "228000".to_string()),
        (Rule::UnitHygiene, 8, "19000".to_string()),
        (Rule::UnitHygiene, 9, "44100".to_string()),
        (Rule::UnitHygiene, 14, "1187.5".to_string()),
    ];
    assert_eq!(got, want);
}

#[test]
fn r6_safety_comment_exact_diagnostics() {
    let got = triples("crates/dsp/src/fixture.rs", "r6_safety_comment.rs");
    let want = vec![
        (Rule::SafetyComment, 4, "unsafe".to_string()),
        (Rule::SafetyComment, 7, "unsafe".to_string()),
    ];
    assert_eq!(got, want);
}

#[test]
fn r6_flags_std_arch_simd_kernels() {
    // The shape of the real `sonic-dsp::simd` kernels: `#[target_feature]`
    // unsafe fns wrapping `std::arch` intrinsics. Both the bare decl (line
    // 6) and the bare intrinsic block (line 9) must be flagged; the
    // SAFETY-tagged twin below them must stay quiet.
    let got = triples("crates/dsp/src/fixture.rs", "r6_simd_intrinsics.rs");
    let want = vec![
        (Rule::SafetyComment, 6, "unsafe".to_string()),
        (Rule::SafetyComment, 9, "unsafe".to_string()),
    ];
    assert_eq!(got, want);
}

#[test]
fn every_rule_has_at_least_two_fixture_diagnostics() {
    // The acceptance bar: ≥ 2 distinct diagnostics per rule across the
    // fixture corpus.
    let all = [
        triples("crates/dsp/src/fixture.rs", "r1_no_alloc.rs"),
        triples("crates/modem/src/fixture.rs", "r2_reference_parity.rs"),
        triples("crates/sim/src/fixture.rs", "r3_determinism.rs"),
        triples("crates/fec/src/fixture.rs", "r4_panic_free.rs"),
        triples("crates/radio/src/fixture.rs", "r5_unit_hygiene.rs"),
        triples("crates/dsp/src/fixture.rs", "r6_safety_comment.rs"),
        triples("crates/core/src/net/proto.rs", "r7_wire_totality.rs"),
        triples("crates/core/src/net/fixture.rs", "r8_lossy_cast.rs"),
    ];
    for (rule, batch) in [
        Rule::NoAlloc,
        Rule::ReferenceParity,
        Rule::Determinism,
        Rule::PanicFree,
        Rule::UnitHygiene,
        Rule::SafetyComment,
        Rule::WireTotality,
        Rule::LossyCast,
    ]
    .iter()
    .zip(&all)
    {
        let n = batch.iter().filter(|(r, _, _)| r == rule).count();
        assert!(n >= 2, "rule {:?} has {n} fixture diagnostics, need ≥ 2", rule);
    }
}

/// Full findings for a set of (virtual path, fixture) pairs — the
/// transitive fixtures need the chain, not just (rule, line, key).
fn full(sources: &[(&str, &str)]) -> Vec<sonic_lint::Finding> {
    let srcs: Vec<SourceFile> = sources
        .iter()
        .map(|(path, name)| SourceFile {
            path: path.to_string(),
            text: fixture(name),
        })
        .collect();
    lint_sources(&srcs)
}

#[test]
fn r1_transitive_exact_chain() {
    let got = full(&[("crates/dsp/src/fixture.rs", "r1_transitive.rs")]);
    assert_eq!(got.len(), 1, "{got:?}");
    let f = &got[0];
    assert_eq!(f.rule, Rule::NoAlloc);
    assert_eq!(f.line, 7, "root call-site line");
    assert_eq!(f.chain, ["mix_into", "shape", "scale", "grow", "Vec::new"]);
    assert_eq!(f.key, "mix_into→shape→scale→grow→Vec::new");
    // `vetted_into` makes the identical call under an edge-breaking allow:
    // no second finding may exist for it.
    assert!(!got.iter().any(|f| f.key.starts_with("vetted_into")));
}

#[test]
fn r3_transitive_chain_crosses_crates() {
    let got = full(&[
        ("crates/sim/src/fixture.rs", "r3_transitive_root.rs"),
        ("crates/dsp/src/helper_fixture.rs", "r3_transitive_helper.rs"),
    ]);
    assert_eq!(got.len(), 1, "{got:?}");
    let f = &got[0];
    assert_eq!(f.rule, Rule::Determinism);
    assert_eq!(f.file, "crates/sim/src/fixture.rs");
    assert_eq!(f.line, 9);
    assert_eq!(f.chain, ["schedule", "jitter", "thread_rng"]);
    // The helper itself is out of lexical scope: no finding may blame it
    // directly.
    assert!(got.iter().all(|f| f.file != "crates/dsp/src/helper_fixture.rs"));
}

#[test]
fn r4_transitive_chain_reaches_nested_helper() {
    let got = full(&[
        ("crates/fec/src/fixture.rs", "r4_transitive_root.rs"),
        ("crates/sms/src/helper_fixture.rs", "r4_transitive_helper.rs"),
    ]);
    assert_eq!(got.len(), 1, "{got:?}");
    let f = &got[0];
    assert_eq!(f.rule, Rule::PanicFree);
    assert_eq!(f.file, "crates/fec/src/fixture.rs");
    assert_eq!(f.line, 8);
    assert_eq!(f.chain, ["decode_page", "pick", "head", ".unwrap"]);
}

#[test]
fn r7_wire_totality_exact_diagnostics() {
    // `Ping` is covered on all three axes; `Fetch` lacks round-trip
    // evidence; `Stop` lacks the decode path; `Nack` the encode path.
    let got = triples("crates/core/src/net/proto.rs", "r7_wire_totality.rs");
    let want = vec![
        (Rule::WireTotality, 8, "Cmd::Fetch:round-trip".to_string()),
        (Rule::WireTotality, 9, "Cmd::Stop:decode".to_string()),
        (Rule::WireTotality, 9, "Cmd::Stop:round-trip".to_string()),
        (Rule::WireTotality, 10, "Cmd::Nack:encode".to_string()),
        (Rule::WireTotality, 10, "Cmd::Nack:round-trip".to_string()),
    ];
    assert_eq!(got, want);
}

#[test]
fn r7_out_of_scope_enum_is_silent() {
    // The same enum anywhere but `net/proto.rs` is not a wire type.
    let got = triples("crates/core/src/page.rs", "r7_wire_totality.rs");
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn r8_lossy_cast_exact_diagnostics() {
    // Flagged: the `.len()` chain, the declared-`u64` identifier, the
    // oversized literal. Silent: mask/modulo proofs, fitting literals and
    // the `// lint: checked-cast` escape hatch.
    let got = triples("crates/core/src/net/fixture.rs", "r8_lossy_cast.rs");
    let want = vec![
        (Rule::LossyCast, 12, "usize as u32".to_string()),
        (Rule::LossyCast, 13, "u64 as u32".to_string()),
        (Rule::LossyCast, 20, "literal as u8".to_string()),
    ];
    assert_eq!(got, want);
}

#[test]
fn r8_out_of_scope_is_silent() {
    let got = triples("crates/sim/src/fixture.rs", "r8_lossy_cast.rs");
    assert!(got.iter().all(|(r, _, _)| *r != Rule::LossyCast), "{got:?}");
}

#[test]
fn r8_real_wire_and_fec_modules_are_silent() {
    // The annotated real modules must stay quiet under R8.
    for (dir, rel) in [
        ("../core", "src/net/codec.rs"),
        ("../core", "src/net/proto.rs"),
        ("../fec", "src/viterbi.rs"),
    ] {
        let real = Path::new(env!("CARGO_MANIFEST_DIR")).join(dir).join(rel);
        let src = SourceFile {
            path: format!("crates/{}/{rel}", dir.trim_start_matches("../")),
            text: std::fs::read_to_string(&real)
                .unwrap_or_else(|e| panic!("{rel} unreadable: {e}")),
        };
        let findings = lint_sources(&[src]);
        assert!(
            findings.iter().all(|f| f.rule != Rule::LossyCast),
            "{rel}: {findings:?}"
        );
    }
}

#[test]
fn allow_directive_suppresses_fixture_finding() {
    let src = "pub fn f() -> f64 {\n    // lint: allow(unit-hygiene) — justified in this fixture\n    228_000.0\n}\n";
    let got = lint_sources(&[SourceFile {
        path: "crates/radio/src/fixture.rs".to_string(),
        text: src.to_string(),
    }]);
    assert!(got.is_empty(), "{got:?}");
}
