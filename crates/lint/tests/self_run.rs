//! Workspace self-run: linting the real tree must produce zero findings
//! beyond the checked-in baseline. This is the same gate CI runs via
//! `cargo run -p sonic-lint -- --workspace --deny-new`, wired into
//! `cargo test` so a violation fails fast and locally.

use sonic_lint::{lint_workspace, Baseline};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_has_zero_non_baselined_findings() {
    let root = workspace_root();
    let findings = lint_workspace(&root).expect("lint workspace");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is checked in");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    let cmp = baseline.compare(&findings);
    assert!(
        cmp.new.is_empty(),
        "new lint findings not covered by lint-baseline.json:\n{}",
        cmp.new
            .iter()
            .map(sonic_lint::format_finding)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_only_grandfathers_r1_hot_path_pushes() {
    // The baseline exists to burn down, not to grow: today it covers only
    // the R1 `.push`/`.extend`-into-caller-buffer pattern in streaming
    // `_into` functions whose output length is data-dependent. If this
    // test fails because you added a *new* kind of entry, fix the code
    // instead of re-baselining.
    let root = workspace_root();
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is checked in");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    for (file, rule, key) in baseline.entries.keys() {
        assert_eq!(rule, "R1", "unexpected baselined rule {rule} in {file}");
        assert!(
            key == ".push" || key == ".extend",
            "unexpected baselined key {key} in {file}"
        );
    }
}

#[test]
fn workspace_run_is_deterministic() {
    let root = workspace_root();
    let a = lint_workspace(&root).expect("first run");
    let b = lint_workspace(&root).expect("second run");
    assert_eq!(a, b, "two runs over the same tree must agree exactly");
}
