//! Workspace self-run: linting the real tree must produce zero findings
//! beyond the checked-in baseline. This is the same gate CI runs via
//! `cargo run -p sonic-lint -- --workspace --deny-new`, wired into
//! `cargo test` so a violation fails fast and locally.

use sonic_lint::{lint_workspace, Baseline};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_has_zero_non_baselined_findings() {
    let root = workspace_root();
    let findings = lint_workspace(&root).expect("lint workspace");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is checked in");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    let cmp = baseline.compare(&findings);
    assert!(
        cmp.new.is_empty(),
        "new lint findings not covered by lint-baseline.json:\n{}",
        cmp.new
            .iter()
            .map(sonic_lint::format_finding)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_is_fully_burned_down() {
    // The baseline existed to burn down, not to grow: the grandfathered R1
    // `.push`/`.extend` findings in streaming `_into` functions were all
    // fixed (indexed writes into pre-sized buffers) or, for the two
    // `Fir::push` false positives, suppressed with an inline
    // `// lint: allow(no-alloc)` that documents why. If this test fails
    // because you re-baselined a finding, fix the code instead.
    let root = workspace_root();
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is checked in");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    assert!(
        baseline.entries.is_empty(),
        "lint-baseline.json must stay empty; found {:?}",
        baseline.entries.keys().collect::<Vec<_>>()
    );
}

#[test]
fn workspace_run_is_deterministic() {
    let root = workspace_root();
    let a = lint_workspace(&root).expect("first run");
    let b = lint_workspace(&root).expect("second run");
    assert_eq!(a, b, "two runs over the same tree must agree exactly");
}

#[test]
fn real_wire_protocol_is_total() {
    // R7 self-check: every variant of the real `net::proto` enums must sit
    // on both the encode and decode paths and be named by a round-trip
    // test. This is the CI step that keeps a newly added wire message from
    // shipping half-implemented.
    let root = workspace_root();
    let findings = lint_workspace(&root).expect("lint workspace");
    let r7: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == sonic_lint::Rule::WireTotality)
        .collect();
    assert!(
        r7.is_empty(),
        "wire-protocol totality violations:\n{}",
        r7.iter()
            .map(|f| sonic_lint::format_finding(f))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn call_graph_resolves_the_workspace() {
    // The interprocedural pass is only as good as its graph: it must see a
    // four-digit node count and resolve a substantial share of call sites,
    // or the transitive rules are silently vacuous.
    let root = workspace_root();
    let g = sonic_lint::graph_workspace(&root).expect("graph workspace");
    assert!(g.stats.nodes > 500, "only {} nodes", g.stats.nodes);
    assert!(g.stats.edges > 1000, "only {} edges", g.stats.edges);
    assert!(
        g.stats.resolved_calls > g.stats.call_sites / 4,
        "resolved {} of {} call sites",
        g.stats.resolved_calls,
        g.stats.call_sites
    );
}
