//! Baseline file support: pre-existing violations burn down instead of
//! blocking.
//!
//! `lint-baseline.json` records, per `(file, rule, key)` triple, how many
//! findings are grandfathered. `--deny-new` fails only when the current
//! count for a triple *exceeds* its baselined count; counts below baseline
//! are the burn-down succeeding (re-run `--write-baseline` to ratchet).
//!
//! The key is a stable token (`.unwrap`, `HashMap`, `228000`, a fn name…)
//! rather than a line number, so ordinary edits that shift lines do not
//! produce spurious "new" findings.
//!
//! JSON reading/writing is hand-rolled (the workspace builds offline with
//! no serde); the subset understood is exactly what `write` emits plus
//! arbitrary whitespace.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Baseline counts keyed by `(file, rule id, key)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Grandfathered finding count per triple.
    pub entries: BTreeMap<(String, String, String), u32>,
}

/// Result of comparing current findings against a baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Findings beyond the baselined count — these fail `--deny-new`.
    pub new: Vec<Finding>,
    /// Findings covered by the baseline.
    pub baselined: Vec<Finding>,
    /// Triples whose baseline count exceeds current findings (burned down);
    /// `(file, rule, key, excess)`.
    pub stale: Vec<(String, String, String, u32)>,
}

impl Baseline {
    /// Builds a baseline that exactly covers `findings`.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries: BTreeMap<(String, String, String), u32> = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.file.clone(), f.rule.id().to_string(), f.key.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Splits `findings` into new vs baselined. Within one triple, the
    /// first `count` findings (by line) are considered baselined.
    pub fn compare(&self, findings: &[Finding]) -> Comparison {
        let mut seen: BTreeMap<(String, String, String), u32> = BTreeMap::new();
        let mut cmp = Comparison::default();
        for f in findings {
            let triple = (f.file.clone(), f.rule.id().to_string(), f.key.clone());
            let quota = self.entries.get(&triple).copied().unwrap_or(0);
            let used = seen.entry(triple).or_insert(0);
            if *used < quota {
                *used += 1;
                cmp.baselined.push(f.clone());
            } else {
                cmp.new.push(f.clone());
            }
        }
        for (triple, quota) in &self.entries {
            let used = seen.get(triple).copied().unwrap_or(0);
            if used < *quota {
                cmp.stale.push((
                    triple.0.clone(),
                    triple.1.clone(),
                    triple.2.clone(),
                    quota - used,
                ));
            }
        }
        cmp
    }

    /// Serializes to the checked-in JSON format (sorted, stable).
    pub fn write(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        let n = self.entries.len();
        for (i, ((file, rule, key), count)) in self.entries.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{ \"file\": {}, \"rule\": {}, \"key\": {}, \"count\": {} }}{}",
                json_str(file),
                json_str(rule),
                json_str(key),
                count,
                if i + 1 < n { "," } else { "" }
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses the JSON format produced by [`Baseline::write`].
    pub fn parse(src: &str) -> Result<Self, String> {
        let value = json::parse(src)?;
        let obj = value.as_object().ok_or("baseline root must be an object")?;
        let mut entries = BTreeMap::new();
        if let Some(list) = obj.get("entries") {
            let arr = list.as_array().ok_or("\"entries\" must be an array")?;
            for item in arr {
                let e = item.as_object().ok_or("entry must be an object")?;
                let field = |k: &str| -> Result<String, String> {
                    e.get(k)
                        .and_then(|v| v.as_str())
                        .map(str::to_string)
                        .ok_or_else(|| format!("entry missing string field {k:?}"))
                };
                let count = e
                    .get("count")
                    .and_then(|v| v.as_f64())
                    .ok_or("entry missing numeric field \"count\"")? as u32;
                *entries
                    .entry((field("file")?, field("rule")?, field("key")?))
                    .or_insert(0) += count;
            }
        }
        Ok(Baseline { entries })
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value + recursive-descent parser (objects, arrays, strings,
/// numbers, booleans, null). Enough for the baseline file and nothing more.
pub mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (kept as f64 — counts are small).
        Num(f64),
        /// String with escapes resolved.
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object (sorted keys).
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        /// Object accessor.
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }
        /// Array accessor.
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        /// String accessor.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        /// Number accessor.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    /// Parses one JSON document; trailing garbage is an error.
    pub fn parse(src: &str) -> Result<Value, String> {
        let chars: Vec<char> = src.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing characters at offset {}", p.pos));
        }
        Ok(v)
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn skip_ws(&mut self) {
            while self
                .chars
                .get(self.pos)
                .map(|c| c.is_whitespace())
                .unwrap_or(false)
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn expect(&mut self, c: char) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {c:?} at offset {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some('{') => self.object(),
                Some('[') => self.array(),
                Some('"') => Ok(Value::Str(self.string()?)),
                Some('t') => self.keyword("true", Value::Bool(true)),
                Some('f') => self.keyword("false", Value::Bool(false)),
                Some('n') => self.keyword("null", Value::Null),
                Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
                other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
            }
        }

        fn keyword(&mut self, word: &str, v: Value) -> Result<Value, String> {
            for c in word.chars() {
                self.expect(c)?;
            }
            Ok(v)
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect('{')?;
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some('}') {
                self.pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(':')?;
                let val = self.value()?;
                map.insert(key, val);
                self.skip_ws();
                match self.peek() {
                    Some(',') => {
                        self.pos += 1;
                    }
                    Some('}') => {
                        self.pos += 1;
                        break;
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
            Ok(Value::Obj(map))
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect('[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(',') => {
                        self.pos += 1;
                    }
                    Some(']') => {
                        self.pos += 1;
                        break;
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
            Ok(Value::Arr(items))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect('"')?;
            let mut out = String::new();
            loop {
                let Some(c) = self.peek() else {
                    return Err("unterminated string".into());
                };
                self.pos += 1;
                match c {
                    '"' => break,
                    '\\' => {
                        let Some(esc) = self.peek() else {
                            return Err("unterminated escape".into());
                        };
                        self.pos += 1;
                        match esc {
                            '"' => out.push('"'),
                            '\\' => out.push('\\'),
                            '/' => out.push('/'),
                            'n' => out.push('\n'),
                            'r' => out.push('\r'),
                            't' => out.push('\t'),
                            'b' => out.push('\u{8}'),
                            'f' => out.push('\u{c}'),
                            'u' => {
                                let mut code = 0u32;
                                for _ in 0..4 {
                                    let Some(h) = self.peek().and_then(|c| c.to_digit(16)) else {
                                        return Err("bad \\u escape".into());
                                    };
                                    code = code * 16 + h;
                                    self.pos += 1;
                                }
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            other => return Err(format!("bad escape \\{other}")),
                        }
                    }
                    c => out.push(c),
                }
            }
            Ok(out)
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some('-') {
                self.pos += 1;
            }
            while self
                .peek()
                .map(|c| c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-')
                .unwrap_or(false)
            {
                self.pos += 1;
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(file: &str, line: u32, rule: Rule, key: &str) -> Finding {
        Finding {
            file: file.into(),
            line,
            rule,
            key: key.into(),
            message: String::new(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn roundtrip() {
        let findings = vec![
            finding("a.rs", 3, Rule::PanicFree, ".unwrap"),
            finding("a.rs", 9, Rule::PanicFree, ".unwrap"),
            finding("b.rs", 1, Rule::UnitHygiene, "44100"),
        ];
        let base = Baseline::from_findings(&findings);
        let text = base.write();
        let back = Baseline::parse(&text).expect("parse back");
        assert_eq!(base, back);
    }

    #[test]
    fn compare_classifies_new_and_stale() {
        let base = Baseline::from_findings(&[
            finding("a.rs", 3, Rule::PanicFree, ".unwrap"),
            finding("a.rs", 9, Rule::PanicFree, ".unwrap"),
        ]);
        // One unwrap fixed, one HashMap added.
        let now = vec![
            finding("a.rs", 3, Rule::PanicFree, ".unwrap"),
            finding("a.rs", 20, Rule::Determinism, "HashMap"),
        ];
        let cmp = base.compare(&now);
        assert_eq!(cmp.baselined.len(), 1);
        assert_eq!(cmp.new.len(), 1);
        assert_eq!(cmp.new[0].key, "HashMap");
        assert_eq!(cmp.stale.len(), 1);
        assert_eq!(cmp.stale[0].3, 1);
    }

    #[test]
    fn line_drift_does_not_create_new_findings() {
        let base = Baseline::from_findings(&[finding("a.rs", 3, Rule::PanicFree, ".unwrap")]);
        let drifted = vec![finding("a.rs", 300, Rule::PanicFree, ".unwrap")];
        assert!(base.compare(&drifted).new.is_empty());
    }

    #[test]
    fn json_escapes() {
        let v = json::parse(r#"{"a": "x\"y\n", "n": [1, 2.5, -3]}"#).expect("parse");
        let o = v.as_object().expect("obj");
        assert_eq!(o.get("a").and_then(|v| v.as_str()), Some("x\"y\n"));
        assert_eq!(o.get("n").and_then(|v| v.as_array()).map(|a| a.len()), Some(3));
    }
}
