//! Workspace symbol table and call graph.
//!
//! Built from the lexer/scanner output only — no type inference, no
//! rustc. Every non-test `fn` with a body becomes a node; call sites are
//! extracted from body token spans (free calls, `Type::method` /
//! `module::func` qualified calls with turbofish skipping, and `.method()`
//! calls) and resolved against the symbol table by
//! [`crate::resolve`]'s use-aware suffix matching. Trait-method calls are
//! handled conservatively: an ambiguous name resolves to *every*
//! same-named candidate, so transitive rules over-approximate reachability
//! rather than miss a path (false positives carry
//! `// lint: allow(...)` justifications; false negatives would be silent
//! soundness holes).
//!
//! The graph feeds the transitive forms of R1/R3/R4 (see
//! [`crate::rules`]), the R7 wire-totality reachability check, and the
//! `--graph-stats` CLI mode.

use crate::lexer::TokenKind;
use crate::resolve::Resolver;
use crate::scan::ScannedFile;
use std::collections::BTreeMap;

/// One function node: a non-test `fn` definition with a body.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the defining file in the scanned-file slice.
    pub file: usize,
    /// Function name (raw identifiers keep their `r#` prefix).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    /// Module path derived from the file path (`crates/core/src/net/proto.rs`
    /// → `["sonic_core", "net", "proto"]`).
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Subject to R1 (named `*_into` or marked `// lint: no-alloc`).
    pub no_alloc: bool,
    /// Token-index span of the body (exclusive of braces).
    pub body: (usize, usize),
}

impl FnNode {
    /// `owner::name` when owned, else just the name.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// Node/edge/resolution counters for `--graph-stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    /// Function nodes (non-test, with a body).
    pub nodes: usize,
    /// Resolved call edges (one per call site × target).
    pub edges: usize,
    /// Call sites extracted from bodies.
    pub call_sites: usize,
    /// Call sites with ≥ 1 workspace target.
    pub resolved_calls: usize,
    /// Call sites resolving to > 1 target (conservative fan-out).
    pub ambiguous_calls: usize,
    /// Call sites with no workspace target (std / vendored / macro-expanded
    /// — external by construction, not an error).
    pub unresolved_calls: usize,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All nodes, in (file, definition) order.
    pub fns: Vec<FnNode>,
    /// Outgoing edges per node, parallel to `fns`.
    pub edges: Vec<Vec<Edge>>,
    /// Build counters.
    pub stats: GraphStats,
}

impl CallGraph {
    /// Node indices of non-test fns defined in `file` whose name satisfies
    /// `pred`.
    pub fn fns_in_file(
        &self,
        file: usize,
        pred: impl Fn(&FnNode) -> bool,
    ) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && pred(n))
            .map(|(i, _)| i)
            .collect()
    }

    /// Non-comment token indices of `node`'s body, with nested fn bodies
    /// excluded (those are their own nodes) — the same window call
    /// extraction used, re-derived for rule sink scanning.
    pub fn body_tokens(&self, files: &[ScannedFile], node: usize) -> Vec<usize> {
        let n = &self.fns[node];
        let f = &files[n.file];
        let (start, end) = n.body;
        let nested: Vec<(usize, usize)> = self
            .fns
            .iter()
            .filter(|m| m.file == n.file)
            .map(|m| m.body)
            .filter(|&(s, e)| s > start && e <= end && (s, e) != (start, end))
            .collect();
        (start..end.min(f.tokens.len()))
            .filter(|&i| {
                !matches!(
                    f.tokens[i].kind,
                    TokenKind::LineComment | TokenKind::BlockComment
                ) && !nested.iter().any(|&(s, e)| i >= s && i < e)
            })
            .collect()
    }

    /// Forward-reachable node set (including the seeds themselves).
    pub fn reachable_from(&self, seeds: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if s < seen.len() && !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
        while let Some(u) = queue.pop() {
            for e in &self.edges[u] {
                if !seen[e.to] {
                    seen[e.to] = true;
                    queue.push(e.to);
                }
            }
        }
        seen
    }
}

/// Module path for a workspace-relative file path. Crate directories map
/// to their package names (`crates/core` → `sonic_core`); `lib.rs` and
/// `mod.rs` contribute no segment of their own.
pub fn module_path(path: &str) -> Vec<String> {
    let segs: Vec<&str> = path.split('/').collect();
    let mut out = Vec::new();
    let rest: &[&str] = if segs.first() == Some(&"crates") && segs.len() >= 2 {
        out.push(format!("sonic_{}", segs[1].replace('-', "_")));
        &segs[2..]
    } else {
        out.push("sonic".to_string());
        &segs[..]
    };
    for (i, s) in rest.iter().enumerate() {
        if i == 0 && (*s == "src" || *s == "tests" || *s == "examples" || *s == "benches") {
            continue;
        }
        let s = s.strip_suffix(".rs").unwrap_or(s);
        if s == "lib" || s == "mod" || s == "main" {
            continue;
        }
        out.push(s.to_string());
    }
    out
}

/// Rust keywords (and primitive-ish idents) that can precede `(` without
/// being a call. Raw identifiers (`r#type`) never match: the lexer keeps
/// their `r#` prefix exactly so this filter cannot eat them.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else" | "while" | "match" | "for" | "loop" | "return" | "in" | "as"
            | "move" | "let" | "fn" | "pub" | "use" | "impl" | "trait" | "struct"
            | "enum" | "mod" | "where" | "unsafe" | "ref" | "mut" | "break"
            | "continue" | "await" | "dyn" | "box" | "yield" | "static" | "const"
            | "type" | "self" | "super" | "crate" | "true" | "false"
    )
}

/// Builds the workspace call graph from scanned files.
pub fn build(files: &[ScannedFile]) -> CallGraph {
    // ---- nodes ----
    let mut fns: Vec<FnNode> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let module = module_path(&f.path);
        for d in &f.fns {
            let Some(body) = d.body else { continue };
            if d.in_test {
                continue;
            }
            fns.push(FnNode {
                file: fi,
                name: d.name.clone(),
                owner: d.owner.clone(),
                module: module.clone(),
                line: d.line,
                no_alloc: d.no_alloc,
                body,
            });
        }
    }

    // Name → node indices, and nested-span index per file so a parent fn
    // does not claim the call sites of a fn defined inside it.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in fns.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(i);
    }
    let mut spans_per_file: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    for n in &fns {
        spans_per_file.entry(n.file).or_default().push(n.body);
    }

    let resolver = Resolver::new(files, &fns, &by_name);

    // ---- call extraction + resolution ----
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
    let mut stats = GraphStats {
        nodes: fns.len(),
        ..GraphStats::default()
    };

    for (ni, node) in fns.iter().enumerate() {
        let f = &files[node.file];
        let (start, end) = node.body;
        // Non-comment token indices belonging to this fn (nested fn bodies
        // excluded — they are their own nodes).
        let nested: Vec<(usize, usize)> = spans_per_file
            .get(&node.file)
            .map(|spans| {
                spans
                    .iter()
                    .copied()
                    .filter(|&(s, e)| s > start && e <= end && (s, e) != (start, end))
                    .collect()
            })
            .unwrap_or_default();
        let toks: Vec<usize> = (start..end.min(f.tokens.len()))
            .filter(|&i| {
                !matches!(
                    f.tokens[i].kind,
                    TokenKind::LineComment | TokenKind::BlockComment
                ) && !nested.iter().any(|&(s, e)| i >= s && i < e)
            })
            .collect();

        for call in extract_calls(f, &toks) {
            stats.call_sites += 1;
            let targets = resolver.resolve(&call, node);
            match targets.len() {
                0 => stats.unresolved_calls += 1,
                n => {
                    stats.resolved_calls += 1;
                    if n > 1 {
                        stats.ambiguous_calls += 1;
                    }
                    for t in targets {
                        stats.edges += 1;
                        edges[ni].push(Edge {
                            to: t,
                            line: call.line,
                        });
                    }
                }
            }
        }
    }

    CallGraph { fns, edges, stats }
}

/// A syntactic call site before resolution.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments (`["viterbi", "decode_soft"]`, `["demap"]`); for a
    /// method call, the single method name.
    pub path: Vec<String>,
    /// True for `.name(...)` receiver calls.
    pub is_method: bool,
    /// For a method call, the identifier immediately before the `.`
    /// (`self`, a local, a field name); `None` when the receiver is not a
    /// plain identifier.
    pub recv: Option<String>,
    /// 1-based line of the callee token.
    pub line: u32,
}

/// A SCREAMING_SNAKE_CASE identifier — a `static`/`const` in every crate
/// of this workspace. Methods on those receivers are atomics / lazies
/// (`FORCED.load(...)`), never workspace calls.
fn is_screaming_case(s: &str) -> bool {
    s.len() >= 2
        && s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && s.chars().any(|c| c.is_ascii_uppercase())
}

/// Skips a turbofish/generic group starting at `<`; returns the filtered
/// index just past the matching `>`, or `None` if unbalanced within the
/// window (then the candidate is not treated as a call).
fn skip_generics(f: &ScannedFile, toks: &[usize], at: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = at;
    while k < toks.len() {
        let t = &f.tokens[toks[k]];
        match t.text.as_str() {
            "<" if t.kind == TokenKind::Punct => depth += 1,
            ">" if t.kind == TokenKind::Punct => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            "(" | ")" | "{" | "}" | ";" if t.kind == TokenKind::Punct => return None,
            _ => {}
        }
        k += 1;
    }
    None
}

/// Extracts call sites from the filtered token window of one fn body.
pub fn extract_calls(f: &ScannedFile, toks: &[usize]) -> Vec<CallSite> {
    let tok = |k: usize| f.tokens.get(toks.get(k).copied().unwrap_or(usize::MAX));
    let is_p = |k: usize, s: &str| tok(k).map(|t| t.is_punct(s)).unwrap_or(false);
    let is_id = |k: usize| tok(k).map(|t| t.kind == TokenKind::Ident).unwrap_or(false);

    // `let`-bound names shadow workspace fns in call position (closures,
    // fn pointers): `let pack = |b| …; pack(x)` must not resolve to a
    // workspace `pack`.
    let mut shadowed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for k in 0..toks.len() {
        if tok(k).map(|t| t.is_ident("let")).unwrap_or(false) {
            let mut j = k + 1;
            if tok(j).map(|t| t.is_ident("mut")).unwrap_or(false) {
                j += 1;
            }
            if let Some(t) = tok(j).filter(|t| t.kind == TokenKind::Ident) {
                shadowed.insert(t.text.as_str());
            }
        }
    }

    let mut out = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        // `.name(` / `.name::<…>(` — method call.
        if is_p(k, ".") && is_id(k + 1) {
            let name_tok = tok(k + 1).cloned();
            let mut j = k + 2;
            if is_p(j, "::") && is_p(j + 1, "<") {
                match skip_generics(f, toks, j + 1) {
                    Some(next) => j = next,
                    None => {
                        k += 2;
                        continue;
                    }
                }
            }
            if is_p(j, "(") {
                // Receiver shape decides whether this can be a workspace
                // method at all (DESIGN.md §15 precision trade-offs):
                // a call/index/literal result (`.iter().fold(…)`) is an
                // iterator/Option adapter; a SCREAMING_CASE receiver is a
                // static (atomics). Both are external — skip.
                let recv_tok = (k > 0).then(|| tok(k - 1)).flatten();
                let external = match recv_tok {
                    Some(t) if t.is_punct(")") || t.is_punct("]") => true,
                    Some(t)
                        if matches!(t.kind, TokenKind::Literal | TokenKind::Number) =>
                    {
                        true
                    }
                    Some(t) if t.kind == TokenKind::Ident && is_screaming_case(&t.text) => {
                        true
                    }
                    _ => false,
                };
                let recv = recv_tok
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone());
                if let Some(t) = name_tok {
                    if !is_keyword(&t.text) && !external {
                        out.push(CallSite {
                            path: vec![t.text.clone()],
                            is_method: true,
                            recv,
                            line: t.line,
                        });
                    }
                }
            }
            k += 2;
            continue;
        }

        // Path head: ident not preceded by `.`/`::`/`fn`.
        if is_id(k) {
            let prev_blocks = k > 0
                && (is_p(k - 1, ".")
                    || is_p(k - 1, "::")
                    || tok(k - 1).map(|t| t.is_ident("fn")).unwrap_or(false));
            if prev_blocks {
                k += 1;
                continue;
            }
            let mut path = vec![tok(k).map(|t| t.text.clone()).unwrap_or_default()];
            let line = tok(k).map(|t| t.line).unwrap_or(0);
            let mut j = k + 1;
            while is_p(j, "::") && is_id(j + 1) {
                path.push(tok(j + 1).map(|t| t.text.clone()).unwrap_or_default());
                j += 2;
            }
            if is_p(j, "::") && is_p(j + 1, "<") {
                match skip_generics(f, toks, j + 1) {
                    Some(next) => j = next,
                    None => {
                        k += 1;
                        continue;
                    }
                }
            }
            // `name!(…)` is a macro, `name(…)` a call.
            if is_p(j, "!") {
                k = j + 1;
                continue;
            }
            if is_p(j, "(") {
                let callee = path.last().map(String::as_str).unwrap_or("");
                let head_kw = path.len() == 1 && is_keyword(callee);
                let tail_kw = path.len() > 1 && is_keyword(callee);
                let local = path.len() == 1 && shadowed.contains(callee);
                if !head_kw && !tail_kw && !local && !callee.is_empty() {
                    out.push(CallSite {
                        path,
                        is_method: false,
                        recv: None,
                        line,
                    });
                }
            }
            k = j.max(k + 1);
            continue;
        }

        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn graph_of(sources: &[(&str, &str)]) -> CallGraph {
        let files: Vec<ScannedFile> =
            sources.iter().map(|(p, s)| scan(p, s)).collect();
        build(&files)
    }

    fn edge_names(g: &CallGraph, from: &str) -> Vec<String> {
        let i = g.fns.iter().position(|n| n.name == from).expect("node");
        let mut v: Vec<String> = g.edges[i]
            .iter()
            .map(|e| g.fns[e.to].display())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn free_and_qualified_calls_resolve() {
        let g = graph_of(&[(
            "crates/dsp/src/lib.rs",
            "fn helper(x: u8) -> u8 { x }\nfn main_path() { helper(1); Engine::start(); }\nstruct Engine;\nimpl Engine { fn start() { helper(2); } }",
        )]);
        assert_eq!(edge_names(&g, "main_path"), vec!["Engine::start", "helper"]);
        assert_eq!(edge_names(&g, "start"), vec!["helper"]);
    }

    #[test]
    fn method_calls_resolve_by_unique_name() {
        let g = graph_of(&[(
            "crates/radio/src/fm.rs",
            "struct Demod;\nimpl Demod { fn step(&self) {} }\nfn run(d: &Demod) { d.step(); }",
        )]);
        assert_eq!(edge_names(&g, "run"), vec!["Demod::step"]);
    }

    #[test]
    fn cross_file_suffix_match_with_use() {
        let g = graph_of(&[
            (
                "crates/fec/src/viterbi.rs",
                "pub fn decode_soft(x: &[f32]) -> Vec<u8> { Vec::new() }",
            ),
            (
                "crates/modem/src/lib.rs",
                "use sonic_fec::viterbi::decode_soft;\nfn demod() { decode_soft(&[]); }",
            ),
        ]);
        assert_eq!(edge_names(&g, "demod"), vec!["decode_soft"]);
    }

    #[test]
    fn turbofish_and_raw_idents_keep_edges() {
        let g = graph_of(&[(
            "crates/core/src/lib.rs",
            "fn r#type() {}\nfn collect_rows() -> Vec<Vec<u8>> { Vec::new() }\nfn run() { r#type(); helper::<Vec<Vec<u8>>>(1); }\nfn helper<T>(x: u8) -> u8 { x }",
        )]);
        assert_eq!(edge_names(&g, "run"), vec!["helper", "r#type"]);
    }

    #[test]
    fn test_fns_are_not_nodes_and_externals_count_unresolved() {
        let g = graph_of(&[(
            "crates/core/src/lib.rs",
            "fn prod() { external_call(); }\n#[cfg(test)]\nmod t { #[test]\nfn unit() { prod(); } }",
        )]);
        assert_eq!(g.stats.nodes, 1);
        assert_eq!(g.stats.unresolved_calls, 1);
        assert_eq!(g.stats.edges, 0);
    }

    #[test]
    fn nested_fn_bodies_do_not_leak_call_sites() {
        let g = graph_of(&[(
            "crates/core/src/lib.rs",
            "fn inner_target() {}\nfn outer() { fn nested() { inner_target(); } nested(); }",
        )]);
        assert_eq!(edge_names(&g, "outer"), vec!["nested"]);
        assert_eq!(edge_names(&g, "nested"), vec!["inner_target"]);
    }

    #[test]
    fn module_paths_derive_from_file_paths() {
        assert_eq!(
            module_path("crates/core/src/net/proto.rs"),
            vec!["sonic_core", "net", "proto"]
        );
        assert_eq!(module_path("crates/dsp/src/lib.rs"), vec!["sonic_dsp"]);
        assert_eq!(
            module_path("crates/core/src/server/mod.rs"),
            vec!["sonic_core", "server"]
        );
        assert_eq!(module_path("src/lib.rs"), vec!["sonic"]);
    }

    #[test]
    fn reachability_walks_edges() {
        let g = graph_of(&[(
            "crates/dsp/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn island() {}",
        )]);
        let a = g.fns.iter().position(|n| n.name == "a").expect("a");
        let seen = g.reachable_from(&[a]);
        let names: Vec<&str> = g
            .fns
            .iter()
            .enumerate()
            .filter(|(i, _)| seen[*i])
            .map(|(_, n)| n.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
