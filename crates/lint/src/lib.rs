//! # sonic-lint
//!
//! Workspace static-analysis pass enforcing the SONIC repo's hand-shake
//! invariants — the conventions the whole correctness story rests on but
//! that `clippy` cannot express:
//!
//! * **R1 `no-alloc`** — functions named `*_into` (and any marked
//!   `// lint: no-alloc`) are the allocation-free hot paths of the modem
//!   and codec; they may not call `Vec::new`, `vec!`, `.push`, `.collect`,
//!   `.to_vec`, `.clone`, `Box::new` or `format!`.
//! * **R2 `reference-parity`** — every fast path `foo` with a kept
//!   `foo_reference` twin must be exercised together with it in at least
//!   one test/property file (the bit-identity contract of PRs 1–3).
//! * **R3 `determinism`** — `Instant::now`, `SystemTime`, `thread_rng`
//!   and hash-ordered containers (`HashMap`/`HashSet`) are banned in
//!   `sonic-sim`, `sonic-radio::faults` and `sonic-core::server`: every
//!   result there must be a pure function of the experiment seed.
//! * **R4 `panic-free`** — `unwrap`/`expect`/`panic!`/`unreachable!`/
//!   `todo!` are banned in non-test code of the decode chain (`modem`,
//!   `fec`, `image`, `radio`, `core::reassembly`): a corrupt frame
//!   degrades the page, it must never kill the receiver.
//! * **R5 `unit-hygiene`** — magic sample-rate/subcarrier literals
//!   (`228_000`, `57_000`, `44_100`, …) must come from named constants.
//! * **R6 `safety-comment`** — any `unsafe` block requires a
//!   `// SAFETY:` line (the crates also `#![forbid(unsafe_code)]`).
//!
//! Diagnostics carry `file:line:rule`, a machine-readable `--json` mode, a
//! checked-in [`baseline`](crate::baseline) (`lint-baseline.json`) so
//! pre-existing violations burn down instead of blocking, and a
//! `--deny-new` CI gate. See DESIGN.md §9 for the rule rationale and the
//! `// lint:` annotation grammar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod resolve;
pub mod rules;
pub mod scan;
pub mod workspace;

pub use baseline::{Baseline, Comparison};
pub use graph::{CallGraph, GraphStats};
pub use rules::{analyze, Finding, Rule};
pub use workspace::SourceFile;

use std::path::Path;

/// Scans a set of in-memory sources and returns sorted findings. This is
/// the core entry point the CLI, the fixture tests and the self-run test
/// all share; paths decide rule scope, so fixtures pass virtual paths.
pub fn lint_sources(sources: &[SourceFile]) -> Vec<Finding> {
    let scanned: Vec<scan::ScannedFile> = sources
        .iter()
        .map(|s| scan::scan(&s.path, &s.text))
        .collect();
    rules::analyze(&scanned)
}

/// Walks the workspace at `root` and lints everything in scope.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let sources = workspace::collect(root)?;
    Ok(lint_sources(&sources))
}

/// Walks the workspace at `root` and builds the call graph only (the
/// `--graph-stats` mode).
pub fn graph_workspace(root: &Path) -> Result<CallGraph, String> {
    let sources = workspace::collect(root)?;
    let scanned: Vec<scan::ScannedFile> = sources
        .iter()
        .map(|s| scan::scan(&s.path, &s.text))
        .collect();
    Ok(graph::build(&scanned))
}

/// Renders one finding as the canonical `file:line: id [slug] message` line.
pub fn format_finding(f: &Finding) -> String {
    format!(
        "{}:{}: {} [{}] {}",
        f.file,
        f.line,
        f.rule.id(),
        f.rule.slug(),
        f.message
    )
}

/// Renders findings as a JSON array for `--json` mode.
pub fn findings_to_json(findings: &[Finding], new_flags: Option<&[bool]>) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let newness = match new_flags {
            Some(flags) => format!(", \"new\": {}", flags.get(i).copied().unwrap_or(true)),
            None => String::new(),
        };
        let chain = if f.chain.is_empty() {
            String::new()
        } else {
            let items: Vec<String> = f.chain.iter().map(|c| baseline::json_str(c)).collect();
            format!(", \"chain\": [{}]", items.join(", "))
        };
        let _ = write!(
            s,
            "  {{ \"file\": {}, \"line\": {}, \"rule\": {}, \"slug\": {}, \"key\": {}, \"message\": {}{}{} }}",
            baseline::json_str(&f.file),
            f.line,
            baseline::json_str(f.rule.id()),
            baseline::json_str(f.rule.slug()),
            baseline::json_str(&f.key),
            baseline::json_str(&f.message),
            chain,
            newness
        );
        s.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    s.push_str("]\n");
    s
}
