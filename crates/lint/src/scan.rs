//! Item/attribute scanner: layers structural context over the raw token
//! stream — which tokens sit inside `#[cfg(test)]` modules or `#[test]`
//! functions, which function body encloses a token, and which `// lint:`
//! directives apply where.
//!
//! This is *not* a Rust parser. It tracks exactly three things with a brace
//! stack: module scopes, function scopes and attribute application. That is
//! enough for every rule the linter enforces, and it degrades safely: code
//! it cannot classify is treated as production code (rules stay armed).

use crate::lexer::{lex, Token, TokenKind};

/// The `// lint:` directive grammar (see DESIGN.md §9):
///
/// * `// lint: no-alloc` — the next `fn` is held to the R1 no-allocation
///   rule even if its name does not end in `_into`.
/// * `// lint: allow(<rule>[, <rule>…])` — suppress findings of the named
///   rules on this line and the next. Rules are named by id (`R1`) or slug
///   (`no-alloc`, `reference-parity`, `determinism`, `panic-free`,
///   `unit-hygiene`, `safety-comment`).
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the directive is written on (applies to it and the next line).
    pub line: u32,
    /// Rule ids/slugs named in the directive, lower-cased.
    pub rules: Vec<String>,
}

/// A `fn` definition found in the file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]` / `#[test]` (or the file itself is test code).
    pub in_test: bool,
}

/// Per-token structural context, parallel to the token vector.
#[derive(Debug, Clone, Default)]
pub struct Ctx {
    /// Token is inside test code (`#[cfg(test)]` mod, `#[test]` fn, or a
    /// file classified as test by its path).
    pub in_test: bool,
    /// Name of the innermost enclosing function body, if any.
    pub fn_name: Option<String>,
    /// Innermost enclosing function is subject to R1 (named `*_into` or
    /// marked `// lint: no-alloc`).
    pub fn_no_alloc: bool,
}

/// A lexed + scanned source file, ready for rule evaluation.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// Structural context per token (same length as `tokens`).
    pub ctx: Vec<Ctx>,
    /// Every `fn` defined in the file.
    pub fns: Vec<FnDef>,
    /// Suppression directives.
    pub allows: Vec<Allow>,
    /// `// SAFETY:` comment lines (for R6).
    pub safety_comment_lines: Vec<u32>,
}

impl ScannedFile {
    /// True when a `// lint: allow(...)` directive covers `rule` at `line`.
    pub fn allowed(&self, rule: &str, slug: &str, line: u32) -> bool {
        let rule = rule.to_ascii_lowercase();
        self.allows.iter().any(|a| {
            (a.line == line || a.line + 1 == line)
                && a.rules.iter().any(|r| r == &rule || r == slug)
        })
    }
}

/// True when the *path* marks the whole file as test/bench/example code.
pub fn path_is_test(path: &str) -> bool {
    path.contains("/tests/")
        || path.starts_with("tests/")
        || path.contains("/examples/")
        || path.starts_with("examples/")
        || path.contains("/benches/")
}

#[derive(Debug)]
enum ScopeKind {
    /// `mod name { … }`; true when gated by `#[cfg(test)]`.
    Mod { cfg_test: bool },
    /// `fn name { … }` body.
    Fn {
        name: String,
        is_test: bool,
        no_alloc: bool,
    },
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    /// Brace depth *after* the opening `{` of this scope.
    entry_depth: usize,
}

/// Pending item header seen (`fn`/`mod` keyword) whose body `{` has not yet
/// opened. Cancelled if a `;` lands first (trait method decl, `mod x;`).
#[derive(Debug)]
enum Pending {
    Fn {
        name: String,
        is_test: bool,
        no_alloc: bool,
        paren_depth: usize,
    },
    Mod {
        cfg_test: bool,
    },
}

/// Lexes and scans one source file.
pub fn scan(path: &str, src: &str) -> ScannedFile {
    let tokens = lex(src);
    let file_is_test = path_is_test(path);

    let mut ctx = Vec::with_capacity(tokens.len());
    let mut fns = Vec::new();
    let mut allows = Vec::new();
    let mut safety_comment_lines = Vec::new();

    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut depth = 0usize;
    // Attributes seen since the last item keyword; cleared when consumed.
    let mut pending_attrs: Vec<String> = Vec::new();
    // Line of the most recent `// lint: no-alloc` directive.
    let mut no_alloc_directive: Option<u32> = None;

    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];

        // ---- comments: directives, then context bookkeeping ----
        if tok.kind == TokenKind::LineComment || tok.kind == TokenKind::BlockComment {
            let body = tok.text.trim_start_matches(['/', '*', '!']).trim();
            if body.to_ascii_uppercase().starts_with("SAFETY:") {
                safety_comment_lines.push(tok.line);
            }
            if let Some(rest) = body.strip_prefix("lint:") {
                let rest = rest.trim();
                if rest == "no-alloc" || rest.starts_with("no-alloc ") {
                    no_alloc_directive = Some(tok.line);
                } else if let Some(inner) = rest
                    .strip_prefix("allow(")
                    .and_then(|r| r.split(')').next())
                {
                    allows.push(Allow {
                        line: tok.line,
                        rules: inner
                            .split(',')
                            .map(|r| r.trim().to_ascii_lowercase())
                            .filter(|r| !r.is_empty())
                            .collect(),
                    });
                }
            }
            ctx.push(current_ctx(&scopes, file_is_test));
            i += 1;
            continue;
        }

        // ---- attributes: `#[...]` / `#![...]` ----
        if tok.is_punct("#") {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct("!") {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct("[") {
                // Capture until the matching `]`.
                let mut text = String::new();
                let mut bracket = 0usize;
                let start = i;
                while i < tokens.len() {
                    let t = &tokens[i];
                    if t.is_punct("[") {
                        bracket += 1;
                    } else if t.is_punct("]") {
                        bracket -= 1;
                        if bracket == 0 {
                            break;
                        }
                    }
                    if i > start {
                        if !text.is_empty() {
                            text.push(' ');
                        }
                        text.push_str(&t.text);
                    }
                    ctx.push(current_ctx(&scopes, file_is_test));
                    i += 1;
                }
                if i < tokens.len() {
                    ctx.push(current_ctx(&scopes, file_is_test));
                    i += 1; // past `]`
                }
                let text = text.trim_start_matches(['!', '[', ' ']).trim().to_string();
                pending_attrs.push(text);
                continue;
            }
        }

        // ---- structure ----
        match tok.kind {
            TokenKind::Ident if tok.text == "fn" => {
                // Find the function name (skip nothing: `fn name`).
                let name = tokens
                    .get(i + 1)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                let is_test = pending_attrs.iter().any(|a| attr_is_test(a));
                let near_directive = no_alloc_directive
                    .map(|l| l + 3 >= tok.line && l < tok.line)
                    .unwrap_or(false);
                let no_alloc = name.ends_with("_into") || near_directive;
                if near_directive {
                    no_alloc_directive = None;
                }
                if !name.is_empty() {
                    fns.push(FnDef {
                        name: name.clone(),
                        line: tok.line,
                        in_test: file_is_test || in_test_scope(&scopes) || is_test,
                    });
                    pending = Some(Pending::Fn {
                        name,
                        is_test,
                        no_alloc,
                        paren_depth: 0,
                    });
                }
                pending_attrs.clear();
            }
            TokenKind::Ident if tok.text == "mod" => {
                let cfg_test = pending_attrs.iter().any(|a| attr_is_test(a));
                pending = Some(Pending::Mod { cfg_test });
                pending_attrs.clear();
            }
            TokenKind::Ident
                if matches!(
                    tok.text.as_str(),
                    "struct" | "enum" | "impl" | "trait" | "use" | "const" | "static" | "type"
                ) =>
            {
                pending_attrs.clear();
            }
            TokenKind::Punct => match tok.text.as_str() {
                "(" => {
                    if let Some(Pending::Fn { paren_depth, .. }) = pending.as_mut() {
                        *paren_depth += 1;
                    }
                }
                ")" => {
                    if let Some(Pending::Fn { paren_depth, .. }) = pending.as_mut() {
                        *paren_depth = paren_depth.saturating_sub(1);
                    }
                }
                ";" => {
                    // Trait method declaration / `mod name;` — no body.
                    if matches!(
                        &pending,
                        Some(Pending::Fn { paren_depth: 0, .. }) | Some(Pending::Mod { .. })
                    ) {
                        pending = None;
                    }
                }
                "{" => {
                    depth += 1;
                    match pending.take() {
                        Some(Pending::Fn {
                            name,
                            is_test,
                            no_alloc,
                            ..
                        }) => scopes.push(Scope {
                            kind: ScopeKind::Fn {
                                name,
                                is_test,
                                no_alloc,
                            },
                            entry_depth: depth,
                        }),
                        Some(Pending::Mod { cfg_test }) => scopes.push(Scope {
                            kind: ScopeKind::Mod { cfg_test },
                            entry_depth: depth,
                        }),
                        None => {}
                    }
                }
                "}" => {
                    if scopes
                        .last()
                        .map(|s| s.entry_depth == depth)
                        .unwrap_or(false)
                    {
                        scopes.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            },
            _ => {}
        }

        ctx.push(current_ctx(&scopes, file_is_test));
        i += 1;
    }

    debug_assert_eq!(ctx.len(), tokens.len());
    ScannedFile {
        path: path.to_string(),
        tokens,
        ctx,
        fns,
        allows,
        safety_comment_lines,
    }
}

/// Does an attribute (token texts joined by spaces, brackets stripped) mark
/// the next item as test-only? `#[test]`, `#[cfg(test)]`, `#[tokio::test]`,
/// `#[cfg(all(test, …))]` — but *not* `#[cfg(not(test))]`, which gates
/// production code.
fn attr_is_test(a: &str) -> bool {
    let a: String = a.chars().filter(|c| !c.is_whitespace()).collect();
    if a.contains("not(test)") {
        return false;
    }
    a == "test" || a.ends_with("::test") || a.contains("cfg(test") || a.contains("cfg(all(test")
}

fn in_test_scope(scopes: &[Scope]) -> bool {
    scopes.iter().any(|s| match &s.kind {
        ScopeKind::Mod { cfg_test } => *cfg_test,
        ScopeKind::Fn { is_test, .. } => *is_test,
    })
}

fn current_ctx(scopes: &[Scope], file_is_test: bool) -> Ctx {
    let mut ctx = Ctx {
        in_test: file_is_test || in_test_scope(scopes),
        ..Ctx::default()
    };
    for s in scopes.iter().rev() {
        if let ScopeKind::Fn {
            name, no_alloc, ..
        } = &s.kind
        {
            ctx.fn_name = Some(name.clone());
            ctx.fn_no_alloc = *no_alloc;
            break;
        }
    }
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_marks_tokens() {
        let src = "fn prod() { work(); }\n#[cfg(test)]\nmod tests {\n fn helper() { x(); }\n}";
        let f = scan("crates/x/src/lib.rs", src);
        let work = f
            .tokens
            .iter()
            .position(|t| t.is_ident("work"))
            .expect("work token");
        assert!(!f.ctx[work].in_test);
        let x = f.tokens.iter().position(|t| t.is_ident("x")).expect("x token");
        assert!(f.ctx[x].in_test);
        assert_eq!(f.ctx[x].fn_name.as_deref(), Some("helper"));
    }

    #[test]
    fn test_attr_marks_fn() {
        let src = "#[test]\nfn unit() { boom(); }\nfn prod() { fine(); }";
        let f = scan("crates/x/src/lib.rs", src);
        let boom = f.tokens.iter().position(|t| t.is_ident("boom")).expect("boom");
        assert!(f.ctx[boom].in_test);
        let fine = f.tokens.iter().position(|t| t.is_ident("fine")).expect("fine");
        assert!(!f.ctx[fine].in_test);
    }

    #[test]
    fn into_fn_is_no_alloc_and_directive_works() {
        let src = "fn render_into(o: &mut V) { o.push(1); }\n// lint: no-alloc\nfn hot(x: u8) { y(); }\nfn cold() { z(); }";
        let f = scan("crates/x/src/lib.rs", src);
        let push = f.tokens.iter().position(|t| t.is_ident("push")).expect("push");
        assert!(f.ctx[push].fn_no_alloc);
        let y = f.tokens.iter().position(|t| t.is_ident("y")).expect("y");
        assert!(f.ctx[y].fn_no_alloc);
        let z = f.tokens.iter().position(|t| t.is_ident("z")).expect("z");
        assert!(!f.ctx[z].fn_no_alloc);
    }

    #[test]
    fn trait_decl_semicolon_cancels_pending_fn() {
        let src = "trait T { fn decl(&self); }\nfn real() { body(); }";
        let f = scan("crates/x/src/lib.rs", src);
        let body = f.tokens.iter().position(|t| t.is_ident("body")).expect("body");
        assert_eq!(f.ctx[body].fn_name.as_deref(), Some("real"));
    }

    #[test]
    fn allow_directive_parses() {
        let src = "// lint: allow(R5, determinism)\nlet x = 228_000;";
        let f = scan("crates/x/src/lib.rs", src);
        assert!(f.allowed("R5", "unit-hygiene", 1));
        assert!(f.allowed("R5", "unit-hygiene", 2));
        assert!(f.allowed("R3", "determinism", 2));
        assert!(!f.allowed("R1", "no-alloc", 2));
    }

    #[test]
    fn fn_collection_includes_test_flag() {
        let src = "fn a() {}\n#[cfg(test)]\nmod t { #[test]\nfn b() {} }";
        let f = scan("crates/x/src/lib.rs", src);
        let names: Vec<(String, bool)> =
            f.fns.iter().map(|d| (d.name.clone(), d.in_test)).collect();
        assert_eq!(names, vec![("a".into(), false), ("b".into(), true)]);
    }
}
