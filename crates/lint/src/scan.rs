//! Item/attribute scanner: layers structural context over the raw token
//! stream — which tokens sit inside `#[cfg(test)]` modules or `#[test]`
//! functions, which function body encloses a token, which `impl`/`trait`
//! block owns a method, which `enum` declares which variants, and which
//! `// lint:` directives apply where.
//!
//! This is *not* a Rust parser. It tracks exactly four things with a brace
//! stack: module scopes, `impl`/`trait` scopes, function scopes and
//! attribute application. That is enough for every rule the linter
//! enforces — including the interprocedural pass, which consumes the
//! function body spans and owners recorded here — and it degrades safely:
//! code it cannot classify is treated as production code (rules stay
//! armed) with no recorded span (no call edges, counted as unresolved).

use crate::lexer::{lex, Token, TokenKind};

/// The `// lint:` directive grammar (see DESIGN.md §9/§15):
///
/// * `// lint: no-alloc` — the next `fn` is held to the R1 no-allocation
///   rule even if its name does not end in `_into`.
/// * `// lint: allow(<rule>[, <rule>…])` — suppress findings of the named
///   rules on this line and the next. Rules are named by id (`R1`) or slug
///   (`no-alloc`, `reference-parity`, `determinism`, `panic-free`,
///   `unit-hygiene`, `safety-comment`, `wire-totality`, `lossy-cast`).
/// * `// lint: checked-cast — <why>` — sugar for `allow(lossy-cast)`: the
///   `as` cast on this line (or the next) has been checked to be in range.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the directive is written on (applies to it and the next line).
    pub line: u32,
    /// Rule ids/slugs named in the directive, lower-cased.
    pub rules: Vec<String>,
}

/// A `fn` definition found in the file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name (raw identifiers keep their `r#` prefix).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]` / `#[test]` (or the file itself is test code).
    pub in_test: bool,
    /// Type or trait name of the enclosing `impl`/`trait` block, if any.
    pub owner: Option<String>,
    /// Subject to R1 (named `*_into` or marked `// lint: no-alloc`).
    pub no_alloc: bool,
    /// Token-index span of the body `{ … }` (exclusive of both braces).
    /// `None` for bodiless declarations (trait method signatures).
    pub body: Option<(usize, usize)>,
}

/// An `enum` definition found in the file (consumed by R7).
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Inside test code.
    pub in_test: bool,
    /// Variant names with the line each is declared on.
    pub variants: Vec<(String, u32)>,
}

/// Per-token structural context, parallel to the token vector.
#[derive(Debug, Clone, Default)]
pub struct Ctx {
    /// Token is inside test code (`#[cfg(test)]` mod, `#[test]` fn, or a
    /// file classified as test by its path).
    pub in_test: bool,
    /// Name of the innermost enclosing function body, if any.
    pub fn_name: Option<String>,
    /// Innermost enclosing function is subject to R1 (named `*_into` or
    /// marked `// lint: no-alloc`).
    pub fn_no_alloc: bool,
}

/// A lexed + scanned source file, ready for rule evaluation.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// Structural context per token (same length as `tokens`).
    pub ctx: Vec<Ctx>,
    /// Every `fn` defined in the file.
    pub fns: Vec<FnDef>,
    /// Every `enum` defined in the file.
    pub enums: Vec<EnumDef>,
    /// Suppression directives.
    pub allows: Vec<Allow>,
    /// `// SAFETY:` comment lines (for R6).
    pub safety_comment_lines: Vec<u32>,
}

impl ScannedFile {
    /// True when a `// lint: allow(...)` directive covers `rule` at `line`.
    pub fn allowed(&self, rule: &str, slug: &str, line: u32) -> bool {
        let rule = rule.to_ascii_lowercase();
        self.allows.iter().any(|a| {
            (a.line == line || a.line + 1 == line)
                && a.rules.iter().any(|r| r == &rule || r == slug)
        })
    }
}

/// True when the *path* marks the whole file as test/bench/example code.
pub fn path_is_test(path: &str) -> bool {
    path.contains("/tests/")
        || path.starts_with("tests/")
        || path.contains("/examples/")
        || path.starts_with("examples/")
        || path.contains("/benches/")
}

#[derive(Debug)]
enum ScopeKind {
    /// `mod name { … }`; true when gated by `#[cfg(test)]`.
    Mod { cfg_test: bool },
    /// `impl Type { … }` / `trait Name { … }` body.
    Owner { type_name: Option<String> },
    /// `fn name { … }` body; `fn_idx` indexes into the output `fns` so the
    /// body span can be backpatched at the closing brace.
    Fn {
        name: String,
        is_test: bool,
        no_alloc: bool,
        fn_idx: usize,
    },
    /// `enum Name { … }` body, collecting variants while open.
    Enum {
        name: String,
        line: u32,
        in_test: bool,
        variants: Vec<(String, u32)>,
        /// The next top-level ident is a variant name (set at `{` and
        /// after each top-level `,`).
        expecting_variant: bool,
        /// `(`/`[` nesting inside a tuple variant — commas in there are
        /// field separators, not variant separators.
        group_depth: usize,
    },
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    /// Brace depth *after* the opening `{` of this scope.
    entry_depth: usize,
}

/// Pending item header seen (`fn`/`mod`/`impl`/`trait`/`enum` keyword)
/// whose body `{` has not yet opened. Cancelled if a `;` lands first
/// (trait method decl, `mod x;`, `impl T for U;`).
#[derive(Debug)]
enum Pending {
    Fn {
        name: String,
        is_test: bool,
        no_alloc: bool,
        fn_idx: usize,
        paren_depth: usize,
    },
    Mod {
        cfg_test: bool,
    },
    /// `impl …` header: collects the self-type name (the ident after `for`
    /// if present, else the first type ident), skipping generics.
    Impl {
        saw_for: bool,
        saw_where: bool,
        angle_depth: usize,
        first: Option<String>,
        for_type: Option<String>,
    },
    /// `trait Name` header.
    Trait {
        name: Option<String>,
    },
    /// `enum Name` header.
    Enum {
        name: Option<String>,
        line: u32,
        in_test: bool,
    },
}

/// Lexes and scans one source file.
pub fn scan(path: &str, src: &str) -> ScannedFile {
    let tokens = lex(src);
    let file_is_test = path_is_test(path);

    let mut ctx = Vec::with_capacity(tokens.len());
    let mut fns: Vec<FnDef> = Vec::new();
    let mut enums: Vec<EnumDef> = Vec::new();
    let mut allows = Vec::new();
    let mut safety_comment_lines = Vec::new();

    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut depth = 0usize;
    // Attributes seen since the last item keyword; cleared when consumed.
    let mut pending_attrs: Vec<String> = Vec::new();
    // Line of the most recent `// lint: no-alloc` directive.
    let mut no_alloc_directive: Option<u32> = None;

    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];

        // ---- comments: directives, then context bookkeeping ----
        if tok.kind == TokenKind::LineComment || tok.kind == TokenKind::BlockComment {
            let body = tok.text.trim_start_matches(['/', '*', '!']).trim();
            if body.to_ascii_uppercase().starts_with("SAFETY:") {
                safety_comment_lines.push(tok.line);
            }
            if let Some(rest) = body.strip_prefix("lint:") {
                let rest = rest.trim();
                if rest == "no-alloc" || rest.starts_with("no-alloc ") {
                    no_alloc_directive = Some(tok.line);
                } else if rest == "checked-cast" || rest.starts_with("checked-cast ") {
                    allows.push(Allow {
                        line: tok.line,
                        rules: vec!["r8".into(), "lossy-cast".into()],
                    });
                } else if let Some(inner) = rest
                    .strip_prefix("allow(")
                    .and_then(|r| r.split(')').next())
                {
                    allows.push(Allow {
                        line: tok.line,
                        rules: inner
                            .split(',')
                            .map(|r| r.trim().to_ascii_lowercase())
                            .filter(|r| !r.is_empty())
                            .collect(),
                    });
                }
            }
            ctx.push(current_ctx(&scopes, file_is_test));
            i += 1;
            continue;
        }

        // ---- attributes: `#[...]` / `#![...]` ----
        if tok.is_punct("#") {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct("!") {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct("[") {
                // Capture until the matching `]`.
                let mut text = String::new();
                let mut bracket = 0usize;
                let start = i;
                while i < tokens.len() {
                    let t = &tokens[i];
                    if t.is_punct("[") {
                        bracket += 1;
                    } else if t.is_punct("]") {
                        bracket -= 1;
                        if bracket == 0 {
                            break;
                        }
                    }
                    if i > start {
                        if !text.is_empty() {
                            text.push(' ');
                        }
                        text.push_str(&t.text);
                    }
                    ctx.push(current_ctx(&scopes, file_is_test));
                    i += 1;
                }
                if i < tokens.len() {
                    ctx.push(current_ctx(&scopes, file_is_test));
                    i += 1; // past `]`
                }
                let text = text.trim_start_matches(['!', '[', ' ']).trim().to_string();
                pending_attrs.push(text);
                continue;
            }
        }

        // ---- pending-header bookkeeping (impl/trait/enum names) ----
        match pending.as_mut() {
            Some(Pending::Impl {
                saw_for,
                saw_where,
                angle_depth,
                first,
                for_type,
            }) => match tok.kind {
                TokenKind::Punct if tok.text == "<" => *angle_depth += 1,
                TokenKind::Punct if tok.text == ">" => {
                    *angle_depth = angle_depth.saturating_sub(1)
                }
                TokenKind::Ident if *angle_depth == 0 && !*saw_where => {
                    match tok.text.as_str() {
                        "for" => *saw_for = true,
                        "where" => *saw_where = true,
                        "dyn" | "const" | "unsafe" => {}
                        name if *saw_for && for_type.is_none() => {
                            *for_type = Some(name.to_string())
                        }
                        name if !*saw_for && first.is_none() => {
                            *first = Some(name.to_string())
                        }
                        _ => {}
                    }
                }
                _ => {}
            },
            Some(Pending::Trait { name }) if tok.kind == TokenKind::Ident && name.is_none() => {
                *name = Some(tok.text.clone());
            }
            Some(Pending::Enum { name, .. })
                if tok.kind == TokenKind::Ident && name.is_none() =>
            {
                *name = Some(tok.text.clone());
            }
            _ => {}
        }

        // ---- enum variant collection ----
        if let Some(Scope {
            kind:
                ScopeKind::Enum {
                    variants,
                    expecting_variant,
                    group_depth,
                    ..
                },
            entry_depth,
        }) = scopes.last_mut()
        {
            if depth == *entry_depth {
                match tok.kind {
                    TokenKind::Punct if tok.text == "(" || tok.text == "[" => {
                        *group_depth += 1
                    }
                    TokenKind::Punct if tok.text == ")" || tok.text == "]" => {
                        *group_depth = group_depth.saturating_sub(1)
                    }
                    TokenKind::Ident if *expecting_variant && *group_depth == 0 => {
                        variants.push((tok.text.clone(), tok.line));
                        *expecting_variant = false;
                    }
                    TokenKind::Punct if tok.text == "," && *group_depth == 0 => {
                        *expecting_variant = true
                    }
                    _ => {}
                }
            }
        }

        // ---- structure ----
        match tok.kind {
            TokenKind::Ident if tok.text == "fn" => {
                // Find the function name (skip nothing: `fn name`).
                let name = tokens
                    .get(i + 1)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                let is_test = pending_attrs.iter().any(|a| attr_is_test(a));
                let near_directive = no_alloc_directive
                    .map(|l| l + 3 >= tok.line && l < tok.line)
                    .unwrap_or(false);
                let no_alloc = name.ends_with("_into") || near_directive;
                if near_directive {
                    no_alloc_directive = None;
                }
                if !name.is_empty() {
                    let fn_idx = fns.len();
                    fns.push(FnDef {
                        name: name.clone(),
                        line: tok.line,
                        in_test: file_is_test || in_test_scope(&scopes) || is_test,
                        owner: owner_of(&scopes),
                        no_alloc,
                        body: None,
                    });
                    pending = Some(Pending::Fn {
                        name,
                        is_test,
                        no_alloc,
                        fn_idx,
                        paren_depth: 0,
                    });
                }
                pending_attrs.clear();
            }
            TokenKind::Ident if tok.text == "mod" => {
                let cfg_test = pending_attrs.iter().any(|a| attr_is_test(a));
                pending = Some(Pending::Mod { cfg_test });
                pending_attrs.clear();
            }
            TokenKind::Ident if tok.text == "impl" => {
                pending = Some(Pending::Impl {
                    saw_for: false,
                    saw_where: false,
                    angle_depth: 0,
                    first: None,
                    for_type: None,
                });
                pending_attrs.clear();
            }
            TokenKind::Ident if tok.text == "trait" => {
                pending = Some(Pending::Trait { name: None });
                pending_attrs.clear();
            }
            TokenKind::Ident if tok.text == "enum" => {
                pending = Some(Pending::Enum {
                    name: None,
                    line: tok.line,
                    in_test: file_is_test || in_test_scope(&scopes),
                });
                pending_attrs.clear();
            }
            TokenKind::Ident
                if matches!(
                    tok.text.as_str(),
                    "struct" | "use" | "const" | "static" | "type"
                ) =>
            {
                pending_attrs.clear();
            }
            TokenKind::Punct => match tok.text.as_str() {
                "(" => {
                    if let Some(Pending::Fn { paren_depth, .. }) = pending.as_mut() {
                        *paren_depth += 1;
                    }
                }
                ")" => {
                    if let Some(Pending::Fn { paren_depth, .. }) = pending.as_mut() {
                        *paren_depth = paren_depth.saturating_sub(1);
                    }
                }
                ";" => {
                    // Trait method declaration / `mod name;` — no body.
                    if matches!(
                        &pending,
                        Some(Pending::Fn { paren_depth: 0, .. })
                            | Some(Pending::Mod { .. })
                            | Some(Pending::Impl { .. })
                            | Some(Pending::Trait { .. })
                            | Some(Pending::Enum { .. })
                    ) {
                        pending = None;
                    }
                }
                "{" => {
                    depth += 1;
                    match pending.take() {
                        Some(Pending::Fn {
                            name,
                            is_test,
                            no_alloc,
                            fn_idx,
                            ..
                        }) => {
                            // Body span starts just past this `{`.
                            if let Some(d) = fns.get_mut(fn_idx) {
                                d.body = Some((i + 1, i + 1));
                            }
                            scopes.push(Scope {
                                kind: ScopeKind::Fn {
                                    name,
                                    is_test,
                                    no_alloc,
                                    fn_idx,
                                },
                                entry_depth: depth,
                            });
                        }
                        Some(Pending::Mod { cfg_test }) => scopes.push(Scope {
                            kind: ScopeKind::Mod { cfg_test },
                            entry_depth: depth,
                        }),
                        Some(Pending::Impl {
                            first, for_type, ..
                        }) => scopes.push(Scope {
                            kind: ScopeKind::Owner {
                                type_name: for_type.or(first),
                            },
                            entry_depth: depth,
                        }),
                        Some(Pending::Trait { name }) => scopes.push(Scope {
                            kind: ScopeKind::Owner { type_name: name },
                            entry_depth: depth,
                        }),
                        Some(Pending::Enum {
                            name,
                            line,
                            in_test,
                        }) => scopes.push(Scope {
                            kind: ScopeKind::Enum {
                                name: name.unwrap_or_default(),
                                line,
                                in_test,
                                variants: Vec::new(),
                                expecting_variant: true,
                                group_depth: 0,
                            },
                            entry_depth: depth,
                        }),
                        None => {}
                    }
                }
                "}" => {
                    if scopes
                        .last()
                        .map(|s| s.entry_depth == depth)
                        .unwrap_or(false)
                    {
                        match scopes.pop().map(|s| s.kind) {
                            Some(ScopeKind::Fn { fn_idx, .. }) => {
                                // Backpatch the body span end (exclusive of
                                // this closing brace).
                                if let Some(d) = fns.get_mut(fn_idx) {
                                    if let Some((start, _)) = d.body {
                                        d.body = Some((start, i));
                                    }
                                }
                            }
                            Some(ScopeKind::Enum {
                                name,
                                line,
                                in_test,
                                variants,
                                ..
                            }) if !name.is_empty() => {
                                enums.push(EnumDef {
                                    name,
                                    line,
                                    in_test,
                                    variants,
                                });
                            }
                            _ => {}
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            },
            _ => {}
        }

        ctx.push(current_ctx(&scopes, file_is_test));
        i += 1;
    }

    debug_assert_eq!(ctx.len(), tokens.len());
    ScannedFile {
        path: path.to_string(),
        tokens,
        ctx,
        fns,
        enums,
        allows,
        safety_comment_lines,
    }
}

/// Does an attribute (token texts joined by spaces, brackets stripped) mark
/// the next item as test-only? `#[test]`, `#[cfg(test)]`, `#[tokio::test]`,
/// `#[cfg(all(test, …))]` — but *not* `#[cfg(not(test))]`, which gates
/// production code.
fn attr_is_test(a: &str) -> bool {
    let a: String = a.chars().filter(|c| !c.is_whitespace()).collect();
    if a.contains("not(test)") {
        return false;
    }
    a == "test" || a.ends_with("::test") || a.contains("cfg(test") || a.contains("cfg(all(test")
}

fn in_test_scope(scopes: &[Scope]) -> bool {
    scopes.iter().any(|s| match &s.kind {
        ScopeKind::Mod { cfg_test } => *cfg_test,
        ScopeKind::Fn { is_test, .. } => *is_test,
        _ => false,
    })
}

/// Innermost enclosing `impl`/`trait` type name, if any.
fn owner_of(scopes: &[Scope]) -> Option<String> {
    scopes.iter().rev().find_map(|s| match &s.kind {
        ScopeKind::Owner { type_name } => type_name.clone(),
        _ => None,
    })
}

fn current_ctx(scopes: &[Scope], file_is_test: bool) -> Ctx {
    let mut ctx = Ctx {
        in_test: file_is_test || in_test_scope(scopes),
        ..Ctx::default()
    };
    for s in scopes.iter().rev() {
        if let ScopeKind::Fn {
            name, no_alloc, ..
        } = &s.kind
        {
            ctx.fn_name = Some(name.clone());
            ctx.fn_no_alloc = *no_alloc;
            break;
        }
    }
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_marks_tokens() {
        let src = "fn prod() { work(); }\n#[cfg(test)]\nmod tests {\n fn helper() { x(); }\n}";
        let f = scan("crates/x/src/lib.rs", src);
        let work = f
            .tokens
            .iter()
            .position(|t| t.is_ident("work"))
            .expect("work token");
        assert!(!f.ctx[work].in_test);
        let x = f.tokens.iter().position(|t| t.is_ident("x")).expect("x token");
        assert!(f.ctx[x].in_test);
        assert_eq!(f.ctx[x].fn_name.as_deref(), Some("helper"));
    }

    #[test]
    fn test_attr_marks_fn() {
        let src = "#[test]\nfn unit() { boom(); }\nfn prod() { fine(); }";
        let f = scan("crates/x/src/lib.rs", src);
        let boom = f.tokens.iter().position(|t| t.is_ident("boom")).expect("boom");
        assert!(f.ctx[boom].in_test);
        let fine = f.tokens.iter().position(|t| t.is_ident("fine")).expect("fine");
        assert!(!f.ctx[fine].in_test);
    }

    #[test]
    fn into_fn_is_no_alloc_and_directive_works() {
        let src = "fn render_into(o: &mut V) { o.push(1); }\n// lint: no-alloc\nfn hot(x: u8) { y(); }\nfn cold() { z(); }";
        let f = scan("crates/x/src/lib.rs", src);
        let push = f.tokens.iter().position(|t| t.is_ident("push")).expect("push");
        assert!(f.ctx[push].fn_no_alloc);
        let y = f.tokens.iter().position(|t| t.is_ident("y")).expect("y");
        assert!(f.ctx[y].fn_no_alloc);
        let z = f.tokens.iter().position(|t| t.is_ident("z")).expect("z");
        assert!(!f.ctx[z].fn_no_alloc);
    }

    #[test]
    fn trait_decl_semicolon_cancels_pending_fn() {
        let src = "trait T { fn decl(&self); }\nfn real() { body(); }";
        let f = scan("crates/x/src/lib.rs", src);
        let body = f.tokens.iter().position(|t| t.is_ident("body")).expect("body");
        assert_eq!(f.ctx[body].fn_name.as_deref(), Some("real"));
        // The bodiless declaration is recorded with no span and the trait
        // as its owner; the free fn has a span and no owner.
        let decl = f.fns.iter().find(|d| d.name == "decl").expect("decl def");
        assert_eq!(decl.owner.as_deref(), Some("T"));
        assert!(decl.body.is_none());
        let real = f.fns.iter().find(|d| d.name == "real").expect("real def");
        assert!(real.owner.is_none());
        assert!(real.body.is_some());
    }

    #[test]
    fn allow_directive_parses() {
        let src = "// lint: allow(R5, determinism)\nlet x = 228_000;";
        let f = scan("crates/x/src/lib.rs", src);
        assert!(f.allowed("R5", "unit-hygiene", 1));
        assert!(f.allowed("R5", "unit-hygiene", 2));
        assert!(f.allowed("R3", "determinism", 2));
        assert!(!f.allowed("R1", "no-alloc", 2));
    }

    #[test]
    fn checked_cast_directive_is_lossy_cast_allow() {
        let src = "fn f(n: usize) -> u32 {\n // lint: checked-cast — bounded by MAX_FRAMES\n n as u32\n}";
        let f = scan("crates/x/src/lib.rs", src);
        assert!(f.allowed("R8", "lossy-cast", 2));
        assert!(f.allowed("R8", "lossy-cast", 3));
        assert!(!f.allowed("R1", "no-alloc", 3));
    }

    #[test]
    fn fn_collection_includes_test_flag() {
        let src = "fn a() {}\n#[cfg(test)]\nmod t { #[test]\nfn b() {} }";
        let f = scan("crates/x/src/lib.rs", src);
        let names: Vec<(String, bool)> =
            f.fns.iter().map(|d| (d.name.clone(), d.in_test)).collect();
        assert_eq!(names, vec![("a".into(), false), ("b".into(), true)]);
    }

    #[test]
    fn impl_owner_is_recorded() {
        let src = "impl<'a> Cursor<'a> { fn take(&mut self) {} }\nimpl fmt::Display for Frame { fn fmt(&self) {} }\nimpl Decoder { fn feed(&mut self) {} }";
        let f = scan("crates/x/src/lib.rs", src);
        let owner = |name: &str| {
            f.fns
                .iter()
                .find(|d| d.name == name)
                .and_then(|d| d.owner.clone())
        };
        assert_eq!(owner("take").as_deref(), Some("Cursor"));
        assert_eq!(owner("fmt").as_deref(), Some("Frame"));
        assert_eq!(owner("feed").as_deref(), Some("Decoder"));
    }

    #[test]
    fn fn_body_spans_cover_exactly_the_body() {
        let src = "fn a() { one(); }\nfn b() { two(); fn nested() { three(); } }";
        let f = scan("crates/x/src/lib.rs", src);
        let span = |name: &str| f.fns.iter().find(|d| d.name == name).and_then(|d| d.body);
        let (s, e) = span("a").expect("a span");
        let texts: Vec<&str> = f.tokens[s..e].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["one", "(", ")", ";"]);
        // Nested fn's span nests strictly inside its parent's.
        let (bs, be) = span("b").expect("b span");
        let (ns, ne) = span("nested").expect("nested span");
        assert!(bs < ns && ne <= be);
    }

    #[test]
    fn enum_variants_are_collected() {
        let src = "pub enum Msg {\n /// doc\n Ping,\n Push { id: u32, frames: Vec<u8> },\n Resume(u64, u32),\n}\n#[cfg(test)]\nmod t { enum TestOnly { A, B } }";
        let f = scan("crates/x/src/lib.rs", src);
        assert_eq!(f.enums.len(), 2);
        let msg = &f.enums[0];
        assert_eq!(msg.name, "Msg");
        assert!(!msg.in_test);
        let names: Vec<&str> = msg.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Ping", "Push", "Resume"]);
        assert_eq!(msg.variants[0].1, 3, "variant line recorded");
        assert!(f.enums[1].in_test, "test-mod enum marked as test");
    }
}
