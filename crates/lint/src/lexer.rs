//! Hand-rolled Rust lexer — just enough fidelity for the lint rules.
//!
//! The lexer's one job is to separate *code* from *non-code* so the rules
//! never fire on identifiers that appear inside strings, char literals or
//! comments, and so `// lint:` / `// SAFETY:` directives survive as tokens
//! the scanner can see. It understands:
//!
//! * line + block comments (nested, as Rust allows), doc comments included;
//! * string literals: `"…"` with escapes, raw strings `r"…"` / `r#"…"#`
//!   with any number of `#`s, byte strings `b"…"` / `br#"…"#`;
//! * char / byte literals including `'\''` and lifetime disambiguation;
//! * numeric literals with `_` separators, type suffixes, floats, hex/oct/bin;
//! * identifiers (including raw `r#ident`) and multi-char punctuation enough
//!   for `::`-path recognition.
//!
//! Everything else is a single-character [`TokenKind::Punct`].

/// What a token is. Text is carried alongside so rules can match on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Vec`, …).
    Ident,
    /// Numeric literal (`228_000`, `1187.5`, `0xFF`, `1e-6`, …).
    Number,
    /// String, raw-string, byte-string, char or byte literal.
    Literal,
    /// `// …` comment (doc comments included). Text keeps the `//` prefix.
    LineComment,
    /// `/* … */` comment (nested ok). Text keeps the delimiters.
    BlockComment,
    /// A lifetime such as `'a` (kept distinct so it is never a char literal).
    Lifetime,
    /// Any punctuation character (`{`, `}`, `.`, `!`, `#`, `:`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Lexes `src` into a token stream. Never fails: unrecognized bytes become
/// single-character punct tokens, unterminated literals run to end of file.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                _ => {
                    // Multi-char punct we care about: `::` (path separator).
                    if c == ':' && self.peek(1) == Some(':') {
                        self.bump();
                        self.bump();
                        self.push(TokenKind::Punct, "::".into(), line);
                    } else {
                        self.bump();
                        self.push(TokenKind::Punct, c.to_string(), line);
                    }
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line);
    }

    fn string(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('"')); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns false if
    /// the `r`/`b` starts a plain identifier instead (caller falls through).
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let mut look = 1usize;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            look = 2;
        }
        // Count `#`s after the prefix.
        let mut hashes = 0usize;
        while self.peek(look + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(look + hashes) {
            Some('"') => {}
            Some('\'') if look == 1 && self.peek(0) == Some('b') && hashes == 0 => {
                // Byte char literal b'x'.
                let mut text = String::new();
                text.push(self.bump().unwrap_or('b'));
                self.consume_char_literal(&mut text);
                self.push(TokenKind::Literal, text, line);
                return true;
            }
            _ => {
                // `r#ident` raw identifier. The `r#` prefix is *kept* in the
                // token text: `r#type` must stay distinguishable from the
                // keyword `type`, or call-graph extraction would filter a
                // call to `r#type(…)` as a keyword and drop the edge.
                if hashes == 1 && self.peek(0) == Some('r') {
                    if let Some(c) = self.peek(2) {
                        if c == '_' || c.is_alphabetic() {
                            self.bump();
                            self.bump();
                            self.ident_with_prefix(line, "r#");
                            return true;
                        }
                    }
                }
                return false;
            }
        }
        // Consume prefix + hashes + opening quote.
        let mut text = String::new();
        for _ in 0..(look + hashes + 1) {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        let raw = text.contains('r');
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' && !raw {
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
                continue;
            }
            if c == '"' {
                if hashes == 0 {
                    break;
                }
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == Some('#') {
                    text.push(self.bump().unwrap_or('#'));
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
        }
        self.push(TokenKind::Literal, text, line);
        true
    }

    fn consume_char_literal(&mut self, text: &mut String) {
        // Called with the opening `'` not yet consumed.
        if let Some(q) = self.bump() {
            text.push(q);
        }
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` / `'static` (lifetime) vs `'x'` / `'\n'` (char literal).
        // Lifetime: `'` then ident-start, and the char after the ident body
        // is NOT a closing `'`.
        if let Some(c1) = self.peek(1) {
            if c1 == '_' || c1.is_alphabetic() {
                let mut end = 2usize;
                while self
                    .peek(end)
                    .map(|c| c == '_' || c.is_alphanumeric())
                    .unwrap_or(false)
                {
                    end += 1;
                }
                if self.peek(end) != Some('\'') {
                    let mut text = String::new();
                    for _ in 0..end {
                        if let Some(c) = self.bump() {
                            text.push(c);
                        }
                    }
                    self.push(TokenKind::Lifetime, text, line);
                    return;
                }
            }
        }
        let mut text = String::new();
        self.consume_char_literal(&mut text);
        self.push(TokenKind::Literal, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        // Integer / prefix part.
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: `.` followed by a digit (`1.` alone is also a
        // float in Rust, but `1..n` is a range — require a digit).
        if self.peek(0) == Some('.') {
            if let Some(c1) = self.peek(1) {
                if c1.is_ascii_digit() {
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    // Exponent sign, e.g. `1.5e-3`.
                    if text.ends_with(['e', 'E']) && matches!(self.peek(0), Some('+') | Some('-')) {
                        text.push(self.bump().unwrap_or('-'));
                        while let Some(c) = self.peek(0) {
                            if c.is_ascii_alphanumeric() || c == '_' {
                                text.push(c);
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                }
            }
        } else if text.ends_with(['e', 'E']) && matches!(self.peek(0), Some('+') | Some('-')) {
            text.push(self.bump().unwrap_or('-'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.push(TokenKind::Number, text, line);
    }

    fn ident(&mut self, line: u32) {
        self.ident_with_prefix(line, "");
    }

    fn ident_with_prefix(&mut self, line: u32, prefix: &str) {
        let mut text = String::from(prefix);
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let toks = kinds(r#"let s = "Vec::new() // not code"; // HashMap here"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("Vec::new")));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("HashMap")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"panic!("inner")"#; panic!()"###);
        let panics: Vec<_> = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Ident && t == "panic")
            .collect();
        assert_eq!(panics.len(), 1, "only the real panic! lexes as ident");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Literal && t == "'x'"));
    }

    #[test]
    fn numbers_keep_separators_and_floats() {
        let toks = kinds("228_000 1187.5 0xFF 1e-6 44_100.0f64");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["228_000", "1187.5", "0xFF", "1e-6", "44_100.0f64"]);
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "ident".into()));
    }

    #[test]
    fn raw_identifiers_keep_their_prefix_at_call_sites() {
        // `r#type(…)` is a call to a function literally named `type`; the
        // token must keep the `r#` so downstream keyword filters cannot
        // mistake it for the `type` keyword and drop the call edge.
        let toks = kinds("fn r#type(x: u8) {}\nr#type(3); r#match();");
        let raws: Vec<&str> = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Ident && t.starts_with("r#"))
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(raws, vec!["r#type", "r#type", "r#match"]);
        // …and a raw string is still a literal, not a raw identifier.
        let toks = kinds(r###"let s = r#"not ident"#;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("not ident")));
    }

    #[test]
    fn shift_right_in_generics_stays_two_closers() {
        // `Vec<Vec<u8>>` must lex as two separate `>` puncts — a combined
        // `>>` token would unbalance generic tracking at call-site
        // boundaries (`collect::<Vec<Vec<u8>>>(…)`) and drop the edge.
        let toks = kinds("f::<Vec<Vec<u8>>>(x); a >> b");
        let closers = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Punct && t == ">")
            .count();
        assert_eq!(closers, 5, "3 generic closers + 2 shift chars");
        assert!(
            !toks.iter().any(|(_, t)| t == ">>"),
            "no fused shift token"
        );
        // The argument paren after the turbofish is still reachable.
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Punct && t == "("));
    }
}
