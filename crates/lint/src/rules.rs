//! The eight SONIC invariant rules (DESIGN.md §9 and §15).
//!
//! | id | slug             | invariant                                           |
//! |----|------------------|-----------------------------------------------------|
//! | R1 | no-alloc         | `*_into` / `// lint: no-alloc` fns never allocate,  |
//! |    |                  | directly **or through any reachable callee**        |
//! | R2 | reference-parity | `foo`/`foo_reference` twins share a parity test     |
//! | R3 | determinism      | no wall clock / thread_rng / hash-order in sim,     |
//! |    |                  | fault injection, or the broadcast server — nor in   |
//! |    |                  | any helper those scopes reach                       |
//! | R4 | panic-free       | no unwrap/expect/panic in the decode chain, nor in  |
//! |    |                  | any helper the decode chain reaches                 |
//! | R5 | unit-hygiene     | magic Hz/rate literals only behind named constants  |
//! | R6 | safety-comment   | every `unsafe` carries a `// SAFETY:` line          |
//! | R7 | wire-totality    | every `net::proto` message variant is encoded,      |
//! |    |                  | decoded, and named in a round-trip test             |
//! | R8 | lossy-cast       | truncating/wrapping `as` casts in `net`/`fec`/      |
//! |    |                  | `dsp::simd` need `// lint: checked-cast`            |
//!
//! R1/R3/R4 run twice: lexically (the construct itself, inside the scoped
//! file or fn) and **transitively** over the [`crate::graph`] call graph —
//! a violation anywhere in the reachable non-test callee set flags the
//! root, and the diagnostic prints the full call chain
//! (`fm_rx_page → demap_soft → Vec::push`) so it is actionable.

use crate::graph::{self, CallGraph};
use crate::lexer::TokenKind;
use crate::scan::ScannedFile;
use std::collections::{BTreeMap, BTreeSet};

/// Rule identity; order is the R1–R8 numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1 — allocation banned in hot-path functions (transitive).
    NoAlloc,
    /// R2 — `foo` / `foo_reference` must be exercised together by a test.
    ReferenceParity,
    /// R3 — nondeterminism sources banned in sim/faults/server (transitive).
    Determinism,
    /// R4 — panicking constructs banned in the decode chain (transitive).
    PanicFree,
    /// R5 — magic sample-rate/subcarrier literals must be named constants.
    UnitHygiene,
    /// R6 — `unsafe` requires a `// SAFETY:` comment.
    SafetyComment,
    /// R7 — wire-protocol totality: every `net::proto` variant must appear
    /// on the encode path, the decode path, and in a round-trip test.
    WireTotality,
    /// R8 — lossy `as` casts in wire/FEC/SIMD code need justification.
    LossyCast,
}

impl Rule {
    /// Short id, `R1`–`R8`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoAlloc => "R1",
            Rule::ReferenceParity => "R2",
            Rule::Determinism => "R3",
            Rule::PanicFree => "R4",
            Rule::UnitHygiene => "R5",
            Rule::SafetyComment => "R6",
            Rule::WireTotality => "R7",
            Rule::LossyCast => "R8",
        }
    }

    /// Human slug used in diagnostics and `// lint: allow(...)`.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::NoAlloc => "no-alloc",
            Rule::ReferenceParity => "reference-parity",
            Rule::Determinism => "determinism",
            Rule::PanicFree => "panic-free",
            Rule::UnitHygiene => "unit-hygiene",
            Rule::SafetyComment => "safety-comment",
            Rule::WireTotality => "wire-totality",
            Rule::LossyCast => "lossy-cast",
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Violated rule.
    pub rule: Rule,
    /// Stable matching key for the baseline. Lexical findings key on the
    /// offending token/fn name; transitive findings key on the full call
    /// chain (`render_into→helper→Vec::new`) so a finding survives line
    /// drift but dies when the chain is broken.
    pub key: String,
    /// Human-readable message (transitive messages embed the chain).
    pub message: String,
    /// Call chain for transitive findings, root first, sink construct
    /// last; empty for purely lexical findings.
    pub chain: Vec<String>,
}

/// Allocation constructs banned in no-alloc fns (R1): `Type::method` paths.
const R1_PATHS: &[(&str, &str)] = &[("Vec", "new"), ("Vec", "with_capacity"), ("Box", "new")];
/// R1: banned macro invocations.
const R1_MACROS: &[&str] = &["vec", "format"];
/// R1: banned method calls (`.name(` or `.name::<…>(`).
const R1_METHODS: &[&str] = &["push", "collect", "to_vec", "clone", "to_owned", "extend"];

/// Idents banned outright in deterministic scopes (R3).
const R3_IDENTS: &[&str] = &["HashMap", "HashSet", "SystemTime", "thread_rng"];

/// Panicking macros banned in the decode chain (R4).
const R4_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Panicking methods banned in the decode chain (R4).
const R4_METHODS: &[&str] = &["unwrap", "expect"];

/// Magic SONIC unit literals (Hz, bps, rates) that must come from a named
/// constant (R5). Values compared numerically after separator stripping, so
/// `228_000`, `228000` and `228_000.0` all match.
const R5_MAGIC: &[f64] = &[
    228_000.0, // MPX composite rate
    57_000.0,  // RDS subcarrier
    38_000.0,  // stereo DSB subcarrier
    23_000.0,  // stereo band lower edge
    53_000.0,  // stereo band upper edge
    19_000.0,  // stereo pilot
    15_000.0,  // mono band top
    44_100.0,  // audio rate
    75_000.0,  // FM deviation
    1_187.5,   // RDS bit rate
];

/// Paths (prefix or exact) in scope for R3 determinism.
fn r3_in_scope(path: &str) -> bool {
    path.starts_with("crates/sim/src/")
        || path == "crates/radio/src/faults.rs"
        || path.starts_with("crates/core/src/server/")
        || path.starts_with("crates/core/src/net/")
}

/// Paths in scope for R4 panic-freedom (the decode chain).
fn r4_in_scope(path: &str) -> bool {
    path.starts_with("crates/modem/src/")
        || path.starts_with("crates/fec/src/")
        || path.starts_with("crates/image/src/")
        || path.starts_with("crates/radio/src/")
        || path == "crates/core/src/reassembly.rs"
        || path.starts_with("crates/core/src/net/")
        || path == "crates/core/src/server/cluster.rs"
}

/// Paths in scope for R5 unit hygiene (library source of every crate).
fn r5_in_scope(path: &str) -> bool {
    path.starts_with("crates/") && path.contains("/src/")
}

/// Paths in scope for R7 wire totality (the wire protocol definition).
fn r7_in_scope(path: &str) -> bool {
    path.ends_with("net/proto.rs")
}

/// Paths in scope for R8 lossy-cast hygiene: the wire boundary, the FEC
/// math and the SIMD kernels — the places where a silent truncation
/// corrupts data instead of crashing.
fn r8_in_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/net/")
        || path.starts_with("crates/fec/src/")
        || path == "crates/dsp/src/simd.rs"
        || path.starts_with("crates/dsp/src/simd/")
}

/// Runs all eight rules over the scanned files and returns sorted findings.
/// `// lint: allow(...)` suppressions are already honoured. The
/// interprocedural pass (transitive R1/R3/R4, R7) builds the call graph
/// internally; use [`crate::graph::build`] directly for `--graph-stats`.
pub fn analyze(files: &[ScannedFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        rule_no_alloc(f, &mut out);
        rule_determinism(f, &mut out);
        rule_panic_free(f, &mut out);
        rule_unit_hygiene(f, &mut out);
        rule_safety_comment(f, &mut out);
        rule_lossy_cast(f, &mut out);
    }
    rule_reference_parity(files, &mut out);
    let g = graph::build(files);
    rule_transitive(files, &g, &mut out);
    rule_wire_totality(files, &g, &mut out);
    out.retain(|fi| {
        let file = files.iter().find(|f| f.path == fi.file);
        !file.map(|f| f.allowed(fi.rule.id(), fi.rule.slug(), fi.line)).unwrap_or(false)
    });
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.key).cmp(&(&b.file, b.line, b.rule, &b.key))
    });
    out
}

fn push_finding(out: &mut Vec<Finding>, f: &ScannedFile, line: u32, rule: Rule, key: &str, msg: String) {
    out.push(Finding {
        file: f.path.clone(),
        line,
        rule,
        key: key.to_string(),
        message: msg,
        chain: Vec::new(),
    });
}

/// R1: walk tokens inside no-alloc fns, match allocation constructs.
fn rule_no_alloc(f: &ScannedFile, out: &mut Vec<Finding>) {
    for (i, tok) in f.tokens.iter().enumerate() {
        let ctx = &f.ctx[i];
        if !ctx.fn_no_alloc || ctx.in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        let fname = ctx.fn_name.as_deref().unwrap_or("?");
        let next = f.tokens.get(i + 1);
        let next2 = f.tokens.get(i + 2);
        // `vec!` / `format!`
        if R1_MACROS.contains(&tok.text.as_str()) && next.map(|t| t.is_punct("!")).unwrap_or(false)
        {
            let key = format!("{}!", tok.text);
            push_finding(out, f, tok.line, Rule::NoAlloc, &key,
                format!("`{key}` allocates inside no-alloc fn `{fname}`"));
            continue;
        }
        // `Vec::new` / `Vec::with_capacity` / `Box::new`
        if next.map(|t| t.is_punct("::")).unwrap_or(false) {
            if let Some(m) = next2 {
                if m.kind == TokenKind::Ident
                    && R1_PATHS.iter().any(|(ty, me)| *ty == tok.text && *me == m.text)
                {
                    let key = format!("{}::{}", tok.text, m.text);
                    push_finding(out, f, tok.line, Rule::NoAlloc, &key,
                        format!("`{key}` allocates inside no-alloc fn `{fname}`"));
                    continue;
                }
            }
        }
        // `.push(` / `.collect(` / `.collect::<…>(` / `.clone()` …
        let prev_is_dot = i > 0 && f.tokens[i - 1].is_punct(".");
        if prev_is_dot
            && R1_METHODS.contains(&tok.text.as_str())
            && next.map(|t| t.is_punct("(") || t.is_punct("::")).unwrap_or(false)
        {
            let key = format!(".{}", tok.text);
            push_finding(out, f, tok.line, Rule::NoAlloc, &key,
                format!("`{key}(…)` may allocate inside no-alloc fn `{fname}`"));
        }
    }
}

/// R2: every non-test `foo_reference` with a `foo` twin must appear together
/// with `foo` in at least one test/property region somewhere in the
/// workspace.
fn rule_reference_parity(files: &[ScannedFile], out: &mut Vec<Finding>) {
    // All non-test fn definitions by name.
    let mut defs: BTreeMap<&str, (&ScannedFile, u32)> = BTreeMap::new();
    for f in files {
        for d in &f.fns {
            if !d.in_test {
                defs.entry(d.name.as_str()).or_insert((f, d.line));
            }
        }
    }
    // Per-file set of identifiers appearing in test regions.
    let mut test_idents: Vec<BTreeSet<&str>> = Vec::with_capacity(files.len());
    for f in files {
        let mut set = BTreeSet::new();
        for (i, tok) in f.tokens.iter().enumerate() {
            if tok.kind == TokenKind::Ident && f.ctx[i].in_test {
                set.insert(tok.text.as_str());
            }
        }
        test_idents.push(set);
    }
    for (name, (f, line)) in &defs {
        let Some(base) = name.strip_suffix("_reference") else {
            continue;
        };
        if !defs.contains_key(base) {
            continue; // no twin — e.g. a test helper that happens to match
        }
        let paired = test_idents
            .iter()
            .any(|set| set.contains(name) && set.contains(base));
        if !paired {
            push_finding(out, f, *line, Rule::ReferenceParity, base,
                format!("`{base}` and `{name}` are never exercised together in any test/property file"));
        }
    }
}

/// R3: wall clocks, thread RNG and hash-ordered containers banned in the
/// deterministic scopes.
fn rule_determinism(f: &ScannedFile, out: &mut Vec<Finding>) {
    if !r3_in_scope(&f.path) {
        return;
    }
    for (i, tok) in f.tokens.iter().enumerate() {
        if f.ctx[i].in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        if R3_IDENTS.contains(&tok.text.as_str()) {
            let hint = match tok.text.as_str() {
                "HashMap" => "use BTreeMap: iteration order must not depend on the hasher",
                "HashSet" => "use BTreeSet: iteration order must not depend on the hasher",
                "SystemTime" => "use simulated time: results must be a pure function of the seed",
                _ => "use a seeded RNG threaded from the experiment seed",
            };
            push_finding(out, f, tok.line, Rule::Determinism, &tok.text,
                format!("`{}` in deterministic scope — {hint}", tok.text));
            continue;
        }
        // `Instant::now`
        if tok.text == "Instant"
            && f.tokens.get(i + 1).map(|t| t.is_punct("::")).unwrap_or(false)
            && f.tokens.get(i + 2).map(|t| t.is_ident("now")).unwrap_or(false)
        {
            push_finding(out, f, tok.line, Rule::Determinism, "Instant::now",
                "`Instant::now` in deterministic scope — wall-clock reads break seeded reproducibility".to_string());
        }
    }
}

/// R4: unwrap/expect/panic-family banned in decode-chain production code.
fn rule_panic_free(f: &ScannedFile, out: &mut Vec<Finding>) {
    if !r4_in_scope(&f.path) {
        return;
    }
    for (i, tok) in f.tokens.iter().enumerate() {
        if f.ctx[i].in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        let next = f.tokens.get(i + 1);
        if R4_MACROS.contains(&tok.text.as_str())
            && next.map(|t| t.is_punct("!")).unwrap_or(false)
        {
            let key = format!("{}!", tok.text);
            push_finding(out, f, tok.line, Rule::PanicFree, &key,
                format!("`{key}` in the decode chain — degrade with a typed error instead of dying"));
            continue;
        }
        let prev_is_dot = i > 0 && f.tokens[i - 1].is_punct(".");
        if prev_is_dot
            && R4_METHODS.contains(&tok.text.as_str())
            && next.map(|t| t.is_punct("(")).unwrap_or(false)
        {
            let key = format!(".{}", tok.text);
            push_finding(out, f, tok.line, Rule::PanicFree, &key,
                format!("`{key}(…)` in the decode chain — propagate the error, a corrupt frame must not kill the receiver"));
        }
    }
}

/// R5: magic unit literals outside `const`/`static` definitions.
fn rule_unit_hygiene(f: &ScannedFile, out: &mut Vec<Finding>) {
    if !r5_in_scope(&f.path) {
        return;
    }
    for (i, tok) in f.tokens.iter().enumerate() {
        if f.ctx[i].in_test || tok.kind != TokenKind::Number {
            continue;
        }
        let Some(v) = parse_number(&tok.text) else {
            continue;
        };
        if !R5_MAGIC.contains(&v) {
            continue;
        }
        if in_const_definition(f, i) {
            continue;
        }
        let key = normalize_number(&tok.text);
        push_finding(out, f, tok.line, Rule::UnitHygiene, &key,
            format!("magic unit literal `{}` — use the named constant (AUDIO_RATE, MPX_RATE, PILOT_HZ, …)", tok.text));
    }
}

/// R6: `unsafe` without a `// SAFETY:` comment within the 3 preceding lines.
fn rule_safety_comment(f: &ScannedFile, out: &mut Vec<Finding>) {
    for tok in f.tokens.iter() {
        if tok.kind != TokenKind::Ident || tok.text != "unsafe" {
            continue;
        }
        let covered = f
            .safety_comment_lines
            .iter()
            .any(|&l| l <= tok.line && l + 3 >= tok.line);
        if !covered {
            push_finding(out, f, tok.line, Rule::SafetyComment, "unsafe",
                "`unsafe` without a `// SAFETY:` comment on the preceding lines".to_string());
        }
    }
}

// ---------------------------------------------------------------------------
// Interprocedural pass: transitive R1/R3/R4, R7 wire totality
// ---------------------------------------------------------------------------

/// The first banned construct of each kind found in one fn body
/// (construct key + line). Computed per graph node; `// lint: allow(...)`
/// at the sink suppresses every chain through it.
#[derive(Debug, Default)]
struct Sinks {
    alloc: Option<(String, u32)>,
    det: Option<(String, u32)>,
    panics: Option<(String, u32)>,
}

/// Scans one node's body for R1/R3/R4 sink constructs, ignoring scope (the
/// transitive pass decides scope at the *root*).
fn body_sinks(f: &ScannedFile, toks: &[usize]) -> Sinks {
    let mut s = Sinks::default();
    for (k, &i) in toks.iter().enumerate() {
        let tok = &f.tokens[i];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let next = toks.get(k + 1).map(|&j| &f.tokens[j]);
        let prev_is_dot = k > 0 && f.tokens[toks[k - 1]].is_punct(".");
        let next2 = toks.get(k + 2).map(|&j| &f.tokens[j]);

        // R1 alloc constructs.
        if s.alloc.is_none() && !f.allowed("R1", "no-alloc", tok.line) {
            if R1_MACROS.contains(&tok.text.as_str())
                && next.map(|t| t.is_punct("!")).unwrap_or(false)
            {
                s.alloc = Some((format!("{}!", tok.text), tok.line));
            } else if next.map(|t| t.is_punct("::")).unwrap_or(false)
                && next2
                    .map(|m| {
                        m.kind == TokenKind::Ident
                            && R1_PATHS.iter().any(|(ty, me)| *ty == tok.text && *me == m.text)
                    })
                    .unwrap_or(false)
            {
                s.alloc = Some((
                    format!("{}::{}", tok.text, next2.map(|m| m.text.as_str()).unwrap_or("")),
                    tok.line,
                ));
            } else if prev_is_dot
                && R1_METHODS.contains(&tok.text.as_str())
                && next.map(|t| t.is_punct("(") || t.is_punct("::")).unwrap_or(false)
            {
                s.alloc = Some((format!(".{}", tok.text), tok.line));
            }
        }

        // R3 determinism sinks.
        if s.det.is_none() && !f.allowed("R3", "determinism", tok.line) {
            if R3_IDENTS.contains(&tok.text.as_str()) {
                s.det = Some((tok.text.clone(), tok.line));
            } else if tok.text == "Instant"
                && next.map(|t| t.is_punct("::")).unwrap_or(false)
                && next2.map(|t| t.is_ident("now")).unwrap_or(false)
            {
                s.det = Some(("Instant::now".to_string(), tok.line));
            }
        }

        // R4 panic sinks.
        if s.panics.is_none() && !f.allowed("R4", "panic-free", tok.line) {
            if R4_MACROS.contains(&tok.text.as_str())
                && next.map(|t| t.is_punct("!")).unwrap_or(false)
            {
                s.panics = Some((format!("{}!", tok.text), tok.line));
            } else if prev_is_dot
                && R4_METHODS.contains(&tok.text.as_str())
                && next.map(|t| t.is_punct("(")).unwrap_or(false)
            {
                s.panics = Some((format!(".{}", tok.text), tok.line));
            }
        }
    }
    s
}

/// Transitive R1/R3/R4 over the call graph. For each rule: roots are the
/// nodes the lexical rule scopes to, sinks are nodes (outside that lexical
/// scope — those are already flagged directly) whose bodies contain a
/// banned construct. A reverse BFS from the sinks records, per node, the
/// next hop toward the *nearest* sink; each root edge into the marked set
/// becomes one finding whose key and message carry the full chain.
fn rule_transitive(files: &[ScannedFile], g: &CallGraph, out: &mut Vec<Finding>) {
    let sinks: Vec<Sinks> = (0..g.fns.len())
        .map(|i| body_sinks(&files[g.fns[i].file], &g.body_tokens(files, i)))
        .collect();

    // Reverse adjacency once for all three rules, keeping call-site lines:
    // a `// lint: allow(<rule>)` on the call line *breaks the edge* for
    // that rule, so one suppression at a vetted call kills every chain
    // through it, not just the finding at one root.
    let mut rev: Vec<Vec<(usize, u32)>> = vec![Vec::new(); g.fns.len()];
    for (u, es) in g.edges.iter().enumerate() {
        for e in es {
            rev[e.to].push((u, e.line));
        }
    }

    type SinkGet = fn(&Sinks) -> Option<&(String, u32)>;
    type Pred = fn(&str, &crate::graph::FnNode) -> bool;
    let specs: [(Rule, SinkGet, Pred, Pred, &str); 3] = [
        (
            Rule::NoAlloc,
            |s| s.alloc.as_ref(),
            |_path, n| n.no_alloc,
            |_path, n| n.no_alloc,
            "allocates",
        ),
        (
            Rule::Determinism,
            |s| s.det.as_ref(),
            |path, _n| r3_in_scope(path),
            |path, _n| r3_in_scope(path),
            "is nondeterministic",
        ),
        (
            Rule::PanicFree,
            |s| s.panics.as_ref(),
            |path, _n| r4_in_scope(path),
            |path, _n| r4_in_scope(path),
            "can panic",
        ),
    ];

    for (rule, sink_of, is_root, lexically_covered, verb) in specs {
        // mark[v] = Some(next hop toward the nearest sink); the sink node
        // itself has next == v.
        let mut mark: Vec<Option<usize>> = vec![None; g.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for (v, s) in sinks.iter().enumerate() {
            let path = &files[g.fns[v].file].path;
            if sink_of(s).is_some() && !lexically_covered(path, &g.fns[v]) {
                mark[v] = Some(v);
                queue.push_back(v);
            }
        }
        while let Some(v) = queue.pop_front() {
            for &(u, line) in &rev[v] {
                if mark[u].is_none()
                    && !files[g.fns[u].file].allowed(rule.id(), rule.slug(), line)
                {
                    mark[u] = Some(v);
                    queue.push_back(u);
                }
            }
        }

        for (r, node) in g.fns.iter().enumerate() {
            let path = &files[node.file].path;
            if !is_root(path, node) {
                continue;
            }
            let mut seen_targets: BTreeSet<usize> = BTreeSet::new();
            for e in &g.edges[r] {
                if mark[e.to].is_none()
                    || files[node.file].allowed(rule.id(), rule.slug(), e.line)
                    || !seen_targets.insert(e.to)
                {
                    continue;
                }
                // Walk the successor pointers to the sink.
                let mut chain: Vec<String> = vec![node.display()];
                let mut cur = e.to;
                let mut sink_key = String::new();
                for _ in 0..g.fns.len() {
                    chain.push(g.fns[cur].display());
                    let next = match mark[cur] {
                        Some(n) => n,
                        None => break,
                    };
                    if next == cur {
                        if let Some((key, _)) = sink_of(&sinks[cur]) {
                            sink_key = key.clone();
                        }
                        break;
                    }
                    cur = next;
                }
                if sink_key.is_empty() {
                    continue;
                }
                chain.push(sink_key);
                let key = chain.join("→");
                let msg = format!(
                    "`{}` reaches `{}` which {} via {}",
                    node.display(),
                    chain[chain.len() - 2],
                    verb,
                    chain.join(" → "),
                );
                out.push(Finding {
                    file: files[node.file].path.clone(),
                    line: e.line,
                    rule,
                    key,
                    message: msg,
                    chain,
                });
            }
        }
    }
}

/// R7: every non-test enum variant declared in `net/proto.rs` must appear
/// in a fn body reachable from an `encode*` entry point, in one reachable
/// from a `decode*` entry point, and be named in at least one round-trip
/// test (a test region that also names an encode and a decode entry).
fn rule_wire_totality(files: &[ScannedFile], g: &CallGraph, out: &mut Vec<Finding>) {
    for (fi, f) in files.iter().enumerate() {
        if !r7_in_scope(&f.path) {
            continue;
        }
        let enc_entries = g.fns_in_file(fi, |n| n.name.starts_with("encode"));
        let dec_entries = g.fns_in_file(fi, |n| n.name.starts_with("decode"));
        let enc_names: BTreeSet<&str> =
            enc_entries.iter().map(|&i| g.fns[i].name.as_str()).collect();
        let dec_names: BTreeSet<&str> =
            dec_entries.iter().map(|&i| g.fns[i].name.as_str()).collect();

        let idents_reachable = |seeds: &[usize]| -> BTreeSet<String> {
            let reach = g.reachable_from(seeds);
            let mut set = BTreeSet::new();
            for (v, ok) in reach.iter().enumerate() {
                if !ok {
                    continue;
                }
                let vf = &files[g.fns[v].file];
                for i in g.body_tokens(files, v) {
                    if vf.tokens[i].kind == TokenKind::Ident {
                        set.insert(vf.tokens[i].text.clone());
                    }
                }
            }
            set
        };
        let enc_set = idents_reachable(&enc_entries);
        let dec_set = idents_reachable(&dec_entries);

        // Round-trip evidence: idents of test regions in files whose test
        // regions also name an encode entry and a decode entry.
        let mut rt_idents: BTreeSet<&str> = BTreeSet::new();
        for tf in files {
            let mut set: BTreeSet<&str> = BTreeSet::new();
            for (i, tok) in tf.tokens.iter().enumerate() {
                if tok.kind == TokenKind::Ident && tf.ctx[i].in_test {
                    set.insert(tok.text.as_str());
                }
            }
            if enc_names.iter().any(|n| set.contains(n))
                && dec_names.iter().any(|n| set.contains(n))
            {
                rt_idents.extend(set);
            }
        }

        for e in &f.enums {
            if e.in_test {
                continue;
            }
            for (v, vline) in &e.variants {
                let variant = format!("{}::{}", e.name, v);
                if !enc_set.contains(v) {
                    push_finding(out, f, *vline, Rule::WireTotality,
                        &format!("{variant}:encode"),
                        format!("wire variant `{variant}` never appears on the encode path — a peer can receive what this node cannot send"));
                }
                if !dec_set.contains(v) {
                    push_finding(out, f, *vline, Rule::WireTotality,
                        &format!("{variant}:decode"),
                        format!("wire variant `{variant}` never appears on the decode path — receiving it will fail as an unknown message"));
                }
                if !rt_idents.contains(v.as_str()) {
                    push_finding(out, f, *vline, Rule::WireTotality,
                        &format!("{variant}:round-trip"),
                        format!("wire variant `{variant}` is not named in any encode/decode round-trip test"));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R8: lossy-cast hygiene
// ---------------------------------------------------------------------------

/// Integer width in bits for source-side classification (floats mapped to
/// their mantissa-relevant width separately).
fn int_bits(ty: &str) -> Option<u32> {
    Some(match ty {
        "u8" | "i8" => 8,
        "u16" | "i16" => 16,
        "u32" | "i32" => 32,
        "u64" | "i64" | "usize" | "isize" => 64,
        "u128" | "i128" => 128,
        _ => return None,
    })
}

/// Cast targets R8 cares about (narrow enough to truncate something the
/// codebase actually produces).
fn narrow_target(ty: &str) -> bool {
    matches!(ty, "u8" | "u16" | "u32" | "i8" | "i16" | "i32" | "f32")
}

/// Max value exactly representable in the target (for literal/mask proofs).
fn target_max(ty: &str) -> Option<u128> {
    Some(match ty {
        "u8" => u8::MAX as u128,
        "u16" => u16::MAX as u128,
        "u32" => u32::MAX as u128,
        "i8" => i8::MAX as u128,
        "i16" => i16::MAX as u128,
        "i32" => i32::MAX as u128,
        "f32" => 1 << 24,
        _ => return None,
    })
}

/// Can a value of source type `src` lose information when cast to `tgt`?
fn cast_is_lossy(src: &str, tgt: &str) -> bool {
    if src == tgt {
        return false;
    }
    match (src, tgt) {
        ("f64", "f32") => true,
        ("f64" | "f32", _) => true, // float → narrow int truncates
        (_, "f32") => int_bits(src).map(|b| b > 24).unwrap_or(false),
        _ => match (int_bits(src), int_bits(tgt)) {
            (Some(s), Some(t)) => s > t,
            _ => false,
        },
    }
}

/// Parses an integer literal (decimal/hex/octal/binary, `_` separators,
/// type suffix) to its value.
fn parse_int_literal(text: &str) -> Option<u128> {
    let s: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(h) = s.strip_prefix("0x") {
        (h, 16)
    } else if let Some(o) = s.strip_prefix("0o") {
        (o, 8)
    } else if let Some(b) = s.strip_prefix("0b") {
        (b, 2)
    } else {
        (s.as_str(), 10)
    };
    let digits: String = digits
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric())
        .take_while(|c| c.is_digit(radix))
        .collect();
    if digits.is_empty() {
        return None;
    }
    u128::from_str_radix(&digits, radix).ok()
}

/// R8: `as` casts to narrow targets in wire/FEC/SIMD code. Lexical-only
/// type recovery: a cast is flagged when the *source* is provably wide —
/// a `.len()`/`.capacity()` chain (usize), an identifier whose type is
/// declared in the enclosing fn, an oversized literal — and stays silent
/// when the source type cannot be recovered (documented precision
/// trade-off, DESIGN.md §15). `// lint: checked-cast` suppresses.
fn rule_lossy_cast(f: &ScannedFile, out: &mut Vec<Finding>) {
    if !r8_in_scope(&f.path) {
        return;
    }
    // Local type environment: `name : prim` pairs anywhere in the file
    // (fn params, let bindings, struct fields — all count as evidence).
    let toks: Vec<usize> = (0..f.tokens.len())
        .filter(|&i| {
            !matches!(
                f.tokens[i].kind,
                TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let tok = |k: usize| toks.get(k).map(|&i| &f.tokens[i]);
    let mut env: BTreeMap<&str, &str> = BTreeMap::new();
    for k in 0..toks.len() {
        if let (Some(name), Some(colon), Some(ty)) = (tok(k), tok(k + 1), tok(k + 2)) {
            if name.kind == TokenKind::Ident
                && colon.is_punct(":")
                && ty.kind == TokenKind::Ident
                && int_bits(&ty.text).is_some()
                && !matches!(tok(k + 3), Some(t) if t.is_punct("<") || t.is_punct("::"))
            {
                env.insert(name.text.as_str(), ty.text.as_str());
            }
        }
    }

    // Lookaround-heavy scan: `k` indexes neighbors in both directions.
    #[allow(clippy::needless_range_loop)]
    for k in 0..toks.len() {
        let Some(t) = tok(k) else { continue };
        if !(t.is_ident("as")) || f.ctx[toks[k]].in_test {
            continue;
        }
        let Some(tgt) = tok(k + 1).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        if !narrow_target(&tgt.text) {
            continue;
        }
        let tgt_ty = tgt.text.as_str();
        let line = t.line;

        let Some(prev) = (k > 0).then(|| tok(k - 1)).flatten() else {
            continue;
        };

        let (src_desc, lossy) = match prev.kind {
            TokenKind::Number => {
                if prev.text.contains('.') {
                    // Decimal literal to f32 — representable enough.
                    continue;
                }
                match (parse_int_literal(&prev.text), target_max(tgt_ty)) {
                    (Some(v), Some(max)) if v <= max => continue,
                    (Some(_), _) => ("literal".to_string(), true),
                    _ => continue,
                }
            }
            TokenKind::Ident => {
                let field = k >= 2 && tok(k - 2).map(|t| t.is_punct(".")).unwrap_or(false);
                if field {
                    continue; // field type unknown
                }
                match env.get(prev.text.as_str()) {
                    Some(src) if cast_is_lossy(src, tgt_ty) => ((*src).to_string(), true),
                    _ => continue,
                }
            }
            TokenKind::Punct if prev.text == ")" => {
                // Walk back to the matching `(`.
                let mut depth = 1i32;
                let mut j = k - 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match tok(j) {
                        Some(t) if t.is_punct(")") => depth += 1,
                        Some(t) if t.is_punct("(") => depth -= 1,
                        _ => {}
                    }
                }
                if depth != 0 {
                    continue;
                }
                // `.len()` / `.capacity()` — usize at the wire boundary.
                let callee = (j >= 1).then(|| tok(j - 1)).flatten();
                let before = (j >= 2).then(|| tok(j - 2)).flatten();
                let is_len_chain = callee
                    .map(|c| c.is_ident("len") || c.is_ident("capacity"))
                    .unwrap_or(false)
                    && before.map(|b| b.is_punct(".")).unwrap_or(false);
                if is_len_chain {
                    ("usize".to_string(), cast_is_lossy("usize", tgt_ty))
                } else if callee.map(|c| c.kind == TokenKind::Ident).unwrap_or(false) {
                    continue; // some other call — return type unknown
                } else {
                    // Parenthesized expression: wide when it contains a
                    // known-wide identifier or a `.len()`/`.capacity()`
                    // chain; an in-range `& MASK` / `% MOD` at top level
                    // is accepted as a range proof.
                    let mut proof = false;
                    let mut wide: Option<String> = None;
                    let mut d = 0i32;
                    for m in j + 1..k - 1 {
                        let Some(t) = tok(m) else { continue };
                        if t.is_punct("(") {
                            d += 1;
                        } else if t.is_punct(")") {
                            d -= 1;
                        } else if d == 0
                            && (t.is_punct("&") || t.is_punct("%"))
                            && tok(m + 1).map(|n| n.kind == TokenKind::Number).unwrap_or(false)
                            && (m > j + 1
                                && tok(m - 1)
                                    .map(|p| {
                                        p.kind == TokenKind::Ident
                                            || p.kind == TokenKind::Number
                                            || p.is_punct(")")
                                            || p.is_punct("]")
                                    })
                                    .unwrap_or(false))
                        {
                            let bound = tok(m + 1).and_then(|n| parse_int_literal(&n.text));
                            if let (Some(b), Some(max)) = (bound, target_max(tgt_ty)) {
                                let fits = if t.is_punct("%") {
                                    b <= max.saturating_add(1)
                                } else {
                                    b <= max
                                };
                                if fits {
                                    proof = true;
                                }
                            }
                        } else if t.kind == TokenKind::Ident && wide.is_none() {
                            let after_dot =
                                m > j + 1 && tok(m - 1).map(|p| p.is_punct(".")).unwrap_or(false);
                            let called = tok(m + 1).map(|n| n.is_punct("(")).unwrap_or(false);
                            if after_dot && called && (t.text == "len" || t.text == "capacity") {
                                wide = Some("usize".to_string());
                            } else if !after_dot && !called {
                                if let Some(src) = env.get(t.text.as_str()) {
                                    if cast_is_lossy(src, tgt_ty) {
                                        wide = Some((*src).to_string());
                                    }
                                }
                            }
                        }
                    }
                    if proof {
                        continue;
                    }
                    match wide {
                        Some(src) => (src, true),
                        None => continue, // opaque — type unknown, stay silent
                    }
                }
            }
            _ => continue,
        };

        if !lossy {
            continue;
        }
        push_finding(out, f, line, Rule::LossyCast,
            &format!("{src_desc} as {tgt_ty}"),
            format!("`{src_desc} as {tgt_ty}` can truncate — add `// lint: checked-cast — <why>` after verifying the range"));
    }
}

/// Walks back from a magic literal looking for `const`/`static`, stopping at
/// statement/block boundaries. Covers multi-line const declarations and
/// const tables (`const EDGES: &[f64] = &[19_000.0, 23_000.0, …];`).
fn in_const_definition(f: &ScannedFile, idx: usize) -> bool {
    let mut steps = 0usize;
    let mut i = idx;
    while i > 0 && steps < 64 {
        i -= 1;
        let t = &f.tokens[i];
        if t.kind == TokenKind::LineComment || t.kind == TokenKind::BlockComment {
            continue; // comments don't bound the declaration
        }
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return false;
        }
        if t.is_ident("const") || t.is_ident("static") {
            return true;
        }
        steps += 1;
    }
    false
}

/// Parses a numeric literal to f64: strips `_` separators and any type
/// suffix; returns None for hex/octal/binary (never unit literals).
fn parse_number(text: &str) -> Option<f64> {
    let s: String = text.chars().filter(|&c| c != '_').collect();
    if s.starts_with("0x") || s.starts_with("0o") || s.starts_with("0b") {
        return None;
    }
    // Strip a type suffix (`f64`, `u32`, …): cut at the first alphabetic
    // char that is not an exponent `e`/`E` followed by digits/sign.
    let bytes: Vec<char> = s.chars().collect();
    let mut end = bytes.len();
    for (i, &c) in bytes.iter().enumerate() {
        if c.is_alphabetic() {
            if (c == 'e' || c == 'E')
                && bytes
                    .get(i + 1)
                    .map(|&n| n.is_ascii_digit() || n == '+' || n == '-')
                    .unwrap_or(false)
            {
                continue;
            }
            end = i;
            break;
        }
    }
    s[..s.char_indices().nth(end).map(|(b, _)| b).unwrap_or(s.len())]
        .parse::<f64>()
        .ok()
}

/// Canonical baseline key for a magic literal: underscores stripped,
/// trailing `.0` dropped (`228_000.0` → `228000`).
fn normalize_number(text: &str) -> String {
    let s: String = text.chars().filter(|&c| c != '_').collect();
    let s = s.trim_end_matches(|c: char| c.is_alphabetic()).to_string();
    match s.strip_suffix(".0") {
        Some(head) => head.to_string(),
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        analyze(&[scan(path, src)])
    }

    #[test]
    fn r1_flags_alloc_in_into_fn() {
        let src = "fn render_into(out: &mut Vec<u8>) {\n let v = Vec::new();\n let w = vec![0u8; 4];\n}";
        let f = findings("crates/x/src/lib.rs", src);
        let keys: Vec<&str> = f.iter().map(|x| x.key.as_str()).collect();
        assert!(keys.contains(&"Vec::new"));
        assert!(keys.contains(&"vec!"));
    }

    #[test]
    fn r1_ignores_plain_fns_and_tests() {
        let src = "fn normal() { let v = Vec::new(); }\n#[cfg(test)]\nmod t {\n fn x_into(o: &mut V) { o.push(1); }\n}";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn r3_only_fires_in_scope() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        assert_eq!(findings("crates/sim/src/foo.rs", src).len(), 3);
        assert!(findings("crates/dsp/src/foo.rs", src).is_empty());
    }

    #[test]
    fn r4_methods_need_dot() {
        // A fn *named* unwrap, or an ident `expect` without `.`, is fine.
        let src = "fn unwrap() {}\nfn g() { let expect = 3; h(expect); }";
        assert!(findings("crates/fec/src/foo.rs", src).is_empty());
        let bad = "fn g(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(findings("crates/fec/src/foo.rs", bad).len(), 1);
    }

    #[test]
    fn r5_allows_const_definitions() {
        let good = "pub const MPX_RATE: f64 = 228_000.0;\npub const RDS_BPS: f64 =\n    1_187.5;";
        assert!(findings("crates/radio/src/lib.rs", good).is_empty());
        let bad = "fn f() -> f64 { 228_000.0 }";
        let f = findings("crates/radio/src/lib.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].key, "228000");
    }

    #[test]
    fn r6_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(findings("crates/x/src/lib.rs", bad).len(), 1);
        let good = "fn f(p: *const u8) -> u8 {\n // SAFETY: caller guarantees p is valid\n unsafe { *p }\n}";
        assert!(findings("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "fn f() -> f64 {\n // lint: allow(unit-hygiene)\n 228_000.0\n}";
        assert!(findings("crates/radio/src/lib.rs", src).is_empty());
    }

    #[test]
    fn r2_needs_joint_test() {
        let lib = scan(
            "crates/x/src/lib.rs",
            "pub fn fast(x: u8) -> u8 { x }\npub fn fast_reference(x: u8) -> u8 { x }",
        );
        let f = analyze(&[lib]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ReferenceParity);

        let lib = scan(
            "crates/x/src/lib.rs",
            "pub fn fast(x: u8) -> u8 { x }\npub fn fast_reference(x: u8) -> u8 { x }",
        );
        let test = scan(
            "crates/x/tests/parity.rs",
            "#[test]\nfn parity() { assert_eq!(fast(1), fast_reference(1)); }",
        );
        assert!(analyze(&[lib, test]).is_empty());
    }
}
