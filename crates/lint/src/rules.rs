//! The six SONIC invariant rules (DESIGN.md §9).
//!
//! | id | slug             | invariant                                           |
//! |----|------------------|-----------------------------------------------------|
//! | R1 | no-alloc         | `*_into` / `// lint: no-alloc` fns never allocate   |
//! | R2 | reference-parity | `foo`/`foo_reference` twins share a parity test     |
//! | R3 | determinism      | no wall clock / thread_rng / hash-order in sim,     |
//! |    |                  | fault injection, or the broadcast server            |
//! | R4 | panic-free       | no unwrap/expect/panic in the decode chain          |
//! | R5 | unit-hygiene     | magic Hz/rate literals only behind named constants  |
//! | R6 | safety-comment   | every `unsafe` carries a `// SAFETY:` line          |

use crate::lexer::TokenKind;
use crate::scan::ScannedFile;
use std::collections::{BTreeMap, BTreeSet};

/// Rule identity; order is the R1–R6 numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1 — allocation banned in hot-path functions.
    NoAlloc,
    /// R2 — `foo` / `foo_reference` must be exercised together by a test.
    ReferenceParity,
    /// R3 — nondeterminism sources banned in sim/faults/server.
    Determinism,
    /// R4 — panicking constructs banned in the decode chain.
    PanicFree,
    /// R5 — magic sample-rate/subcarrier literals must be named constants.
    UnitHygiene,
    /// R6 — `unsafe` requires a `// SAFETY:` comment.
    SafetyComment,
}

impl Rule {
    /// Short id, `R1`–`R6`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoAlloc => "R1",
            Rule::ReferenceParity => "R2",
            Rule::Determinism => "R3",
            Rule::PanicFree => "R4",
            Rule::UnitHygiene => "R5",
            Rule::SafetyComment => "R6",
        }
    }

    /// Human slug used in diagnostics and `// lint: allow(...)`.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::NoAlloc => "no-alloc",
            Rule::ReferenceParity => "reference-parity",
            Rule::Determinism => "determinism",
            Rule::PanicFree => "panic-free",
            Rule::UnitHygiene => "unit-hygiene",
            Rule::SafetyComment => "safety-comment",
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Violated rule.
    pub rule: Rule,
    /// Stable matching key for the baseline (token or fn name — survives
    /// line drift as the file is edited).
    pub key: String,
    /// Human-readable message.
    pub message: String,
}

/// Allocation constructs banned in no-alloc fns (R1): `Type::method` paths.
const R1_PATHS: &[(&str, &str)] = &[("Vec", "new"), ("Vec", "with_capacity"), ("Box", "new")];
/// R1: banned macro invocations.
const R1_MACROS: &[&str] = &["vec", "format"];
/// R1: banned method calls (`.name(` or `.name::<…>(`).
const R1_METHODS: &[&str] = &["push", "collect", "to_vec", "clone", "to_owned", "extend"];

/// Idents banned outright in deterministic scopes (R3).
const R3_IDENTS: &[&str] = &["HashMap", "HashSet", "SystemTime", "thread_rng"];

/// Panicking macros banned in the decode chain (R4).
const R4_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Panicking methods banned in the decode chain (R4).
const R4_METHODS: &[&str] = &["unwrap", "expect"];

/// Magic SONIC unit literals (Hz, bps, rates) that must come from a named
/// constant (R5). Values compared numerically after separator stripping, so
/// `228_000`, `228000` and `228_000.0` all match.
const R5_MAGIC: &[f64] = &[
    228_000.0, // MPX composite rate
    57_000.0,  // RDS subcarrier
    38_000.0,  // stereo DSB subcarrier
    23_000.0,  // stereo band lower edge
    53_000.0,  // stereo band upper edge
    19_000.0,  // stereo pilot
    15_000.0,  // mono band top
    44_100.0,  // audio rate
    75_000.0,  // FM deviation
    1_187.5,   // RDS bit rate
];

/// Paths (prefix or exact) in scope for R3 determinism.
fn r3_in_scope(path: &str) -> bool {
    path.starts_with("crates/sim/src/")
        || path == "crates/radio/src/faults.rs"
        || path.starts_with("crates/core/src/server/")
        || path.starts_with("crates/core/src/net/")
}

/// Paths in scope for R4 panic-freedom (the decode chain).
fn r4_in_scope(path: &str) -> bool {
    path.starts_with("crates/modem/src/")
        || path.starts_with("crates/fec/src/")
        || path.starts_with("crates/image/src/")
        || path.starts_with("crates/radio/src/")
        || path == "crates/core/src/reassembly.rs"
        || path.starts_with("crates/core/src/net/")
        || path == "crates/core/src/server/cluster.rs"
}

/// Paths in scope for R5 unit hygiene (library source of every crate).
fn r5_in_scope(path: &str) -> bool {
    path.starts_with("crates/") && path.contains("/src/")
}

/// Runs all six rules over the scanned files and returns sorted findings.
/// `// lint: allow(...)` suppressions are already honoured.
pub fn analyze(files: &[ScannedFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        rule_no_alloc(f, &mut out);
        rule_determinism(f, &mut out);
        rule_panic_free(f, &mut out);
        rule_unit_hygiene(f, &mut out);
        rule_safety_comment(f, &mut out);
    }
    rule_reference_parity(files, &mut out);
    out.retain(|fi| {
        let file = files.iter().find(|f| f.path == fi.file);
        !file.map(|f| f.allowed(fi.rule.id(), fi.rule.slug(), fi.line)).unwrap_or(false)
    });
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.key).cmp(&(&b.file, b.line, b.rule, &b.key))
    });
    out
}

fn push_finding(out: &mut Vec<Finding>, f: &ScannedFile, line: u32, rule: Rule, key: &str, msg: String) {
    out.push(Finding {
        file: f.path.clone(),
        line,
        rule,
        key: key.to_string(),
        message: msg,
    });
}

/// R1: walk tokens inside no-alloc fns, match allocation constructs.
fn rule_no_alloc(f: &ScannedFile, out: &mut Vec<Finding>) {
    for (i, tok) in f.tokens.iter().enumerate() {
        let ctx = &f.ctx[i];
        if !ctx.fn_no_alloc || ctx.in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        let fname = ctx.fn_name.as_deref().unwrap_or("?");
        let next = f.tokens.get(i + 1);
        let next2 = f.tokens.get(i + 2);
        // `vec!` / `format!`
        if R1_MACROS.contains(&tok.text.as_str()) && next.map(|t| t.is_punct("!")).unwrap_or(false)
        {
            let key = format!("{}!", tok.text);
            push_finding(out, f, tok.line, Rule::NoAlloc, &key,
                format!("`{key}` allocates inside no-alloc fn `{fname}`"));
            continue;
        }
        // `Vec::new` / `Vec::with_capacity` / `Box::new`
        if next.map(|t| t.is_punct("::")).unwrap_or(false) {
            if let Some(m) = next2 {
                if m.kind == TokenKind::Ident
                    && R1_PATHS.iter().any(|(ty, me)| *ty == tok.text && *me == m.text)
                {
                    let key = format!("{}::{}", tok.text, m.text);
                    push_finding(out, f, tok.line, Rule::NoAlloc, &key,
                        format!("`{key}` allocates inside no-alloc fn `{fname}`"));
                    continue;
                }
            }
        }
        // `.push(` / `.collect(` / `.collect::<…>(` / `.clone()` …
        let prev_is_dot = i > 0 && f.tokens[i - 1].is_punct(".");
        if prev_is_dot
            && R1_METHODS.contains(&tok.text.as_str())
            && next.map(|t| t.is_punct("(") || t.is_punct("::")).unwrap_or(false)
        {
            let key = format!(".{}", tok.text);
            push_finding(out, f, tok.line, Rule::NoAlloc, &key,
                format!("`{key}(…)` may allocate inside no-alloc fn `{fname}`"));
        }
    }
}

/// R2: every non-test `foo_reference` with a `foo` twin must appear together
/// with `foo` in at least one test/property region somewhere in the
/// workspace.
fn rule_reference_parity(files: &[ScannedFile], out: &mut Vec<Finding>) {
    // All non-test fn definitions by name.
    let mut defs: BTreeMap<&str, (&ScannedFile, u32)> = BTreeMap::new();
    for f in files {
        for d in &f.fns {
            if !d.in_test {
                defs.entry(d.name.as_str()).or_insert((f, d.line));
            }
        }
    }
    // Per-file set of identifiers appearing in test regions.
    let mut test_idents: Vec<BTreeSet<&str>> = Vec::with_capacity(files.len());
    for f in files {
        let mut set = BTreeSet::new();
        for (i, tok) in f.tokens.iter().enumerate() {
            if tok.kind == TokenKind::Ident && f.ctx[i].in_test {
                set.insert(tok.text.as_str());
            }
        }
        test_idents.push(set);
    }
    for (name, (f, line)) in &defs {
        let Some(base) = name.strip_suffix("_reference") else {
            continue;
        };
        if !defs.contains_key(base) {
            continue; // no twin — e.g. a test helper that happens to match
        }
        let paired = test_idents
            .iter()
            .any(|set| set.contains(name) && set.contains(base));
        if !paired {
            push_finding(out, f, *line, Rule::ReferenceParity, base,
                format!("`{base}` and `{name}` are never exercised together in any test/property file"));
        }
    }
}

/// R3: wall clocks, thread RNG and hash-ordered containers banned in the
/// deterministic scopes.
fn rule_determinism(f: &ScannedFile, out: &mut Vec<Finding>) {
    if !r3_in_scope(&f.path) {
        return;
    }
    for (i, tok) in f.tokens.iter().enumerate() {
        if f.ctx[i].in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        if R3_IDENTS.contains(&tok.text.as_str()) {
            let hint = match tok.text.as_str() {
                "HashMap" => "use BTreeMap: iteration order must not depend on the hasher",
                "HashSet" => "use BTreeSet: iteration order must not depend on the hasher",
                "SystemTime" => "use simulated time: results must be a pure function of the seed",
                _ => "use a seeded RNG threaded from the experiment seed",
            };
            push_finding(out, f, tok.line, Rule::Determinism, &tok.text,
                format!("`{}` in deterministic scope — {hint}", tok.text));
            continue;
        }
        // `Instant::now`
        if tok.text == "Instant"
            && f.tokens.get(i + 1).map(|t| t.is_punct("::")).unwrap_or(false)
            && f.tokens.get(i + 2).map(|t| t.is_ident("now")).unwrap_or(false)
        {
            push_finding(out, f, tok.line, Rule::Determinism, "Instant::now",
                "`Instant::now` in deterministic scope — wall-clock reads break seeded reproducibility".to_string());
        }
    }
}

/// R4: unwrap/expect/panic-family banned in decode-chain production code.
fn rule_panic_free(f: &ScannedFile, out: &mut Vec<Finding>) {
    if !r4_in_scope(&f.path) {
        return;
    }
    for (i, tok) in f.tokens.iter().enumerate() {
        if f.ctx[i].in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        let next = f.tokens.get(i + 1);
        if R4_MACROS.contains(&tok.text.as_str())
            && next.map(|t| t.is_punct("!")).unwrap_or(false)
        {
            let key = format!("{}!", tok.text);
            push_finding(out, f, tok.line, Rule::PanicFree, &key,
                format!("`{key}` in the decode chain — degrade with a typed error instead of dying"));
            continue;
        }
        let prev_is_dot = i > 0 && f.tokens[i - 1].is_punct(".");
        if prev_is_dot
            && R4_METHODS.contains(&tok.text.as_str())
            && next.map(|t| t.is_punct("(")).unwrap_or(false)
        {
            let key = format!(".{}", tok.text);
            push_finding(out, f, tok.line, Rule::PanicFree, &key,
                format!("`{key}(…)` in the decode chain — propagate the error, a corrupt frame must not kill the receiver"));
        }
    }
}

/// R5: magic unit literals outside `const`/`static` definitions.
fn rule_unit_hygiene(f: &ScannedFile, out: &mut Vec<Finding>) {
    if !r5_in_scope(&f.path) {
        return;
    }
    for (i, tok) in f.tokens.iter().enumerate() {
        if f.ctx[i].in_test || tok.kind != TokenKind::Number {
            continue;
        }
        let Some(v) = parse_number(&tok.text) else {
            continue;
        };
        if !R5_MAGIC.contains(&v) {
            continue;
        }
        if in_const_definition(f, i) {
            continue;
        }
        let key = normalize_number(&tok.text);
        push_finding(out, f, tok.line, Rule::UnitHygiene, &key,
            format!("magic unit literal `{}` — use the named constant (AUDIO_RATE, MPX_RATE, PILOT_HZ, …)", tok.text));
    }
}

/// R6: `unsafe` without a `// SAFETY:` comment within the 3 preceding lines.
fn rule_safety_comment(f: &ScannedFile, out: &mut Vec<Finding>) {
    for tok in f.tokens.iter() {
        if tok.kind != TokenKind::Ident || tok.text != "unsafe" {
            continue;
        }
        let covered = f
            .safety_comment_lines
            .iter()
            .any(|&l| l <= tok.line && l + 3 >= tok.line);
        if !covered {
            push_finding(out, f, tok.line, Rule::SafetyComment, "unsafe",
                "`unsafe` without a `// SAFETY:` comment on the preceding lines".to_string());
        }
    }
}

/// Walks back from a magic literal looking for `const`/`static`, stopping at
/// statement/block boundaries. Covers multi-line const declarations and
/// const tables (`const EDGES: &[f64] = &[19_000.0, 23_000.0, …];`).
fn in_const_definition(f: &ScannedFile, idx: usize) -> bool {
    let mut steps = 0usize;
    let mut i = idx;
    while i > 0 && steps < 64 {
        i -= 1;
        let t = &f.tokens[i];
        if t.kind == TokenKind::LineComment || t.kind == TokenKind::BlockComment {
            continue; // comments don't bound the declaration
        }
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return false;
        }
        if t.is_ident("const") || t.is_ident("static") {
            return true;
        }
        steps += 1;
    }
    false
}

/// Parses a numeric literal to f64: strips `_` separators and any type
/// suffix; returns None for hex/octal/binary (never unit literals).
fn parse_number(text: &str) -> Option<f64> {
    let s: String = text.chars().filter(|&c| c != '_').collect();
    if s.starts_with("0x") || s.starts_with("0o") || s.starts_with("0b") {
        return None;
    }
    // Strip a type suffix (`f64`, `u32`, …): cut at the first alphabetic
    // char that is not an exponent `e`/`E` followed by digits/sign.
    let bytes: Vec<char> = s.chars().collect();
    let mut end = bytes.len();
    for (i, &c) in bytes.iter().enumerate() {
        if c.is_alphabetic() {
            if (c == 'e' || c == 'E')
                && bytes
                    .get(i + 1)
                    .map(|&n| n.is_ascii_digit() || n == '+' || n == '-')
                    .unwrap_or(false)
            {
                continue;
            }
            end = i;
            break;
        }
    }
    s[..s.char_indices().nth(end).map(|(b, _)| b).unwrap_or(s.len())]
        .parse::<f64>()
        .ok()
}

/// Canonical baseline key for a magic literal: underscores stripped,
/// trailing `.0` dropped (`228_000.0` → `228000`).
fn normalize_number(text: &str) -> String {
    let s: String = text.chars().filter(|&c| c != '_').collect();
    let s = s.trim_end_matches(|c: char| c.is_alphabetic()).to_string();
    match s.strip_suffix(".0") {
        Some(head) => head.to_string(),
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        analyze(&[scan(path, src)])
    }

    #[test]
    fn r1_flags_alloc_in_into_fn() {
        let src = "fn render_into(out: &mut Vec<u8>) {\n let v = Vec::new();\n let w = vec![0u8; 4];\n}";
        let f = findings("crates/x/src/lib.rs", src);
        let keys: Vec<&str> = f.iter().map(|x| x.key.as_str()).collect();
        assert!(keys.contains(&"Vec::new"));
        assert!(keys.contains(&"vec!"));
    }

    #[test]
    fn r1_ignores_plain_fns_and_tests() {
        let src = "fn normal() { let v = Vec::new(); }\n#[cfg(test)]\nmod t {\n fn x_into(o: &mut V) { o.push(1); }\n}";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn r3_only_fires_in_scope() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        assert_eq!(findings("crates/sim/src/foo.rs", src).len(), 3);
        assert!(findings("crates/dsp/src/foo.rs", src).is_empty());
    }

    #[test]
    fn r4_methods_need_dot() {
        // A fn *named* unwrap, or an ident `expect` without `.`, is fine.
        let src = "fn unwrap() {}\nfn g() { let expect = 3; h(expect); }";
        assert!(findings("crates/fec/src/foo.rs", src).is_empty());
        let bad = "fn g(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(findings("crates/fec/src/foo.rs", bad).len(), 1);
    }

    #[test]
    fn r5_allows_const_definitions() {
        let good = "pub const MPX_RATE: f64 = 228_000.0;\npub const RDS_BPS: f64 =\n    1_187.5;";
        assert!(findings("crates/radio/src/lib.rs", good).is_empty());
        let bad = "fn f() -> f64 { 228_000.0 }";
        let f = findings("crates/radio/src/lib.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].key, "228000");
    }

    #[test]
    fn r6_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(findings("crates/x/src/lib.rs", bad).len(), 1);
        let good = "fn f(p: *const u8) -> u8 {\n // SAFETY: caller guarantees p is valid\n unsafe { *p }\n}";
        assert!(findings("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "fn f() -> f64 {\n // lint: allow(unit-hygiene)\n 228_000.0\n}";
        assert!(findings("crates/radio/src/lib.rs", src).is_empty());
    }

    #[test]
    fn r2_needs_joint_test() {
        let lib = scan(
            "crates/x/src/lib.rs",
            "pub fn fast(x: u8) -> u8 { x }\npub fn fast_reference(x: u8) -> u8 { x }",
        );
        let f = analyze(&[lib]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ReferenceParity);

        let lib = scan(
            "crates/x/src/lib.rs",
            "pub fn fast(x: u8) -> u8 { x }\npub fn fast_reference(x: u8) -> u8 { x }",
        );
        let test = scan(
            "crates/x/tests/parity.rs",
            "#[test]\nfn parity() { assert_eq!(fast(1), fast_reference(1)); }",
        );
        assert!(analyze(&[lib, test]).is_empty());
    }
}
