//! `sonic-lint` CLI.
//!
//! ```text
//! cargo run -p sonic-lint -- --workspace --deny-new          # CI gate
//! cargo run -p sonic-lint -- --workspace                     # report all
//! cargo run -p sonic-lint -- --workspace --json              # machine mode
//! cargo run -p sonic-lint -- --workspace --write-baseline    # ratchet
//! cargo run -p sonic-lint -- --workspace --graph-stats       # call-graph health
//! ```
//!
//! Exit codes: 0 clean (or informational run), 1 new findings under
//! `--deny-new`, 2 usage/IO error.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]

use sonic_lint::{baseline::Baseline, findings_to_json, format_finding, lint_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    baseline_path: PathBuf,
    json: bool,
    deny_new: bool,
    write_baseline: bool,
    graph_stats: bool,
}

const USAGE: &str = "usage: sonic-lint --workspace [--root DIR] [--baseline FILE] \
[--json] [--deny-new] [--write-baseline] [--graph-stats]";

fn parse_args() -> Result<Options, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut json = false;
    let mut deny_new = false;
    let mut write_baseline = false;
    let mut graph_stats = false;
    let mut workspace = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--deny-new" => deny_new = true,
            "--write-baseline" => write_baseline = true,
            "--graph-stats" => graph_stats = true,
            "--root" => {
                root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ))
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a file")?,
                ))
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if !workspace {
        return Err(format!("--workspace is required\n{USAGE}"));
    }
    let root = root
        .or_else(|| std::env::current_dir().ok())
        .ok_or("cannot determine working directory")?;
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));
    Ok(Options {
        root,
        baseline_path,
        json,
        deny_new,
        write_baseline,
        graph_stats,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.graph_stats {
        let g = match sonic_lint::graph_workspace(&opts.root) {
            Ok(g) => g,
            Err(msg) => {
                eprintln!("sonic-lint: {msg}");
                return ExitCode::from(2);
            }
        };
        let s = &g.stats;
        println!("sonic-lint call graph:");
        println!("  nodes            {}", s.nodes);
        println!("  edges            {}", s.edges);
        println!("  call sites       {}", s.call_sites);
        println!("  resolved         {}", s.resolved_calls);
        println!("  ambiguous        {}", s.ambiguous_calls);
        println!("  external/unknown {}", s.unresolved_calls);
        return ExitCode::SUCCESS;
    }

    let findings = match lint_workspace(&opts.root) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("sonic-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if opts.write_baseline {
        let base = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(&opts.baseline_path, base.write()) {
            eprintln!("sonic-lint: cannot write {}: {e}", opts.baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "sonic-lint: wrote baseline with {} finding(s) across {} triple(s) to {}",
            findings.len(),
            base.entries.len(),
            opts.baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let base = match std::fs::read_to_string(&opts.baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "sonic-lint: malformed baseline {}: {e}",
                    opts.baseline_path.display()
                );
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(), // no baseline: everything is "new"
    };
    let cmp = base.compare(&findings);

    if opts.json {
        let flags: Vec<bool> = {
            // `compare` preserves order within each class; rebuild per-finding
            // newness by membership (file,line,rule,key are unique enough).
            findings
                .iter()
                .map(|f| cmp.new.contains(f))
                .collect()
        };
        print!("{}", findings_to_json(&findings, Some(&flags)));
    } else {
        let shown: &[_] = if opts.deny_new { &cmp.new } else { &findings };
        for f in shown {
            println!("{}", format_finding(f));
        }
        eprintln!(
            "sonic-lint: {} finding(s): {} baselined, {} new, {} baseline entr{} burned down",
            findings.len(),
            cmp.baselined.len(),
            cmp.new.len(),
            cmp.stale.len(),
            if cmp.stale.len() == 1 { "y" } else { "ies" },
        );
        if !cmp.stale.is_empty() {
            eprintln!(
                "sonic-lint: run with --write-baseline to ratchet the burned-down entries"
            );
        }
    }

    if opts.deny_new && !cmp.new.is_empty() {
        eprintln!(
            "sonic-lint: {} new finding(s) not covered by {} — fix them or (only with reviewer sign-off) re-baseline",
            cmp.new.len(),
            opts.baseline_path.display()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
