//! Deterministic workspace file walker.
//!
//! Collects every `.rs` file the lint pass should see, in sorted order so
//! diagnostics and the baseline are stable across machines:
//!
//! * `crates/*/{src,tests,examples,benches}/**` — library + test code;
//! * top-level `src/`, `tests/`, `examples/`;
//!
//! and skips `vendor/` (offline stand-ins, not ours to lint), any `target/`
//! directory, and `crates/lint/tests/fixtures/` (deliberately-bad snippets
//! that must never count as workspace findings).

use std::fs;
use std::path::{Path, PathBuf};

/// A source file handed to the scanner: workspace-relative path + content.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// `/`-separated path relative to the workspace root.
    pub path: String,
    /// Full file text.
    pub text: String,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// Path prefixes (workspace-relative) excluded from linting.
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures"];

/// Walks the workspace rooted at `root` and returns all lintable sources,
/// sorted by path. IO errors on individual files are skipped (the linter
/// must not fail on an unreadable editor temp file); an unreadable root is
/// an error.
pub fn collect(root: &Path) -> Result<Vec<SourceFile>, String> {
    if !root.join("Cargo.toml").exists() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    walk(root, root, &mut files);
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            if let Ok(text) = fs::read_to_string(&path) {
                out.push(SourceFile { path: rel, text });
            }
        }
    }
}

/// Workspace-relative `/`-separated path.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_own_workspace_sorted_and_filtered() {
        // The lint crate lives at crates/lint, so the workspace root is two
        // levels up from its manifest dir.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root");
        let files = collect(&root).expect("collect");
        assert!(files.iter().any(|f| f.path == "crates/lint/src/lexer.rs"));
        assert!(files.iter().any(|f| f.path.starts_with("crates/radio/src/")));
        assert!(
            !files.iter().any(|f| f.path.starts_with("vendor/")),
            "vendored stand-ins must not be linted"
        );
        assert!(
            !files
                .iter()
                .any(|f| f.path.starts_with("crates/lint/tests/fixtures")),
            "fixture corpus must not count as workspace findings"
        );
        let mut sorted = files.iter().map(|f| f.path.clone()).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(
            sorted,
            files.iter().map(|f| f.path.clone()).collect::<Vec<_>>(),
            "walk order must be deterministic"
        );
    }
}
