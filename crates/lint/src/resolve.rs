//! Call-site resolution: `use`-aware suffix matching against the symbol
//! table.
//!
//! Precision/soundness trade-off (see DESIGN.md §15): with no type
//! information, resolution must choose between missing edges (unsound for
//! the transitive rules — a violation two hops away goes unseen) and
//! inventing edges (noisy — diagnostics blame chains that cannot execute).
//! This module leans *sound*: when several same-named candidates survive
//! the filters below, the call resolves to **all** of them, and the noise
//! is paid for with explicit `// lint: allow(...)` justifications at the
//! few affected call sites. The filters, in order:
//!
//! 1. `Type::name(…)` — candidates whose `impl`/`trait` owner is `Type`
//!    (`Self::name` uses the caller's own owner).
//! 2. `module::name(…)` / imported names — the call path, prefixed by any
//!    matching `use` import, must suffix-match the candidate's module path.
//! 3. Free calls — same-file candidates beat same-crate candidates beat
//!    the global name match.
//! 4. `.name(…)` method calls — every owned candidate with that name
//!    whose owner type the caller's file can *name* (defined in the same
//!    file or crate, or imported), since the receiver's type is unknown.
//!    `self.name(…)` prefers the caller's own impl.

use crate::graph::{CallSite, FnNode};
use crate::lexer::TokenKind;
use crate::scan::ScannedFile;
use std::collections::BTreeMap;

/// Per-file import map: local name → full path segments as written
/// (`Frame` → `["crate", "frame", "Frame"]`).
pub type Imports = BTreeMap<String, Vec<String>>;

/// Parses the `use` declarations of one file. Handles multi-segment
/// paths, `as` renames, nested `{…}` groups and `self` inside groups;
/// glob imports are ignored (they carry no name to match on).
pub fn parse_imports(f: &ScannedFile) -> Imports {
    let toks: Vec<&crate::lexer::Token> = f
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut out = Imports::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("use") {
            let end = toks[i..]
                .iter()
                .position(|t| t.is_punct(";"))
                .map(|p| i + p)
                .unwrap_or(toks.len());
            parse_use_tree(&toks[i + 1..end], &mut Vec::new(), &mut out);
            i = end + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Recursive descent over one `use` tree (tokens between `use` and `;`).
fn parse_use_tree(toks: &[&crate::lexer::Token], base: &mut Vec<String>, out: &mut Imports) {
    let entry_len = base.len();
    let mut i = 0usize;
    let mut last: Option<String> = None;
    while i < toks.len() {
        let t = toks[i];
        if t.kind == TokenKind::Ident && t.text != "as" {
            last = Some(t.text.clone());
            i += 1;
        } else if t.is_punct("::") {
            if let Some(seg) = last.take() {
                base.push(seg);
            }
            i += 1;
        } else if t.is_punct("{") {
            // Group: split the matching-brace window on top-level commas
            // and recurse, restoring the accumulated base path each time.
            let group_len = base.len();
            let mut depth = 1usize;
            let mut j = i + 1;
            let mut item_start = j;
            while j < toks.len() {
                if toks[j].is_punct("{") {
                    depth += 1;
                } else if toks[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].is_punct(",") && depth == 1 {
                    parse_use_tree(&toks[item_start..j], base, out);
                    base.truncate(group_len);
                    item_start = j + 1;
                }
                j += 1;
            }
            parse_use_tree(&toks[item_start..j.min(toks.len())], base, out);
            base.truncate(entry_len);
            return;
        } else if t.kind == TokenKind::Ident && t.text == "as" {
            // `path as alias`
            if let Some(alias) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                if let Some(orig) = last.take() {
                    let mut full = base.clone();
                    full.push(orig);
                    out.insert(alias.text.clone(), full);
                }
            }
            i += 2;
        } else {
            // `*` glob or stray punct — nothing to record.
            i += 1;
        }
    }
    if let Some(name) = last {
        if name == "self" {
            // `use a::b::{self}` — binds the module name itself.
            if let Some(modname) = base.last().cloned() {
                out.insert(modname, base.clone());
            }
        } else {
            let mut full = base.clone();
            full.push(name.clone());
            out.insert(name, full);
        }
    }
}

/// Resolves call sites against the symbol table.
pub struct Resolver<'a> {
    files: &'a [ScannedFile],
    fns: &'a [FnNode],
    by_name: &'a BTreeMap<&'a str, Vec<usize>>,
    imports: Vec<Imports>,
}

impl<'a> Resolver<'a> {
    /// Builds the resolver (parses every file's imports once).
    pub fn new(
        files: &'a [ScannedFile],
        fns: &'a [FnNode],
        by_name: &'a BTreeMap<&'a str, Vec<usize>>,
    ) -> Self {
        let imports = files.iter().map(parse_imports).collect();
        Resolver {
            files,
            fns,
            by_name,
            imports,
        }
    }

    /// Target node indices for one call site (empty = external/unresolved).
    pub fn resolve(&self, call: &CallSite, caller: &FnNode) -> Vec<usize> {
        let name = match call.path.last() {
            Some(n) => n.as_str(),
            None => return Vec::new(),
        };
        let cands = match self.by_name.get(name) {
            Some(c) => c.as_slice(),
            None => return Vec::new(),
        };

        if call.is_method {
            let owned: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| self.fns[i].owner.is_some())
                .collect();
            // `self.name(…)` inside an impl resolves within that impl when
            // it defines the method — the receiver type is actually known.
            if call.recv.as_deref() == Some("self") {
                if let Some(owner) = &caller.owner {
                    let own: Vec<usize> = owned
                        .iter()
                        .copied()
                        .filter(|&i| {
                            self.fns[i].owner.as_deref() == Some(owner)
                                && self.fns[i].file == caller.file
                        })
                        .collect();
                    if !own.is_empty() {
                        return own;
                    }
                }
            }
            // A method call can only hit a workspace type the caller's
            // file can name: defined in the same file or crate, or
            // imported. `.get(…)` on a plain slice must not resolve to a
            // distant `Raster::get` three crates away.
            let imports = &self.imports[caller.file];
            let nameable: Vec<usize> = owned
                .iter()
                .copied()
                .filter(|&i| {
                    let f = &self.fns[i];
                    f.file == caller.file
                        || f.module.first() == caller.module.first()
                        || f.owner
                            .as_deref()
                            .is_some_and(|o| imports.contains_key(o))
                })
                .collect();
            return prefer_near(&nameable, self.fns, caller);
        }

        if call.path.len() >= 2 {
            let qual = &call.path[call.path.len() - 2];
            // `Self::name` — the caller's own impl block.
            if qual == "Self" {
                if let Some(owner) = &caller.owner {
                    let own: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&i| self.fns[i].owner.as_deref() == Some(owner))
                        .collect();
                    return prefer_near(&own, self.fns, caller);
                }
                return Vec::new();
            }
            // `Type::name` — owner match, import-refined when ambiguous.
            let owned: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| self.fns[i].owner.as_deref() == Some(qual.as_str()))
                .collect();
            if !owned.is_empty() {
                if owned.len() > 1 {
                    if let Some(p) = self.imports[caller.file].get(qual) {
                        let module_part = &p[..p.len().saturating_sub(1)];
                        let refined: Vec<usize> = owned
                            .iter()
                            .copied()
                            .filter(|&i| suffix_match(&self.fns[i].module, module_part, caller))
                            .collect();
                        if !refined.is_empty() {
                            return prefer_near(&refined, self.fns, caller);
                        }
                    }
                }
                return prefer_near(&owned, self.fns, caller);
            }
            // `module::name` — the written path (import-expanded at its
            // head) must suffix-match the candidate's module path.
            let mut want: Vec<String> = call.path[..call.path.len() - 1].to_vec();
            if let Some(p) = self.imports[caller.file].get(&want[0]) {
                let mut expanded = p.clone();
                expanded.extend_from_slice(&want[1..]);
                want = expanded;
            }
            let matched: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| {
                    self.fns[i].owner.is_none()
                        && suffix_match(&self.fns[i].module, &want, caller)
                })
                .collect();
            return prefer_near(&matched, self.fns, caller);
        }

        // Free call. An import of exactly this name pins the module.
        if let Some(p) = self.imports[caller.file].get(name) {
            let module_part = &p[..p.len().saturating_sub(1)];
            let matched: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| {
                    self.fns[i].owner.is_none()
                        && suffix_match(&self.fns[i].module, module_part, caller)
                })
                .collect();
            if !matched.is_empty() {
                return prefer_near(&matched, self.fns, caller);
            }
        }
        let free: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| self.fns[i].owner.is_none())
            .collect();
        prefer_near(&free, self.fns, caller)
    }

    /// The workspace-relative path of a node's file (used by rules for
    /// diagnostics).
    pub fn path_of(&self, node: &FnNode) -> &str {
        &self.files[node.file].path
    }
}

/// Does the written path (`want`, possibly starting with
/// `crate`/`self`/`super`) suffix-match a candidate's module path?
fn suffix_match(module: &[String], want: &[String], caller: &FnNode) -> bool {
    let mut want: Vec<&str> = want.iter().map(String::as_str).collect();
    // Normalize a leading crate/self/super against the *caller's* module.
    match want.first().copied() {
        Some("crate") => {
            want.remove(0);
            if module.first() != caller.module.first() {
                return false;
            }
        }
        Some("self") => {
            want.remove(0);
            if module != caller.module {
                return false;
            }
        }
        Some("super") => {
            want.remove(0);
            let parent = &caller.module[..caller.module.len().saturating_sub(1)];
            if !module.starts_with(parent) {
                return false;
            }
        }
        _ => {}
    }
    if want.is_empty() {
        return true;
    }
    if want.len() > module.len() {
        return false;
    }
    module[module.len() - want.len()..]
        .iter()
        .zip(want.iter())
        .all(|(m, w)| m == w)
}

/// Narrows a candidate set by proximity: same file beats same crate beats
/// everything; within the chosen tier all candidates are kept
/// (conservative fan-out for trait methods).
fn prefer_near(cands: &[usize], fns: &[FnNode], caller: &FnNode) -> Vec<usize> {
    if cands.len() <= 1 {
        return cands.to_vec();
    }
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| fns[i].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| fns[i].module.first() == caller.module.first())
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn imports_of(src: &str) -> Imports {
        parse_imports(&scan("crates/x/src/lib.rs", src))
    }

    #[test]
    fn simple_use_paths_parse() {
        let imp = imports_of("use sonic_fec::viterbi::decode_soft;\nuse crate::frame::Frame;");
        assert_eq!(
            imp.get("decode_soft").map(Vec::as_slice),
            Some(["sonic_fec".to_string(), "viterbi".into(), "decode_soft".into()].as_slice())
        );
        assert_eq!(
            imp.get("Frame").map(Vec::as_slice),
            Some(["crate".to_string(), "frame".into(), "Frame".into()].as_slice())
        );
    }

    #[test]
    fn grouped_and_renamed_imports_parse() {
        let imp = imports_of(
            "use crate::net::{proto, codec::encode_frame as enc, transport::{self, Conn}};",
        );
        assert_eq!(
            imp.get("proto").map(Vec::as_slice),
            Some(["crate".to_string(), "net".into(), "proto".into()].as_slice())
        );
        assert_eq!(
            imp.get("enc").map(Vec::as_slice),
            Some(
                ["crate".to_string(), "net".into(), "codec".into(), "encode_frame".into()]
                    .as_slice()
            )
        );
        assert_eq!(
            imp.get("transport").map(Vec::as_slice),
            Some(["crate".to_string(), "net".into(), "transport".into()].as_slice())
        );
        assert_eq!(
            imp.get("Conn").map(Vec::as_slice),
            Some(
                ["crate".to_string(), "net".into(), "transport".into(), "Conn".into()].as_slice()
            )
        );
    }

    #[test]
    fn globs_are_ignored() {
        let imp = imports_of("use crate::prelude::*;");
        assert!(imp.is_empty());
    }
}
