//! Crash-safety and determinism tests for the persistent tiered artifact
//! store: put/load bit-identity, seeded corruption of the index log
//! recovering exactly the CRC-valid prefix, same-seed byte-identical
//! on-disk state, and live-byte budget eviction.

use proptest::prelude::*;
use sonic_core::chunker::page_to_frames;
use sonic_core::link;
use sonic_core::page::SimplifiedPage;
use sonic_core::server::cache::Artifact;
use sonic_core::server::store::{ArtifactStore, RECORD_LEN};
use sonic_image::clickmap::ClickMap;
use sonic_image::raster::{Raster, Rgb};
use sonic_image::strip;
use sonic_modem::profile::Profile;
use sonic_pagegen::PageId;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Self-cleaning test directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "sonic-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(1103515245).wrapping_add(12345)
}

/// Deterministic raster from a seed (LCG fill).
fn raster_from_seed(w: usize, h: usize, seed: u64) -> Raster {
    let mut img = Raster::new(w, h);
    let mut s = seed | 1;
    for y in 0..h {
        for x in 0..w {
            s = lcg(s);
            let v = (s >> 32) as u8;
            img.set(x, y, Rgb::new(v, v.wrapping_add(61), v ^ 0xA5));
        }
    }
    img
}

/// Builds a full artifact (page, frames, audio, burst table) plus its
/// column-hash index, exactly like the cold refresh path.
fn artifact_from_seed(seed: u64, with_audio: bool) -> (Artifact, Vec<u64>) {
    let raster = raster_from_seed(12 + (seed % 7) as usize, 40, seed);
    let hashes = strip::column_hashes(&raster);
    let page = Arc::new(SimplifiedPage::from_raster(
        &format!("https://store.pk/{seed}"),
        &raster,
        ClickMap::default(),
        (seed % 100) as u16,
        6,
    ));
    let frames = Arc::new(page_to_frames(&page));
    let (audio, bursts) = if with_audio {
        link::modulate_with_table(&Profile::sonic_10k(), &frames)
    } else {
        (Vec::new(), link::BurstTable::default())
    };
    (
        Artifact {
            page,
            frames,
            audio: Arc::new(audio),
            bursts,
        },
        hashes,
    )
}

fn id(n: u64) -> PageId {
    PageId {
        site: (n / 8) as usize,
        page: (n % 8) as usize,
    }
}

fn audio_bits(a: &[f32]) -> Vec<u32> {
    a.iter().map(|s| s.to_bits()).collect()
}

#[test]
fn put_load_roundtrip_is_bit_identical() {
    let dir = TempDir::new("roundtrip");
    let mut store = ArtifactStore::open(dir.path(), u64::MAX).unwrap();
    let (art, hashes) = artifact_from_seed(42, true);
    let wrote = store.put(id(0), 11, 22, &hashes, &art, 6).unwrap();
    assert!(wrote, "first put must append a blob");

    let got = store.load(id(0)).expect("entry is live");
    assert_eq!(got.layout_hash, 11);
    assert_eq!(got.raster_hash, 22);
    assert_eq!(got.hour, 6);
    assert_eq!(&*got.column_hashes, &hashes);
    assert_eq!(got.artifact.page.url, art.page.url);
    assert_eq!(got.artifact.page.version, art.page.version);
    assert_eq!(got.artifact.page.strips.strips, art.page.strips.strips);
    assert_eq!(&*got.artifact.frames, &*art.frames, "frames recompute");
    assert_eq!(audio_bits(&got.artifact.audio), audio_bits(&art.audio));
    assert_eq!(got.artifact.bursts.spans, art.bursts.spans);

    // Reopen and load again: the log replays to the same state.
    drop(store);
    let mut store = ArtifactStore::open(dir.path(), u64::MAX).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(store.stats.recovered_entries, 1);
    assert_eq!(store.stats.truncated_index_bytes, 0);
    let again = store.load(id(0)).expect("entry survived reopen");
    assert_eq!(audio_bits(&again.artifact.audio), audio_bits(&art.audio));
    assert_eq!(&*again.artifact.frames, &*art.frames);
}

#[test]
fn identical_content_is_written_once() {
    let dir = TempDir::new("dedupe");
    let mut store = ArtifactStore::open(dir.path(), u64::MAX).unwrap();
    let (art, hashes) = artifact_from_seed(7, false);
    assert!(store.put(id(0), 1, 2, &hashes, &art, 0).unwrap());
    let before = store.blob_file_bytes();
    // Same content under another page id: index record only, no new blob.
    assert!(!store.put(id(1), 1, 2, &hashes, &art, 0).unwrap());
    assert_eq!(store.blob_file_bytes(), before);
    assert_eq!(store.stats.blob_reuses, 1);
    // Exact re-put under the same id and addresses: complete no-op.
    let log_len = std::fs::metadata(dir.path().join("index.log")).unwrap().len();
    assert!(!store.put(id(0), 1, 2, &hashes, &art, 0).unwrap());
    assert_eq!(
        std::fs::metadata(dir.path().join("index.log")).unwrap().len(),
        log_len,
        "no-op put must not grow the log"
    );
}

#[test]
fn same_seed_runs_produce_byte_identical_store_state() {
    let dir_a = TempDir::new("bytes-a");
    let dir_b = TempDir::new("bytes-b");
    for dir in [dir_a.path(), dir_b.path()] {
        let mut store = ArtifactStore::open(dir, u64::MAX).unwrap();
        for n in 0..6u64 {
            let (art, hashes) = artifact_from_seed(100 + n, n % 2 == 0);
            store
                .put(id(n), lcg(n), lcg(lcg(n)), &hashes, &art, n)
                .unwrap();
        }
        // One refresh of an existing page, same order both runs.
        let (art, hashes) = artifact_from_seed(999, true);
        store.put(id(2), 5, 6, &hashes, &art, 7).unwrap();
    }
    for file in ["blobs.dat", "index.log"] {
        let a = std::fs::read(dir_a.path().join(file)).unwrap();
        let b = std::fs::read(dir_b.path().join(file)).unwrap();
        assert_eq!(a, b, "{file} must be byte-identical across same-seed runs");
    }
}

#[test]
fn eviction_holds_live_byte_budget_in_lru_order() {
    let dir = TempDir::new("evict");
    // Budget sized to roughly two frames-only artifacts.
    let (probe, probe_hashes) = artifact_from_seed(1, false);
    let mut sizing = ArtifactStore::open(dir.path().join("sizing"), u64::MAX).unwrap();
    sizing.put(id(0), 0, 0, &probe_hashes, &probe, 0).unwrap();
    let one = sizing.live_bytes();
    drop(sizing);

    let budget = one * 5 / 2;
    let mut store = ArtifactStore::open(dir.path().join("real"), budget).unwrap();
    for n in 0..4u64 {
        let (art, hashes) = artifact_from_seed(n + 1, false);
        store.put(id(n), n, n, &hashes, &art, n).unwrap();
        assert!(
            store.live_bytes() <= budget || store.len() == 1,
            "budget must hold after every put"
        );
    }
    assert!(store.stats.evictions > 0, "four puts must overflow the budget");
    // LRU: the oldest pages went first, the newest survived.
    assert!(store.load(id(3)).is_some(), "newest entry must survive");
    assert!(store.load(id(0)).is_none(), "oldest entry must be evicted");

    // Reopen replays the evictions too.
    let survivors = store.len();
    drop(store);
    let store = ArtifactStore::open(dir.path().join("real"), budget).unwrap();
    assert_eq!(store.len(), survivors);
    assert!(store.live_bytes() <= budget);
}

#[test]
fn corrupt_blob_fails_load_without_panicking() {
    let dir = TempDir::new("blobcrc");
    let mut store = ArtifactStore::open(dir.path(), u64::MAX).unwrap();
    let (art, hashes) = artifact_from_seed(13, true);
    store.put(id(0), 1, 2, &hashes, &art, 0).unwrap();
    drop(store);

    // Flip one byte in the middle of the blob file.
    let blob_path = dir.path().join("blobs.dat");
    let mut bytes = std::fs::read(&blob_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&blob_path, &bytes).unwrap();

    let mut store = ArtifactStore::open(dir.path(), u64::MAX).unwrap();
    assert!(store.load(id(0)).is_none(), "corrupt blob must not decode");
    assert_eq!(store.stats.corrupt_blobs, 1);
    assert_eq!(store.len(), 0, "corrupt entry is dropped");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Corrupting or truncating `index.log` at a random offset never
    /// panics, and reopening recovers exactly the CRC-valid record prefix:
    /// every record before the damage replays, everything after is
    /// truncated away, and every surviving entry still loads bit-identical
    /// audio.
    #[test]
    fn reopen_recovers_exactly_the_crc_valid_prefix(
        seed in any::<u64>(),
        n_puts in 2usize..6,
        damage_at in any::<u64>(),
        flip in any::<u8>(),
        truncate in any::<bool>(),
    ) {
        let dir = TempDir::new(&format!("crash-{seed}-{n_puts}"));
        let mut reference = Vec::new();
        {
            let mut store = ArtifactStore::open(dir.path(), u64::MAX).unwrap();
            for n in 0..n_puts as u64 {
                let (art, hashes) = artifact_from_seed(lcg(seed) ^ n, n % 2 == 0);
                store.put(id(n), lcg(n ^ seed), lcg(n), &hashes, &art, n).unwrap();
                reference.push(audio_bits(&art.audio));
            }
        }

        let log_path = dir.path().join("index.log");
        let mut log = std::fs::read(&log_path).unwrap();
        prop_assert_eq!(log.len(), n_puts * RECORD_LEN, "unbounded store: insert records only");
        let at = (damage_at % log.len() as u64) as usize;
        if truncate {
            log.truncate(at);
        } else {
            log[at] ^= flip | 1;
        }
        std::fs::write(&log_path, &log).unwrap();

        // Records strictly before the damaged offset are intact; the
        // damaged record and everything after must be dropped (a bad CRC
        // stops the scan — records after it are unreachable by design).
        let intact = at / RECORD_LEN;
        let mut store = ArtifactStore::open(dir.path(), u64::MAX).unwrap();
        prop_assert_eq!(store.len(), intact);
        prop_assert_eq!(store.stats.recovered_entries, intact as u64);
        prop_assert_eq!(
            std::fs::metadata(&log_path).unwrap().len(),
            (intact * RECORD_LEN) as u64,
            "torn tail truncated to the valid prefix"
        );
        for n in 0..intact as u64 {
            let got = store.load(id(n));
            let got = got.expect("intact-prefix entry must load");
            prop_assert_eq!(&audio_bits(&got.artifact.audio), &reference[n as usize]);
        }
        for n in intact as u64..n_puts as u64 {
            prop_assert!(store.load(id(n)).is_none(), "post-damage entries are gone");
        }

        // The store stays writable after recovery.
        let (art, hashes) = artifact_from_seed(seed ^ 0xDEAD, false);
        store.put(id(90), 1, 2, &hashes, &art, 9).unwrap();
        prop_assert_eq!(store.len(), intact + 1);
    }
}
