//! Property tests for the wire frame codec under adversarial byte streams.
//!
//! The decoder's contract: fed *any* byte stream — well-formed frames cut
//! at arbitrary chunk boundaries, truncated mid-frame, bit-flipped in
//! flight, or interleaved with garbage — it emits only frames that were
//! genuinely encoded in the stream (never a forged payload), keeps them in
//! order, accounts for every loss in its stats, and never panics. Every
//! property drives [`FrameDecoder`] through `feed`/`drain_frames` exactly
//! the way a transport endpoint does.

use proptest::prelude::*;
use sonic_core::net::codec::{encode_frame, frame_bytes, FrameDecoder};

/// Encodes `payloads` back-to-back into one wire stream.
fn stream(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut s = Vec::new();
    for p in payloads {
        encode_frame(p, &mut s);
    }
    s
}

/// Feeds `bytes` to a fresh decoder in chunks whose sizes cycle through
/// `splits`, returning every decoded frame.
fn decode_chunked(bytes: &[u8], splits: &[usize]) -> (Vec<Vec<u8>>, FrameDecoder) {
    let mut d = FrameDecoder::new();
    let mut got = Vec::new();
    let mut at = 0;
    let mut i = 0;
    while at < bytes.len() {
        let step = splits.get(i % splits.len()).copied().unwrap_or(1).max(1);
        let end = (at + step).min(bytes.len());
        d.feed(&bytes[at..end]);
        got.extend(d.drain_frames());
        at = end;
        i += 1;
    }
    (got, d)
}

/// Arbitrary payload vectors: a mix of empty, tiny and chunk-sized.
fn payloads_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 0..12)
}

/// Garbage that cannot embed or start a plausible frame: with every byte
/// nonzero, any 4-byte window read as a big-endian length is ≥ 2^24 and
/// therefore rejected as implausible (`MAX_WIRE_PAYLOAD` is 2^20). This
/// isolates the resync-walk behaviour from the separate "plausible length
/// stalls until the watchdog fires" behaviour, which is tested on its own.
fn opaque_junk(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(1u8..=255, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any frame sequence survives any chunking of the byte stream: the
    /// decoder re-emits the payloads exactly, in order, with no resyncs
    /// and nothing left buffered.
    #[test]
    fn round_trip_any_split(
        payloads in payloads_strategy(),
        splits in proptest::collection::vec(1usize..64, 1..8),
    ) {
        let bytes = stream(&payloads);
        let (got, d) = decode_chunked(&bytes, &splits);
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(d.stats.resyncs, 0);
        prop_assert_eq!(d.buffered(), 0);
    }

    /// Truncating the stream anywhere yields exactly the frames whose
    /// bytes fully arrived — a prefix of the original sequence, never a
    /// phantom and never a reordering.
    #[test]
    fn truncation_yields_a_prefix(
        payloads in payloads_strategy(),
        cut_frac in 0.0f64..1.0,
        splits in proptest::collection::vec(1usize..64, 1..4),
    ) {
        let bytes = stream(&payloads);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        let (got, _) = decode_chunked(&bytes[..cut], &splits);
        prop_assert!(got.len() <= payloads.len());
        prop_assert_eq!(&got[..], &payloads[..got.len()]);
    }

    /// A single bit flip anywhere in the stream never forges a frame: the
    /// decoder's output is an in-order subsequence of the sent payloads,
    /// and any loss leaves evidence — a CRC failure, skipped bytes, or
    /// bytes stalled in the buffer awaiting the watchdog.
    #[test]
    fn bit_flip_never_forges_a_frame(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120), 1..8),
        flip_at_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
        splits in proptest::collection::vec(1usize..48, 1..4),
    ) {
        let mut bytes = stream(&payloads);
        let at = ((bytes.len() - 1) as f64 * flip_at_frac) as usize;
        bytes[at] ^= 1 << flip_bit;
        let (got, d) = decode_chunked(&bytes, &splits);
        // Every decoded frame is literally one of the sent payloads, and
        // the survivors appear in send order (the flip can destroy frames,
        // never fabricate or mutate one).
        let mut cursor = 0;
        for f in &got {
            let pos = payloads[cursor..].iter().position(|p| p == f);
            prop_assert!(pos.is_some(), "decoder emitted a forged frame: {f:?}");
            cursor += pos.unwrap() + 1;
        }
        // Loss is accounted for, not silent: either stats show the damage
        // or the damaged frame's bytes are still stalled in the buffer
        // (the in-sync wait the endpoint watchdog exists to break).
        if got.len() < payloads.len() {
            prop_assert!(
                d.stats.crc_failures > 0
                    || d.stats.skipped_bytes > 0
                    || d.buffered() > 0,
                "frames lost with no evidence: {:?}", d.stats
            );
        }
    }

    /// Opaque garbage injected between two valid frames is walked off
    /// byte-by-byte: both real frames decode, the skip cost equals the
    /// junk length, and the whole excursion counts as one resync. Fed in
    /// one shot — under chunked feeds the scan may reach `b`'s header
    /// before `b`'s tail arrives and deliberately sacrifice it
    /// (mid-resync, a plausible-but-incomplete candidate is skipped, not
    /// waited on; that anti-livelock trade is exercised below).
    #[test]
    fn garbage_between_frames_is_skipped(
        junk in opaque_junk(1..200),
        a in proptest::collection::vec(any::<u8>(), 0..100),
        b in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let mut bytes = frame_bytes(&a);
        bytes.extend_from_slice(&junk);
        encode_frame(&b, &mut bytes);
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        let got = d.drain_frames();
        prop_assert_eq!(got, vec![a, b]);
        prop_assert_eq!(d.stats.skipped_bytes, junk.len() as u64);
        prop_assert_eq!(d.stats.resyncs, 1);
    }

    /// The same injection under arbitrary chunked feeds: `a` always
    /// decodes, nothing is forged, and at worst `b` alone is sacrificed
    /// to the mid-resync scan — with the loss visible in the stats.
    #[test]
    fn garbage_between_frames_chunked_loses_at_most_the_successor(
        junk in opaque_junk(1..200),
        a in proptest::collection::vec(any::<u8>(), 0..100),
        // Opaque so a sacrificed `b` can't shrink toward an embedded
        // valid frame (8 zero bytes encode an empty frame).
        b in opaque_junk(0..100),
        splits in proptest::collection::vec(1usize..32, 1..4),
    ) {
        let mut bytes = frame_bytes(&a);
        bytes.extend_from_slice(&junk);
        encode_frame(&b, &mut bytes);
        let (got, d) = decode_chunked(&bytes, &splits);
        prop_assert!(!got.is_empty() && got.len() <= 2);
        prop_assert_eq!(&got[0], &a);
        if got.len() == 2 {
            prop_assert_eq!(&got[1], &b);
        }
        prop_assert!(d.stats.skipped_bytes >= junk.len() as u64);
        prop_assert_eq!(d.stats.resyncs, 1);
    }

    /// Arbitrary garbage (zeros allowed) never yields a frame that was
    /// not genuinely encoded in the stream: anything emitted must
    /// re-encode to a byte window actually present in the input. (An
    /// 8-zero-byte run *is* a valid empty frame — `crc32("") == 0` — so
    /// "no frames ever" would be the wrong property.)
    #[test]
    fn pure_garbage_never_forges(
        junk in proptest::collection::vec(any::<u8>(), 0..512),
        splits in proptest::collection::vec(1usize..32, 1..4),
    ) {
        let (got, d) = decode_chunked(&junk, &splits);
        for f in &got {
            let enc = frame_bytes(f);
            prop_assert!(
                junk.windows(enc.len()).any(|w| w == enc.as_slice()),
                "emitted frame not present in the stream: {f:?}"
            );
        }
        prop_assert_eq!(d.stats.frames, got.len() as u64);
    }

    /// `force_resync` (the stall watchdog's lever) recovers cleanly from a
    /// torn opaque prefix: after the watchdog fires, freshly fed frames
    /// all decode — none are eaten by the abandoned partial frame.
    #[test]
    fn force_resync_recovers_fresh_traffic(
        torn in opaque_junk(0..64),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..80), 1..6),
    ) {
        let mut d = FrameDecoder::new();
        // A torn partial frame sits undecoded...
        d.feed(&torn);
        prop_assert!(d.drain_frames().is_empty());
        // ...the watchdog gives up on it...
        d.force_resync();
        prop_assert!(d.drain_frames().is_empty());
        // ...then clean traffic resumes and must fully decode: every byte
        // of the torn prefix is implausible as a length, so the resync
        // scan walks off all of it and re-locks exactly at the first
        // fresh frame boundary.
        let bytes = stream(&payloads);
        d.feed(&bytes);
        prop_assert_eq!(d.drain_frames(), payloads);
        prop_assert_eq!(d.buffered(), 0);
    }
}
