//! Property tests for the content-addressed broadcast artifact path: a
//! delta-spliced artifact (strip-level re-encode + burst-level audio
//! splice against a cached basis) must be bit-identical to a cold full
//! re-encode of the mutated raster, for any raster and any set of column
//! mutations.

use proptest::prelude::*;
use sonic_core::chunker::page_to_frames;
use sonic_core::frame::Frame;
use sonic_core::link;
use sonic_core::page::SimplifiedPage;
use sonic_core::server::cache::ArtifactCache;
use sonic_core::server::pipeline::{carousel_page_with, CarouselSlot, RenderedContent};
use sonic_image::clickmap::ClickMap;
use sonic_image::raster::{Raster, Rgb};
use sonic_image::strip;
use sonic_modem::profile::Profile;
use sonic_pagegen::PageId;

/// Deterministic noisy raster (LCG fill) so failures reproduce from the
/// proptest seed alone.
fn raster_from_seed(w: usize, h: usize, seed: u32) -> Raster {
    let mut img = Raster::new(w, h);
    let mut s = seed | 1;
    for y in 0..h {
        for x in 0..w {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            let v = (s >> 24) as u8;
            img.set(x, y, Rgb::new(v, v.wrapping_add(90), v ^ 0x3C));
        }
    }
    img
}

/// Applies strip-level mutations: for each (column, row, delta) entry,
/// perturbs one pixel in that column. Duplicate columns are fine.
fn mutate_columns(img: &mut Raster, edits: &[(usize, usize, u8)]) {
    let (w, h) = (img.width(), img.height());
    for &(c, r, d) in edits {
        let (x, y) = (c % w, r % h);
        let p = img.get(x, y);
        // Guaranteed change: flip at least one channel bit.
        img.set(x, y, Rgb::new(p.r ^ (d | 1), p.g.wrapping_add(d), p.b));
    }
}

fn assert_audio_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "audio length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "sample {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full warm path — [`strip::encode_delta`] against the previous
    /// strips, [`SimplifiedPage::from_parts`], re-chunk, and
    /// [`link::modulate_spliced`] against the previous audio + burst table —
    /// produces frames and audio bit-identical to building the mutated
    /// raster cold, across random rasters and random column mutations
    /// (including the empty mutation set).
    #[test]
    fn delta_spliced_artifact_matches_cold_rebuild(
        w in 8usize..40,
        h in 16usize..96,
        seed in any::<u32>(),
        edits in proptest::collection::vec(
            (0usize..64, 0usize..64, any::<u8>()), 0..6),
    ) {
        let profile = Profile::sonic_10k();
        let (url, version, ttl) = ("https://prop.pk/", 7u16, 6u16);
        let base = raster_from_seed(w, h, seed);
        let mut mutated = base.clone();
        mutate_columns(&mut mutated, &edits);

        // Basis artifact (the "previous hour" in the cache).
        let (strips0, hashes0) = strip::encode_with_hashes(&base);
        let page0 = SimplifiedPage::from_parts(
            url, strips0, ClickMap::default(), version, ttl);
        let frames0 = page_to_frames(&page0);
        let (audio0, table0) = link::modulate_with_table(&profile, &frames0);

        // Warm path: strip delta + burst splice against the basis.
        let d = strip::encode_delta(&mutated, &page0.strips, &hashes0);
        prop_assert_eq!(d.reused + d.reencoded, w, "one verdict per column");
        let page1 = SimplifiedPage::from_parts(
            url, d.strips, ClickMap::default(), version, ttl);
        let frames1 = page_to_frames(&page1);
        let spliced = link::modulate_spliced(&profile, &frames1, &audio0, &table0);

        // Cold path: full re-encode of the mutated raster.
        let cold = SimplifiedPage::from_raster(
            url, &mutated, ClickMap::default(), version, ttl);
        let frames_cold = page_to_frames(&cold);
        let audio_cold = link::modulate(&profile, &frames_cold);

        prop_assert_eq!(&page1.strips.strips, &cold.strips.strips);
        prop_assert_eq!(page1.page_id, cold.page_id);
        prop_assert_eq!(&frames1, &frames_cold);
        assert_audio_bits_eq(&spliced.audio, &audio_cold);

        // The splice's own table must describe the new audio exactly: a
        // second splice against it with zero changes reuses every burst.
        let again = link::modulate_spliced(
            &profile, &frames1, &spliced.audio, &spliced.table);
        prop_assert_eq!(again.modulated, 0, "identical frames: all bursts reused");
        assert_audio_bits_eq(&again.audio, &audio_cold);

        // No mutations ⇒ everything is reused outright.
        if edits.is_empty() {
            prop_assert_eq!(d.reencoded, 0);
            prop_assert_eq!(spliced.modulated, 0);
        }
    }

    /// The incremental carousel's delta slot is a bit-exact subset of a
    /// cold full rebuild: the cached artifact (next revolution's delta
    /// basis and the repair source) matches the cold artifact frame-for-
    /// frame and sample-for-sample, the slot's frames are exactly the cold
    /// sequence filtered to the meta bracket plus changed columns, and the
    /// slot's audio equals a direct modulation of those frames.
    #[test]
    fn carousel_delta_slot_matches_cold_rebuild(
        w in 8usize..32,
        h in 16usize..64,
        seed in any::<u32>(),
        edits in proptest::collection::vec(
            (0usize..64, 0usize..64, any::<u8>()), 0..5),
    ) {
        let profile = Profile::sonic_10k();
        let id = PageId { site: 3, page: 1 };
        let base = raster_from_seed(w, h, seed);
        let mut mutated = base.clone();
        mutate_columns(&mut mutated, &edits);
        // Same version/ttl both hours: the content (not the clock) is what
        // changes, so an empty edit set legitimately airs nothing.
        let content = |raster: &Raster| RenderedContent {
            url: "https://prop.pk/carousel".into(),
            raster: raster.clone(),
            clickmap: ClickMap::default(),
            version: 9,
            ttl_hours: 6,
        };

        // Warm: prime at hour 0, then the mutated revolution at hour 1.
        let mut warm = ArtifactCache::unbounded();
        let item0 = carousel_page_with(
            &mut warm, id, 0xA0, 0, &profile, || content(&base));
        prop_assert!(matches!(item0.slot, CarouselSlot::Full));
        let item1 = carousel_page_with(
            &mut warm, id, 0xA1, 1, &profile, || content(&mutated));

        // Cold: the mutated content built with no prior state.
        let mut cold_cache = ArtifactCache::unbounded();
        let cold = carousel_page_with(
            &mut cold_cache, id, 0xA1, 1, &profile, || content(&mutated));
        prop_assert!(matches!(cold.slot, CarouselSlot::Full));

        let changed = strip::diff_columns(
            &strip::column_hashes(&base), &strip::column_hashes(&mutated));

        match &item1.slot {
            CarouselSlot::Unchanged => {
                // Only legitimate when no column actually changed; the
                // cached artifact already equals the cold build bit for bit.
                prop_assert!(changed.is_empty());
                prop_assert_eq!(&*item1.artifact.frames, &*cold.artifact.frames);
                assert_audio_bits_eq(&item1.artifact.audio, &cold.artifact.audio);
            }
            CarouselSlot::Delta { frames, audio, changed_columns } => {
                prop_assert_eq!(*changed_columns, changed.len());
                // The cached artifact — what next hour splices against and
                // what repair requests serve — matches the cold build.
                prop_assert_eq!(&*item1.artifact.frames, &*cold.artifact.frames);
                assert_audio_bits_eq(&item1.artifact.audio, &cold.artifact.audio);
                // The slot's frames are exactly the cold sequence filtered
                // to meta frames plus changed columns' chunks.
                let expected: Vec<Frame> = cold
                    .artifact
                    .frames
                    .iter()
                    .filter(|f| match f {
                        Frame::Meta { .. } => true,
                        Frame::Strip { column, .. } => changed.contains(column),
                    })
                    .cloned()
                    .collect();
                prop_assert_eq!(&**frames, &expected);
                // And the slot's audio is a pure modulation of them.
                let direct = link::modulate(&profile, frames);
                assert_audio_bits_eq(audio, &direct);
            }
            CarouselSlot::Full => prop_assert!(false, "a delta basis existed"),
        }
    }
}
