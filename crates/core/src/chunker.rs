//! Page → frames (transmit side of §3.3).
//!
//! The metadata region goes first (the client cannot place strip chunks
//! without the dimensions), then every column's strip bytes in column order,
//! then a *second copy* of the metadata. Losing the metadata costs the whole
//! page, so the repeat is placed at the far end of the stream — a burst of
//! channel fading that kills the head of the transmission cannot also kill
//! the tail (time diversity), and a few hundred repeated bytes are far
//! cheaper than losing a 1 MB page.

use crate::frame::{Frame, FRAME_PAYLOAD};
use crate::page::SimplifiedPage;

/// Number of times the metadata region appears in the frame stream.
pub const META_REPEATS: usize = 2;

fn meta_frames(page: &SimplifiedPage) -> Vec<Frame> {
    let meta = page.meta_blob();
    let parts: Vec<&[u8]> = meta.chunks(FRAME_PAYLOAD).collect();
    let total = parts.len() as u16;
    parts
        .iter()
        .enumerate()
        .map(|(seq, part)| Frame::Meta {
            page_id: page.page_id,
            seq: seq as u16,
            total,
            payload: part.to_vec(),
        })
        .collect()
}

/// Serializes a page into its broadcast frame sequence.
pub fn page_to_frames(page: &SimplifiedPage) -> Vec<Frame> {
    let mut frames = meta_frames(page);
    for (column, strip) in page.strips.strips.iter().enumerate() {
        let chunks: Vec<&[u8]> = if strip.is_empty() {
            vec![&[][..]]
        } else {
            strip.chunks(FRAME_PAYLOAD).collect()
        };
        let last_idx = chunks.len() - 1;
        for (seq, chunk) in chunks.iter().enumerate() {
            frames.push(Frame::Strip {
                page_id: page.page_id,
                column: column as u16,
                seq: seq as u16,
                last: seq == last_idx,
                payload: chunk.to_vec(),
            });
        }
    }
    // Second metadata copy at the tail (time diversity).
    frames.extend(meta_frames(page));
    frames
}

/// Number of frames a page costs on air (what the scheduler accounts).
pub fn frame_count(page: &SimplifiedPage) -> usize {
    let meta_parts = page.meta_blob().len().div_ceil(FRAME_PAYLOAD);
    let strip_frames: usize = page
        .strips
        .strips
        .iter()
        .map(|s| s.len().div_ceil(FRAME_PAYLOAD).max(1))
        .sum();
    meta_parts * META_REPEATS + strip_frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonic_image::clickmap::ClickMap;
    use sonic_image::raster::{Raster, Rgb};

    fn page(w: usize, h: usize) -> SimplifiedPage {
        let mut img = Raster::new(w, h);
        for y in 0..h {
            for x in 0..w {
                if (x + y) % 3 == 0 {
                    img.set(x, y, Rgb::new(10, 40, 90));
                }
            }
        }
        SimplifiedPage::from_raster("https://t.pk/page", &img, ClickMap::default(), 1, 12)
    }

    #[test]
    fn frame_count_matches_emission() {
        let p = page(20, 40);
        assert_eq!(page_to_frames(&p).len(), frame_count(&p));
    }

    #[test]
    fn meta_frames_bracket_the_stream() {
        let p = page(10, 10);
        let frames = page_to_frames(&p);
        let meta_parts = p.meta_blob().len().div_ceil(FRAME_PAYLOAD);
        for f in frames.iter().take(meta_parts) {
            assert!(matches!(f, Frame::Meta { .. }), "head copy");
        }
        for f in frames.iter().rev().take(meta_parts) {
            assert!(matches!(f, Frame::Meta { .. }), "tail copy");
        }
        assert!(matches!(frames[meta_parts], Frame::Strip { .. }));
        let metas = frames.iter().filter(|f| matches!(f, Frame::Meta { .. })).count();
        assert_eq!(metas, meta_parts * META_REPEATS);
    }

    #[test]
    fn every_column_has_exactly_one_last_frame() {
        let p = page(12, 64);
        let frames = page_to_frames(&p);
        for col in 0..12u16 {
            let lasts = frames
                .iter()
                .filter(|f| matches!(f, Frame::Strip { column, last: true, .. } if *column == col))
                .count();
            assert_eq!(lasts, 1, "column {col}");
        }
    }

    #[test]
    fn strip_payloads_reassemble_to_strip_bytes() {
        let p = page(6, 80);
        let frames = page_to_frames(&p);
        for col in 0..6u16 {
            let mut bytes = Vec::new();
            let mut parts: Vec<(u16, &Vec<u8>)> = frames
                .iter()
                .filter_map(|f| match f {
                    Frame::Strip {
                        column,
                        seq,
                        payload,
                        ..
                    } if *column == col => Some((*seq, payload)),
                    _ => None,
                })
                .collect();
            parts.sort_by_key(|(s, _)| *s);
            for (_, p) in parts {
                bytes.extend_from_slice(p);
            }
            assert_eq!(bytes, p.strips.strips[col as usize], "column {col}");
        }
    }

    #[test]
    fn all_frames_encode_within_size() {
        let p = page(8, 200);
        for f in page_to_frames(&p) {
            let wire = f.encode();
            assert_eq!(wire.len(), crate::frame::FRAME_SIZE);
        }
    }
}
