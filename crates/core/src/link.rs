//! Link ↔ PHY adaptation: batching 100-byte SONIC frames into OFDM bursts.
//!
//! A PHY burst costs 4 overhead symbols (preamble, training ×2, header), so
//! sending one 100-byte frame per burst would waste most of the airtime.
//! The link layer therefore packs [`FRAMES_PER_BURST`] frames per burst;
//! a burst lost to sync/header failure costs that many frames, which is the
//! granularity the loss experiments measure.

use crate::frame::{Frame, FrameError, FRAME_SIZE};
use sonic_image::hash::Fnv64;
use sonic_modem::frame::{demodulate_frames, modulate_frame, modulate_frame_into, MAX_PAYLOAD};
use sonic_modem::profile::Profile;
use std::collections::HashMap;

/// Link frames packed into one PHY burst (40 × 100 B = 4000 ≤ 4095).
pub const FRAMES_PER_BURST: usize = MAX_PAYLOAD / FRAME_SIZE;

/// Reception statistics at frame granularity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkStats {
    /// PHY bursts detected.
    pub bursts_detected: usize,
    /// PHY bursts that failed (header/FEC/truncation).
    pub bursts_failed: usize,
    /// Link frames recovered with a valid CRC.
    pub frames_ok: usize,
    /// Link frames dropped (bad CRC or inside failed bursts is unknown —
    /// only counts frames that arrived but failed their CRC).
    pub frames_bad_crc: usize,
}

/// Modulates a frame sequence into audio, [`FRAMES_PER_BURST`] per burst.
pub fn modulate(profile: &Profile, frames: &[Frame]) -> Vec<f32> {
    let mut audio = Vec::new();
    for group in frames.chunks(FRAMES_PER_BURST) {
        let mut payload = Vec::with_capacity(group.len() * FRAME_SIZE);
        for f in group {
            payload.extend_from_slice(&f.encode());
        }
        audio.extend(modulate_frame(profile, &payload));
        // Half a symbol of guard between bursts.
        audio.extend(std::iter::repeat_n(0.0, profile.symbol_len() / 2));
    }
    audio
}

/// The audio span one PHY burst occupies inside a concatenated buffer,
/// keyed by the content address of its payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstSpan {
    /// FNV-1a of the burst's concatenated frame bytes (length folded in).
    pub payload_hash: u64,
    /// Sample offset of the burst inside the buffer.
    pub start: usize,
    /// Sample count including the inter-burst guard.
    pub len: usize,
}

/// Per-burst index of a modulated frame sequence — the audio-side half of
/// the broadcast artifact cache. Bursts are modulated independently and the
/// inter-burst guard is silence, so a burst whose payload hash matches a
/// previous modulation can have its samples copied instead of re-synthesized.
#[derive(Debug, Clone, Default)]
pub struct BurstTable {
    /// One span per burst, in transmission order.
    pub spans: Vec<BurstSpan>,
}

impl BurstTable {
    /// Total samples the indexed audio occupies (spans tile the buffer, so
    /// this is the end of the last span).
    pub fn total_samples(&self) -> usize {
        self.spans.last().map(|s| s.start + s.len).unwrap_or(0)
    }
}

/// Accounting from [`modulate_spliced`].
#[derive(Debug, Clone)]
pub struct SplicedAudio {
    /// The modulated carousel audio (bit-identical to [`modulate`]).
    pub audio: Vec<f32>,
    /// Burst index of the new audio, reusable by the next splice.
    pub table: BurstTable,
    /// Bursts whose samples were copied from the previous audio.
    pub reused: usize,
    /// Bursts that went through the OFDM modulator.
    pub modulated: usize,
}

/// Concatenated wire bytes of one burst's frames.
fn burst_payload(group: &[Frame]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(group.len() * FRAME_SIZE);
    for f in group {
        payload.extend_from_slice(&f.encode());
    }
    payload
}

/// Content address of a burst payload.
fn burst_hash(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(payload).write_u64(payload.len() as u64);
    h.finish()
}

/// [`modulate`], additionally returning the per-burst span table so a later
/// refresh can splice unchanged bursts' audio via [`modulate_spliced`].
pub fn modulate_with_table(profile: &Profile, frames: &[Frame]) -> (Vec<f32>, BurstTable) {
    let n_bursts = frames.len().div_ceil(FRAMES_PER_BURST);
    let mut audio = Vec::new();
    let mut spans = Vec::with_capacity(n_bursts);
    let mut burst = Vec::new();
    for group in frames.chunks(FRAMES_PER_BURST) {
        let payload = burst_payload(group);
        let start = audio.len();
        modulate_frame_into(profile, &payload, &mut burst);
        if start == 0 {
            // Full bursts are all the same length; size the buffer once
            // instead of doubling through tens of megabytes of copies.
            audio.reserve(n_bursts * (burst.len() + profile.symbol_len() / 2));
        }
        audio.extend_from_slice(&burst);
        audio.extend(std::iter::repeat_n(0.0, profile.symbol_len() / 2));
        spans.push(BurstSpan {
            payload_hash: burst_hash(&payload),
            start,
            len: audio.len() - start,
        });
    }
    (audio, BurstTable { spans })
}

/// Modulates a frame sequence, copying the samples of every burst whose
/// payload already appears in `prev` (a table from [`modulate_with_table`]
/// or an earlier splice over `prev_audio`) and running the OFDM modulator
/// only for new bursts.
///
/// Modulation is a deterministic pure function of (profile, payload) and
/// the inter-burst guard is silence, so the result is bit-identical to a
/// cold [`modulate`] of `frames`.
pub fn modulate_spliced(
    profile: &Profile,
    frames: &[Frame],
    prev_audio: &[f32],
    prev: &BurstTable,
) -> SplicedAudio {
    let mut by_hash: HashMap<u64, BurstSpan> = HashMap::with_capacity(prev.spans.len());
    for span in &prev.spans {
        if span.start + span.len <= prev_audio.len() {
            by_hash.insert(span.payload_hash, *span);
        }
    }
    let n_bursts = frames.len().div_ceil(FRAMES_PER_BURST);
    let mut audio = Vec::new();
    let mut spans = Vec::with_capacity(n_bursts);
    let mut burst = Vec::new();
    let (mut reused, mut modulated) = (0usize, 0usize);
    for group in frames.chunks(FRAMES_PER_BURST) {
        let payload = burst_payload(group);
        let hash = burst_hash(&payload);
        let start = audio.len();
        match by_hash.get(&hash) {
            Some(span) => {
                if start == 0 {
                    // Full bursts are all the same length; size the buffer
                    // once instead of doubling through tens of megabytes of
                    // copies (the doubling shows up as a ~20% modulation
                    // penalty on hour-churn pages whose audio grew).
                    audio.reserve(n_bursts * span.len);
                }
                audio.extend_from_slice(&prev_audio[span.start..span.start + span.len]);
                reused += 1;
            }
            None => {
                modulate_frame_into(profile, &payload, &mut burst);
                if start == 0 {
                    audio.reserve(n_bursts * (burst.len() + profile.symbol_len() / 2));
                }
                audio.extend_from_slice(&burst);
                audio.extend(std::iter::repeat_n(0.0, profile.symbol_len() / 2));
                modulated += 1;
            }
        }
        spans.push(BurstSpan {
            payload_hash: hash,
            start,
            len: audio.len() - start,
        });
    }
    SplicedAudio {
        audio,
        table: BurstTable { spans },
        reused,
        modulated,
    }
}

/// Demodulates audio back into link frames with loss accounting.
pub fn demodulate(profile: &Profile, audio: &[f32]) -> (Vec<Frame>, LinkStats) {
    let mut stats = LinkStats::default();
    let mut frames = Vec::new();
    for burst in demodulate_frames(profile, audio) {
        stats.bursts_detected += 1;
        match burst.payload {
            Ok(payload) => {
                for chunk in payload.chunks(FRAME_SIZE) {
                    match Frame::decode(chunk) {
                        Ok(f) => {
                            stats.frames_ok += 1;
                            frames.push(f);
                        }
                        Err(FrameError::BadSize) => {
                            // Trailing partial chunk: a malformed batch.
                            stats.frames_bad_crc += 1;
                        }
                        Err(_) => stats.frames_bad_crc += 1,
                    }
                }
            }
            Err(_) => stats.bursts_failed += 1,
        }
    }
    (frames, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| Frame::Strip {
                page_id: 7,
                column: (i % 40) as u16,
                seq: (i / 40) as u16,
                last: false,
                payload: vec![(i % 251) as u8; 86],
            })
            .collect()
    }

    #[test]
    fn roundtrip_one_burst() {
        let p = Profile::sonic_10k();
        let fs = frames(5);
        let audio = modulate(&p, &fs);
        let (got, stats) = demodulate(&p, &audio);
        assert_eq!(got, fs);
        assert_eq!(stats.bursts_detected, 1);
        assert_eq!(stats.bursts_failed, 0);
        assert_eq!(stats.frames_ok, 5);
    }

    #[test]
    fn roundtrip_multiple_bursts() {
        let p = Profile::sonic_10k();
        let fs = frames(FRAMES_PER_BURST + 3);
        let audio = modulate(&p, &fs);
        let (got, stats) = demodulate(&p, &audio);
        assert_eq!(got.len(), fs.len());
        assert_eq!(stats.bursts_detected, 2);
        assert_eq!(got, fs);
    }

    #[test]
    fn forty_frames_fit_one_burst() {
        assert_eq!(FRAMES_PER_BURST, 40);
        let p = Profile::sonic_10k();
        let fs = frames(40);
        let audio = modulate(&p, &fs);
        let (_, stats) = demodulate(&p, &audio);
        assert_eq!(stats.bursts_detected, 1);
    }

    #[test]
    fn empty_input_is_silence() {
        let p = Profile::sonic_10k();
        assert!(modulate(&p, &[]).is_empty());
    }

    fn bits_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn modulate_with_table_matches_modulate() {
        let p = Profile::sonic_10k();
        let fs = frames(2 * FRAMES_PER_BURST + 7);
        let (audio, table) = modulate_with_table(&p, &fs);
        assert!(bits_eq(&audio, &modulate(&p, &fs)));
        assert_eq!(table.spans.len(), 3);
        // Spans tile the buffer exactly.
        let mut cursor = 0usize;
        for s in &table.spans {
            assert_eq!(s.start, cursor);
            cursor += s.len;
        }
        assert_eq!(cursor, audio.len());
    }

    #[test]
    fn splice_identical_frames_reuses_every_burst() {
        let p = Profile::sonic_10k();
        let fs = frames(FRAMES_PER_BURST + 10);
        let (audio, table) = modulate_with_table(&p, &fs);
        let spliced = modulate_spliced(&p, &fs, &audio, &table);
        assert_eq!(spliced.reused, 2);
        assert_eq!(spliced.modulated, 0);
        assert!(bits_eq(&spliced.audio, &audio));
        assert_eq!(spliced.table.spans, table.spans);
    }

    #[test]
    fn splice_with_mutated_burst_is_bit_identical_to_cold() {
        let p = Profile::sonic_10k();
        let fs = frames(3 * FRAMES_PER_BURST);
        let (audio, table) = modulate_with_table(&p, &fs);
        // Mutate one frame in the middle burst.
        let mut changed = fs.clone();
        if let Frame::Strip { payload, .. } = &mut changed[FRAMES_PER_BURST + 5] {
            payload[0] ^= 0xFF;
        }
        let spliced = modulate_spliced(&p, &changed, &audio, &table);
        assert_eq!(spliced.reused, 2);
        assert_eq!(spliced.modulated, 1);
        assert!(bits_eq(&spliced.audio, &modulate(&p, &changed)));
        // And the spliced audio still demodulates to the new frames.
        let (got, stats) = demodulate(&p, &spliced.audio);
        assert_eq!(got, changed);
        assert_eq!(stats.bursts_failed, 0);
    }

    #[test]
    fn splice_against_empty_table_modulates_everything() {
        let p = Profile::sonic_10k();
        let fs = frames(FRAMES_PER_BURST / 2);
        let spliced = modulate_spliced(&p, &fs, &[], &BurstTable::default());
        assert_eq!(spliced.reused, 0);
        assert_eq!(spliced.modulated, 1);
        assert!(bits_eq(&spliced.audio, &modulate(&p, &fs)));
    }
}
