//! Link ↔ PHY adaptation: batching 100-byte SONIC frames into OFDM bursts.
//!
//! A PHY burst costs 4 overhead symbols (preamble, training ×2, header), so
//! sending one 100-byte frame per burst would waste most of the airtime.
//! The link layer therefore packs [`FRAMES_PER_BURST`] frames per burst;
//! a burst lost to sync/header failure costs that many frames, which is the
//! granularity the loss experiments measure.

use crate::frame::{Frame, FrameError, FRAME_SIZE};
use sonic_modem::frame::{demodulate_frames, modulate_frame, MAX_PAYLOAD};
use sonic_modem::profile::Profile;

/// Link frames packed into one PHY burst (40 × 100 B = 4000 ≤ 4095).
pub const FRAMES_PER_BURST: usize = MAX_PAYLOAD / FRAME_SIZE;

/// Reception statistics at frame granularity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkStats {
    /// PHY bursts detected.
    pub bursts_detected: usize,
    /// PHY bursts that failed (header/FEC/truncation).
    pub bursts_failed: usize,
    /// Link frames recovered with a valid CRC.
    pub frames_ok: usize,
    /// Link frames dropped (bad CRC or inside failed bursts is unknown —
    /// only counts frames that arrived but failed their CRC).
    pub frames_bad_crc: usize,
}

/// Modulates a frame sequence into audio, [`FRAMES_PER_BURST`] per burst.
pub fn modulate(profile: &Profile, frames: &[Frame]) -> Vec<f32> {
    let mut audio = Vec::new();
    for group in frames.chunks(FRAMES_PER_BURST) {
        let mut payload = Vec::with_capacity(group.len() * FRAME_SIZE);
        for f in group {
            payload.extend_from_slice(&f.encode());
        }
        audio.extend(modulate_frame(profile, &payload));
        // Half a symbol of guard between bursts.
        audio.extend(std::iter::repeat_n(0.0, profile.symbol_len() / 2));
    }
    audio
}

/// Demodulates audio back into link frames with loss accounting.
pub fn demodulate(profile: &Profile, audio: &[f32]) -> (Vec<Frame>, LinkStats) {
    let mut stats = LinkStats::default();
    let mut frames = Vec::new();
    for burst in demodulate_frames(profile, audio) {
        stats.bursts_detected += 1;
        match burst.payload {
            Ok(payload) => {
                for chunk in payload.chunks(FRAME_SIZE) {
                    match Frame::decode(chunk) {
                        Ok(f) => {
                            stats.frames_ok += 1;
                            frames.push(f);
                        }
                        Err(FrameError::BadSize) => {
                            // Trailing partial chunk: a malformed batch.
                            stats.frames_bad_crc += 1;
                        }
                        Err(_) => stats.frames_bad_crc += 1,
                    }
                }
            }
            Err(_) => stats.bursts_failed += 1,
        }
    }
    (frames, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| Frame::Strip {
                page_id: 7,
                column: (i % 40) as u16,
                seq: (i / 40) as u16,
                last: false,
                payload: vec![(i % 251) as u8; 86],
            })
            .collect()
    }

    #[test]
    fn roundtrip_one_burst() {
        let p = Profile::sonic_10k();
        let fs = frames(5);
        let audio = modulate(&p, &fs);
        let (got, stats) = demodulate(&p, &audio);
        assert_eq!(got, fs);
        assert_eq!(stats.bursts_detected, 1);
        assert_eq!(stats.bursts_failed, 0);
        assert_eq!(stats.frames_ok, 5);
    }

    #[test]
    fn roundtrip_multiple_bursts() {
        let p = Profile::sonic_10k();
        let fs = frames(FRAMES_PER_BURST + 3);
        let audio = modulate(&p, &fs);
        let (got, stats) = demodulate(&p, &audio);
        assert_eq!(got.len(), fs.len());
        assert_eq!(stats.bursts_detected, 2);
        assert_eq!(got, fs);
    }

    #[test]
    fn forty_frames_fit_one_burst() {
        assert_eq!(FRAMES_PER_BURST, 40);
        let p = Profile::sonic_10k();
        let fs = frames(40);
        let audio = modulate(&p, &fs);
        let (_, stats) = demodulate(&p, &audio);
        assert_eq!(stats.bursts_detected, 1);
    }

    #[test]
    fn empty_input_is_silence() {
        let p = Profile::sonic_10k();
        assert!(modulate(&p, &[]).is_empty());
    }
}
