//! The cluster wire layer: framed transport between the coordinator and
//! its transmitter sites (ROADMAP item 1's "real socket boundary").
//!
//! Three stacked pieces, each independently testable:
//!
//! * [`codec`] — the `[len: u32][crc: u32][payload]` wire framing with
//!   byte-stream resynchronisation. Everything that crosses a link goes
//!   through it, so torn writes and bit flips surface as CRC failures and
//!   skipped bytes, never as phantom messages.
//! * [`transport`] — `SimTransport`: an in-process simulated byte link
//!   with seeded fault injection (partial writes, drops, corruption,
//!   reordering, latency spikes, severed windows). Every impairment is a
//!   pure function of `(seed, time, nonce)`, mirroring
//!   `sonic_radio::faults` — same seed, same byte stream, at any wall
//!   clock.
//! * [`proto`] + [`rpc`] — the control-plane messages (carousel pushes,
//!   repair bursts, health pings, warm-restart resumes) and the client
//!   machinery that retries them under per-RPC deadlines, exponential
//!   backoff, bounded queues and health-checked failover.
//!
//! The cluster built on top lives in `crate::server::cluster`.

pub mod codec;
pub mod proto;
pub mod rpc;
pub mod transport;

pub use codec::{FrameDecoder, MAX_WIRE_PAYLOAD, WIRE_HEADER};
pub use proto::{Msg, Request, Response};
pub use rpc::{JobClass, RpcClient, RpcPolicy};
pub use transport::{LinkFaultPlan, Pipe, SimLink};
