//! `SimTransport`: an in-process simulated byte link with seeded faults.
//!
//! A [`Pipe`] is one direction of a link: `send` splits the outgoing bytes
//! into MTU-sized chunks (modelling partial writes — a frame can be torn
//! across chunks and lose its tail), rolls **one fate per write** and
//! applies it to one hash-chosen chunk; `recv_into` delivers the chunks
//! due by `now`. Per-write fates keep a message's survival odds
//! independent of its size — with per-chunk coin flips a large page push
//! would essentially never arrive intact and retries could not converge.
//! Every fate is a pure function of `(seed, nonce, chunk index)` through
//! the same SplitMix64 ladder as `sonic_radio::faults`, so a run is
//! byte-identical for a given seed at any wall clock or host — lint rule
//! R3 applies to this module.
//!
//! A [`SimLink`] pairs two pipes into a duplex coordinator↔site link.

use std::collections::VecDeque;

/// SplitMix64 step — the hash behind all schedule-derived randomness.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines seed material into one hash word.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix(mix(mix(a) ^ b) ^ c)
}

/// Uniform f64 in [0,1) from a hash word.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded impairment schedule for one pipe direction.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaultPlan {
    /// Seed for every per-chunk decision.
    pub seed: u64,
    /// Write granularity in bytes: one `send` becomes `ceil(len/mtu)`
    /// chunks (the partial-write / torn-frame model).
    pub mtu: usize,
    /// Base one-way latency in seconds.
    pub base_latency_s: f64,
    /// Uniform extra latency in `[0, jitter_s)` per chunk.
    pub jitter_s: f64,
    /// Probability a write silently loses one chunk (tearing the frames
    /// that chunk carried).
    pub drop_prob: f64,
    /// Probability a write arrives with one bit flipped in one chunk.
    pub corrupt_prob: f64,
    /// Probability one chunk of a write is delayed past its successors
    /// (reordering).
    pub reorder_prob: f64,
    /// Severed-link windows `(start_s, end_s)`: sends are refused and
    /// chunks already in flight that would arrive inside a window drop.
    pub down: Vec<(f64, f64)>,
    /// Latency spikes `(start_s, end_s, extra_s)` added to chunks sent in
    /// the window.
    pub spikes: Vec<(f64, f64, f64)>,
}

impl LinkFaultPlan {
    /// A clean link: small fixed latency, no impairments.
    pub fn clean(seed: u64) -> Self {
        LinkFaultPlan {
            seed,
            mtu: 1400,
            base_latency_s: 0.02,
            jitter_s: 0.0,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            reorder_prob: 0.0,
            down: Vec::new(),
            spikes: Vec::new(),
        }
    }

    /// A hostile backhaul: small MTU (every message torn into several
    /// chunks), loss, corruption, reordering and jitter.
    pub fn hostile(seed: u64) -> Self {
        LinkFaultPlan {
            seed,
            mtu: 48,
            base_latency_s: 0.08,
            jitter_s: 0.25,
            drop_prob: 0.02,
            corrupt_prob: 0.01,
            reorder_prob: 0.05,
            down: Vec::new(),
            spikes: Vec::new(),
        }
    }

    /// Whether the link is severed at `t_s`.
    pub fn down_at(&self, t_s: f64) -> bool {
        self.down.iter().any(|&(a, b)| t_s >= a && t_s < b)
    }

    /// Latency-spike surcharge for a chunk sent at `t_s`.
    fn spike_extra(&self, t_s: f64) -> f64 {
        self.spikes
            .iter()
            .filter(|&&(a, b, _)| t_s >= a && t_s < b)
            .map(|&(_, _, x)| x)
            .sum()
    }
}

/// One in-flight chunk.
#[derive(Debug, Clone)]
struct Chunk {
    arrival_s: f64,
    seq: u64,
    bytes: Vec<u8>,
}

/// Pipe counters (soak assertions and diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeStats {
    /// Chunks accepted by `send`.
    pub chunks_sent: u64,
    /// Payload bytes accepted by `send`.
    pub bytes_sent: u64,
    /// Chunks lost in flight (drop fate or severed on arrival).
    pub chunks_dropped: u64,
    /// Chunks delivered with a flipped bit.
    pub chunks_corrupted: u64,
    /// `send` calls refused because the link was severed.
    pub sends_refused: u64,
    /// Payload bytes delivered to the receiver.
    pub bytes_delivered: u64,
}

/// One direction of a simulated link.
#[derive(Debug)]
pub struct Pipe {
    /// The impairment schedule.
    pub plan: LinkFaultPlan,
    inflight: VecDeque<Chunk>,
    nonce: u64,
    /// Latest in-order scheduled arrival: the stream-order floor. Jitter
    /// delays delivery but never permutes it (a TCP-like stream); only an
    /// explicit reorder fate may overtake this horizon.
    horizon_s: f64,
    /// Counters.
    pub stats: PipeStats,
}

impl Pipe {
    /// A pipe under `plan`.
    pub fn new(plan: LinkFaultPlan) -> Self {
        Pipe {
            plan,
            inflight: VecDeque::new(),
            nonce: 0,
            horizon_s: 0.0,
            stats: PipeStats::default(),
        }
    }

    /// Queues `bytes` for delivery, chunk by chunk. Returns `false` (and
    /// accepts nothing) when the link is severed at `now_s` — the caller
    /// sees a failed write, exactly like a reset socket.
    pub fn send(&mut self, bytes: &[u8], now_s: f64) -> bool {
        if self.plan.down_at(now_s) {
            self.stats.sends_refused += 1;
            return false;
        }
        if bytes.is_empty() {
            return true;
        }
        let mtu = self.plan.mtu.max(1);
        let n_chunks = bytes.len().div_ceil(mtu);
        // One fate per write, applied to one hash-chosen victim chunk: a
        // write is damaged with probability `drop + corrupt + reorder`
        // regardless of how many chunks it spans.
        let msg_h = mix3(self.plan.seed, self.nonce, 0xC4);
        let roll = unit_f64(mix(msg_h ^ 0x11));
        let fate = if roll < self.plan.drop_prob {
            1 // the victim chunk is silently lost
        } else if roll < self.plan.drop_prob + self.plan.corrupt_prob {
            2 // the victim chunk takes a bit flip
        } else if roll < self.plan.drop_prob + self.plan.corrupt_prob + self.plan.reorder_prob {
            3 // the victim chunk is displaced past its successors
        } else {
            0
        };
        let victim = (mix(msg_h ^ 0x33) as usize) % n_chunks;
        for (i, chunk) in bytes.chunks(mtu).enumerate() {
            let h = mix3(msg_h, i as u64, 0x55);
            self.nonce = self.nonce.wrapping_add(1);
            self.stats.chunks_sent += 1;
            self.stats.bytes_sent += chunk.len() as u64;
            let fated = i == victim;
            if fated && fate == 1 {
                self.stats.chunks_dropped += 1;
                continue; // lost in flight: the frame it carried is torn
            }
            let mut bytes = chunk.to_vec();
            if fated && fate == 2 {
                let pos = (mix(h ^ 0x33) as usize) % bytes.len();
                let bit = 1u8 << (mix(h ^ 0x44) % 8);
                bytes[pos] ^= bit;
                self.stats.chunks_corrupted += 1;
            }
            let mut arrival = now_s
                + self.plan.base_latency_s
                + self.plan.jitter_s * unit_f64(mix(h ^ 0x55))
                + self.plan.spike_extra(now_s);
            if fated && fate == 3 {
                // Push this chunk past its successors' nominal arrivals —
                // the one fate allowed to break stream order.
                arrival += self.plan.base_latency_s + self.plan.jitter_s + 0.01;
            } else {
                // Stream semantics: jitter stretches the pipe but delivery
                // stays in send order.
                arrival = arrival.max(self.horizon_s);
                self.horizon_s = arrival;
            }
            let seq = self.nonce;
            // Insert sorted by (arrival, seq): delivery order is a pure
            // function of the schedule, independent of poll cadence. Scan
            // from the back — stream-ordered arrivals append at the tail,
            // so the common case is O(1).
            let at = self
                .inflight
                .iter()
                .rposition(|c| (c.arrival_s, c.seq) <= (arrival, seq))
                .map_or(0, |i| i + 1);
            self.inflight.insert(at, Chunk { arrival_s: arrival, seq, bytes });
        }
        true
    }

    /// Appends every chunk due by `now_s` to `out`, in schedule order.
    /// Chunks whose arrival falls inside a severed window are dropped —
    /// the sever tears whatever was mid-flight.
    pub fn recv_into(&mut self, now_s: f64, out: &mut Vec<u8>) {
        while let Some(front) = self.inflight.front() {
            if front.arrival_s > now_s {
                break;
            }
            let Some(chunk) = self.inflight.pop_front() else {
                break;
            };
            if self.plan.down_at(chunk.arrival_s) {
                self.stats.chunks_dropped += 1;
                continue;
            }
            self.stats.bytes_delivered += chunk.bytes.len() as u64;
            out.extend_from_slice(&chunk.bytes);
        }
    }

    /// Chunks currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Drops every in-flight chunk (a crashed endpoint loses its socket
    /// buffers). Returns the number of chunks lost.
    pub fn flush_inflight(&mut self) -> usize {
        let n = self.inflight.len();
        self.stats.chunks_dropped += n as u64;
        self.inflight.clear();
        n
    }
}

/// A duplex link: `a_to_b` carries coordinator→site traffic, `b_to_a` the
/// replies.
#[derive(Debug)]
pub struct SimLink {
    /// Forward direction.
    pub a_to_b: Pipe,
    /// Reverse direction.
    pub b_to_a: Pipe,
}

impl SimLink {
    /// A link whose two directions share fault characteristics but use
    /// independent seeds (derived from the plans').
    pub fn new(forward: LinkFaultPlan, reverse: LinkFaultPlan) -> Self {
        SimLink {
            a_to_b: Pipe::new(forward),
            b_to_a: Pipe::new(reverse),
        }
    }

    /// A symmetric link from one plan (reverse seed derived).
    pub fn symmetric(plan: LinkFaultPlan) -> Self {
        let mut reverse = plan.clone();
        reverse.seed = mix(plan.seed ^ 0xB1DA);
        SimLink::new(plan, reverse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::codec::{frame_bytes, FrameDecoder};

    #[test]
    fn clean_pipe_delivers_in_order_after_latency() {
        let mut p = Pipe::new(LinkFaultPlan::clean(1));
        assert!(p.send(b"hello ", 0.0));
        assert!(p.send(b"world", 0.001));
        let mut out = Vec::new();
        p.recv_into(0.01, &mut out);
        assert!(out.is_empty(), "nothing before latency elapses");
        p.recv_into(0.05, &mut out);
        assert_eq!(out, b"hello world");
        assert_eq!(p.stats.bytes_delivered, 11);
    }

    #[test]
    fn same_seed_same_stream_any_poll_cadence() {
        let run = |polls: &[f64]| {
            let mut p = Pipe::new(LinkFaultPlan::hostile(42));
            let mut out = Vec::new();
            for i in 0..40u64 {
                let payload = vec![i as u8; 100 + (i as usize % 37)];
                p.send(&frame_bytes(&payload), i as f64 * 0.1);
            }
            for &t in polls {
                p.recv_into(t, &mut out);
            }
            p.recv_into(1e9, &mut out);
            (out, p.stats)
        };
        let coarse = run(&[10.0]);
        let fine: (Vec<u8>, PipeStats) = run(&(0..1000).map(|i| i as f64 * 0.01).collect::<Vec<_>>());
        assert_eq!(coarse, fine, "delivery is a pure function of the seed");
    }

    #[test]
    fn severed_window_refuses_sends_and_tears_inflight() {
        let mut plan = LinkFaultPlan::clean(7);
        plan.base_latency_s = 1.0;
        plan.down = vec![(10.0, 20.0)];
        let mut p = Pipe::new(plan);
        assert!(p.send(b"before", 5.0)); // arrives at 6.0: fine
        assert!(p.send(b"torn", 9.5)); // arrives at 10.5: inside the sever
        assert!(!p.send(b"refused", 15.0));
        let mut out = Vec::new();
        p.recv_into(30.0, &mut out);
        assert_eq!(out, b"before");
        assert_eq!(p.stats.sends_refused, 1);
        assert_eq!(p.stats.chunks_dropped, 1);
    }

    #[test]
    fn hostile_pipe_with_codec_yields_only_crc_valid_frames() {
        let mut p = Pipe::new(LinkFaultPlan::hostile(3));
        let payloads: Vec<Vec<u8>> = (0..200u32)
            .map(|i| (0..(40 + i as usize % 200)).map(|j| (i as u8).wrapping_add(j as u8)).collect())
            .collect();
        for (i, payload) in payloads.iter().enumerate() {
            p.send(&frame_bytes(payload), i as f64 * 0.05);
        }
        let mut bytes = Vec::new();
        p.recv_into(1e9, &mut bytes);
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        let got = d.drain_frames();
        assert!(!got.is_empty(), "some frames must survive");
        assert!(got.len() < payloads.len(), "some frames must be torn");
        for f in &got {
            assert!(payloads.contains(f), "no phantom frames");
        }
        assert!(d.stats.resyncs > 0, "torn frames force resyncs");
    }

    #[test]
    fn latency_spike_delays_chunks_sent_in_window() {
        let mut plan = LinkFaultPlan::clean(9);
        plan.base_latency_s = 0.1;
        plan.spikes = vec![(10.0, 11.0, 5.0)];
        let mut p = Pipe::new(plan);
        p.send(b"spiked", 10.5);
        let mut out = Vec::new();
        p.recv_into(11.0, &mut out);
        assert!(out.is_empty(), "held by the spike");
        p.recv_into(15.7, &mut out);
        assert_eq!(out, b"spiked");
    }

    #[test]
    fn crash_flush_drops_inflight_chunks() {
        let mut p = Pipe::new(LinkFaultPlan::clean(11));
        p.send(b"doomed bytes", 0.0);
        assert!(p.in_flight() > 0);
        assert_eq!(p.flush_inflight(), 1);
        let mut out = Vec::new();
        p.recv_into(1e9, &mut out);
        assert!(out.is_empty());
    }
}
