//! Per-site RPC machinery: deadlines, retry budgets, exponential backoff
//! and health-checked failover — the `RepairPlanner` budget idiom applied
//! to the control plane.
//!
//! One [`RpcClient`] manages the coordinator's view of one site. Requests
//! are submitted into a *bounded* queue with class-based shedding (repair
//! bursts dropped before carousel pages — degrading gracefully beats
//! buffering without bound), sent under a bounded in-flight window, and
//! retried with exponential backoff while their per-RPC attempt budget
//! lasts. Consecutive *control-plane* deadline expiries (pings, resumes)
//! trip the site into `Down` — data pushes can tear under congestion
//! without flapping health; while down, only probe pings flow, and the
//! first response of any kind flips the site back `Up` (the coordinator
//! then issues a warm-restart `Resume`).

use super::codec::{frame_bytes, FrameDecoder};
use super::proto::{decode_msg, encode_msg, Msg, Request, Response};
use super::transport::Pipe;
use std::collections::{BTreeMap, VecDeque};

/// Priority class of a queued request — shed order under overload, lowest
/// value first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobClass {
    /// NACK repair bursts: retransmissions, cheapest to lose (the next
    /// carousel pass covers them).
    Repair = 0,
    /// Delta carousel slots.
    Delta = 1,
    /// Full pages (carousel pushes, query results).
    Page = 2,
    /// Health probes and resume instructions: never shed.
    Control = 3,
}

/// RPC policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcPolicy {
    /// Seconds an attempt may remain unanswered before it expires.
    pub deadline_s: f64,
    /// Attempts (first try + retries) per RPC before giving up.
    pub max_attempts: u32,
    /// Base of the exponential backoff between attempts: attempt `n`
    /// waits `backoff_base_s · 2^(n-1)` after its expiry.
    pub backoff_base_s: f64,
    /// Most RPCs in flight at once (send window).
    pub max_outstanding: usize,
    /// Most requests waiting in the send queue; beyond it, shedding.
    pub max_queued: usize,
    /// Consecutive control-class expiries that trip the site `Down`.
    pub fail_threshold: u32,
    /// Seconds between probe pings while `Down`.
    pub probe_interval_s: f64,
}

impl Default for RpcPolicy {
    fn default() -> Self {
        RpcPolicy {
            deadline_s: 5.0,
            max_attempts: 3,
            backoff_base_s: 2.0,
            max_outstanding: 8,
            max_queued: 64,
            fail_threshold: 3,
            probe_interval_s: 15.0,
        }
    }
}

/// Client counters (soak assertions and diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Messages written to the wire (first attempts + retries + probes).
    pub sent: u64,
    /// Attempts re-sent after an expiry.
    pub retries: u64,
    /// RPCs completed by a response.
    pub completed: u64,
    /// Attempt expiries (deadline passed unanswered).
    pub expired: u64,
    /// RPCs abandoned with their attempt budget spent.
    pub gave_up: u64,
    /// Repair-class requests shed at the queue.
    pub shed_repairs: u64,
    /// Delta-class requests shed at the queue.
    pub shed_deltas: u64,
    /// Page-class requests shed at the queue.
    pub shed_pages: u64,
    /// Probe pings sent while down.
    pub probes: u64,
    /// Up→Down transitions.
    pub downs: u64,
    /// Down→Up transitions.
    pub recoveries: u64,
    /// High-water mark of the send queue.
    pub peak_queued: usize,
    /// High-water mark of in-flight RPCs.
    pub peak_outstanding: usize,
}

/// One request attempt's state.
#[derive(Debug, Clone)]
struct Flight {
    req: Request,
    class: JobClass,
    attempts: u32,
}

/// Health of the remote site as seen through this client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Up,
    Down,
}

/// The coordinator-side endpoint of one coordinator↔site link.
#[derive(Debug)]
pub struct RpcClient {
    /// Policy knobs.
    pub policy: RpcPolicy,
    next_id: u64,
    queue: VecDeque<Flight>,
    /// id → (flight, deadline). Sent, awaiting a response.
    outstanding: BTreeMap<u64, (Flight, f64)>,
    /// id → (flight, retry-at). Expired, waiting out the backoff.
    backoff: BTreeMap<u64, (Flight, f64)>,
    decoder: FrameDecoder,
    health: Health,
    consecutive_failures: u32,
    next_probe_s: f64,
    /// Set by a Down→Up transition; taken by the coordinator to trigger
    /// the warm-restart `Resume` exactly once per recovery.
    recovered_flag: bool,
    /// Last time the response decoder made progress (or sat empty) —
    /// the stall watchdog's reference point.
    last_rx_progress_s: f64,
    /// Counters.
    pub stats: RpcStats,
}

impl RpcClient {
    /// A client under `policy`, starting healthy.
    pub fn new(policy: RpcPolicy) -> Self {
        RpcClient {
            policy,
            next_id: 0,
            queue: VecDeque::new(),
            outstanding: BTreeMap::new(),
            backoff: BTreeMap::new(),
            decoder: FrameDecoder::new(),
            health: Health::Up,
            consecutive_failures: 0,
            next_probe_s: 0.0,
            recovered_flag: false,
            last_rx_progress_s: 0.0,
            stats: RpcStats::default(),
        }
    }

    /// Whether the site currently counts as healthy.
    pub fn is_up(&self) -> bool {
        self.health == Health::Up
    }

    /// Takes the "just recovered" edge (true at most once per Down→Up).
    pub fn take_recovered(&mut self) -> bool {
        std::mem::take(&mut self.recovered_flag)
    }

    /// Requests waiting to be sent.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// RPCs in flight (sent or backing off).
    pub fn in_flight(&self) -> usize {
        self.outstanding.len() + self.backoff.len()
    }

    /// Whether any queued, sent or backing-off request matches `pred` —
    /// the coalescing check: a duplicate of work already pending adds
    /// queue pressure without adding information.
    pub fn has_pending(&self, pred: impl Fn(&Request) -> bool) -> bool {
        self.queue.iter().any(|f| pred(&f.req))
            || self.outstanding.values().any(|(f, _)| pred(&f.req))
            || self.backoff.values().any(|(f, _)| pred(&f.req))
    }

    fn note_shed(&mut self, class: JobClass) {
        match class {
            JobClass::Repair => self.stats.shed_repairs += 1,
            JobClass::Delta => self.stats.shed_deltas += 1,
            JobClass::Page => self.stats.shed_pages += 1,
            JobClass::Control => {}
        }
    }

    /// Submits a request. Under queue pressure the *lowest* class present
    /// is shed first: an incoming page push evicts a queued repair burst,
    /// while an incoming repair is dropped outright when nothing cheaper
    /// waits. Returns whether the request was accepted.
    pub fn submit(&mut self, class: JobClass, req: Request) -> bool {
        self.stats.submitted += 1;
        if self.queue.len() >= self.policy.max_queued.max(1) {
            let victim = self
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(i, fl)| (fl.class, *i))
                .map(|(i, fl)| (i, fl.class));
            match victim {
                Some((i, vclass)) if vclass < class => {
                    self.queue.remove(i);
                    self.note_shed(vclass);
                }
                _ => {
                    self.note_shed(class);
                    return false;
                }
            }
        }
        self.queue.push_back(Flight {
            req,
            class,
            attempts: 0,
        });
        self.stats.peak_queued = self.stats.peak_queued.max(self.queue.len());
        true
    }

    fn send_flight(&mut self, mut flight: Flight, now_s: f64, tx: &mut Pipe) {
        flight.attempts += 1;
        if flight.attempts > 1 {
            self.stats.retries += 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut payload = Vec::new();
        encode_msg(
            &Msg::Req {
                id,
                req: flight.req.clone(),
            },
            &mut payload,
        );
        let wrote = tx.send(&frame_bytes(&payload), now_s);
        self.stats.sent += 1;
        if wrote {
            let deadline = now_s + self.policy.deadline_s;
            self.outstanding.insert(id, (flight, deadline));
            self.stats.peak_outstanding = self.stats.peak_outstanding.max(self.outstanding.len());
        } else {
            // Refused write (severed link): an immediate failed attempt.
            self.note_attempt_failure(id, flight, now_s);
        }
    }

    fn note_attempt_failure(&mut self, id: u64, flight: Flight, now_s: f64) {
        self.stats.expired += 1;
        // Only control-plane expiries advance the failure count: pings and
        // resumes are single-chunk messages that survive anything short of
        // a dead peer, while a torn multi-kilobyte page push is congestion
        // or link damage — flipping health on data tears makes the whole
        // fleet flap under load.
        if flight.class == JobClass::Control {
            self.consecutive_failures += 1;
            if self.consecutive_failures >= self.policy.fail_threshold
                && self.health == Health::Up
            {
                self.health = Health::Down;
                self.stats.downs += 1;
                self.next_probe_s = now_s + self.policy.probe_interval_s;
            }
        }
        if flight.attempts >= self.policy.max_attempts {
            self.stats.gave_up += 1;
            return;
        }
        let shift = (flight.attempts.saturating_sub(1)).min(16);
        let retry_at = now_s + self.policy.backoff_base_s * f64::from(1u32 << shift);
        self.backoff.insert(id, (flight, retry_at));
    }

    fn note_response(&mut self, now_s: f64) {
        self.consecutive_failures = 0;
        if self.health == Health::Down {
            self.health = Health::Up;
            self.stats.recoveries += 1;
            self.recovered_flag = true;
        }
        let _ = now_s;
    }

    /// One scheduling round at `now_s`: reads responses from `rx`,
    /// expires overdue attempts, resends backed-off flights, fills the
    /// send window from the queue (probes only while `Down`), and returns
    /// every RPC completed this round as `(request, response)`.
    pub fn tick(&mut self, now_s: f64, tx: &mut Pipe, rx: &mut Pipe) -> Vec<(Request, Response)> {
        // 1. Responses.
        let mut bytes = Vec::new();
        rx.recv_into(now_s, &mut bytes);
        let frames_before = self.decoder.stats.frames;
        self.decoder.feed(&bytes);
        let mut completed = Vec::new();
        while let Some(frame) = self.decoder.next_frame() {
            let Some(Msg::Resp { id, resp }) = decode_msg(&frame) else {
                continue; // requests or damage: not ours to handle
            };
            let Some((flight, _)) = self.outstanding.remove(&id) else {
                continue; // late reply to an expired attempt
            };
            self.stats.completed += 1;
            self.note_response(now_s);
            completed.push((flight.req, resp));
        }
        // Stall watchdog: bytes buffered but nothing decoded for a full
        // deadline means the decoder is waiting on a torn frame's tail —
        // abandon it and re-scan rather than livelock.
        if self.decoder.buffered() == 0 || self.decoder.stats.frames > frames_before {
            self.last_rx_progress_s = now_s;
        } else if now_s - self.last_rx_progress_s > self.policy.deadline_s {
            self.decoder.force_resync();
            self.last_rx_progress_s = now_s;
        }

        // 2. Deadline expiries.
        let overdue: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, (_, dl))| now_s >= *dl)
            .map(|(&id, _)| id)
            .collect();
        for id in overdue {
            if let Some((flight, _)) = self.outstanding.remove(&id) {
                self.note_attempt_failure(id, flight, now_s);
            }
        }

        // 3. Backed-off flights whose wait elapsed re-enter the window.
        let due: Vec<u64> = self
            .backoff
            .iter()
            .filter(|(_, (_, at))| now_s >= *at)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            if self.outstanding.len() >= self.policy.max_outstanding {
                break;
            }
            if self.health == Health::Down {
                break; // hold retries while down; probes drive recovery
            }
            if let Some((flight, _)) = self.backoff.remove(&id) {
                self.send_flight(flight, now_s, tx);
            }
        }

        // 4. Fresh sends (or probes while down).
        if self.health == Health::Up {
            while self.outstanding.len() < self.policy.max_outstanding {
                let Some(flight) = self.queue.pop_front() else {
                    break;
                };
                self.send_flight(flight, now_s, tx);
            }
        } else if now_s >= self.next_probe_s {
            self.next_probe_s = now_s + self.policy.probe_interval_s;
            self.stats.probes += 1;
            self.send_flight(
                Flight {
                    req: Request::Ping,
                    class: JobClass::Control,
                    attempts: 0,
                },
                now_s,
                tx,
            );
        }
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::transport::{LinkFaultPlan, SimLink};

    /// A minimal site-side responder: acks every decoded request.
    fn pump_site(link: &mut SimLink, dec: &mut FrameDecoder, now_s: f64, answer: bool) -> usize {
        let mut bytes = Vec::new();
        link.a_to_b.recv_into(now_s, &mut bytes);
        dec.feed(&bytes);
        let mut n = 0;
        while let Some(frame) = dec.next_frame() {
            let Some(Msg::Req { id, .. }) = decode_msg(&frame) else {
                continue;
            };
            n += 1;
            if answer {
                let mut payload = Vec::new();
                encode_msg(
                    &Msg::Resp {
                        id,
                        resp: Response::Done { eta_ms: 1000 },
                    },
                    &mut payload,
                );
                link.b_to_a.send(&frame_bytes(&payload), now_s);
            }
        }
        n
    }

    #[test]
    fn request_completes_over_clean_link() {
        let mut link = SimLink::symmetric(LinkFaultPlan::clean(5));
        let mut client = RpcClient::new(RpcPolicy::default());
        let mut site = FrameDecoder::new();
        assert!(client.submit(JobClass::Page, Request::Ping));
        let mut done = Vec::new();
        for t in 0..10 {
            let now = t as f64 * 0.1;
            done.extend(client.tick(now, &mut link.a_to_b, &mut link.b_to_a));
            pump_site(&mut link, &mut site, now, true);
        }
        assert_eq!(done.len(), 1);
        assert_eq!(client.stats.completed, 1);
        assert!(client.is_up());
    }

    #[test]
    fn silence_expires_retries_then_gives_up_and_marks_down() {
        let policy = RpcPolicy {
            deadline_s: 1.0,
            max_attempts: 3,
            backoff_base_s: 1.0,
            fail_threshold: 3,
            ..RpcPolicy::default()
        };
        let mut link = SimLink::symmetric(LinkFaultPlan::clean(6));
        let mut client = RpcClient::new(policy);
        let mut site = FrameDecoder::new();
        client.submit(JobClass::Control, Request::Ping);
        for t in 0..300 {
            let now = t as f64 * 0.1;
            client.tick(now, &mut link.a_to_b, &mut link.b_to_a);
            pump_site(&mut link, &mut site, now, false); // site reads, never answers
        }
        assert_eq!(client.stats.gave_up, 1);
        assert_eq!(client.stats.retries, 2, "3 attempts = 2 retries");
        assert!(!client.is_up(), "threshold expiries trip Down");
        assert!(client.stats.probes > 0, "down sites get probed");
    }

    #[test]
    fn recovery_flips_up_and_sets_edge_flag() {
        let policy = RpcPolicy {
            deadline_s: 0.5,
            max_attempts: 1,
            fail_threshold: 1,
            probe_interval_s: 1.0,
            ..RpcPolicy::default()
        };
        let mut link = SimLink::symmetric(LinkFaultPlan::clean(8));
        let mut client = RpcClient::new(policy);
        let mut site = FrameDecoder::new();
        client.submit(JobClass::Control, Request::Ping);
        // Phase 1: silence until Down.
        for t in 0..40 {
            let now = t as f64 * 0.1;
            client.tick(now, &mut link.a_to_b, &mut link.b_to_a);
            pump_site(&mut link, &mut site, now, false);
        }
        assert!(!client.is_up());
        assert!(!client.take_recovered());
        // Phase 2: the site answers probes again.
        for t in 40..80 {
            let now = t as f64 * 0.1;
            client.tick(now, &mut link.a_to_b, &mut link.b_to_a);
            pump_site(&mut link, &mut site, now, true);
        }
        assert!(client.is_up());
        assert!(client.take_recovered(), "edge observed once");
        assert!(!client.take_recovered(), "…exactly once");
        assert_eq!(client.stats.recoveries, 1);
    }

    #[test]
    fn queue_sheds_repairs_before_pages() {
        let policy = RpcPolicy {
            max_queued: 2,
            ..RpcPolicy::default()
        };
        let mut client = RpcClient::new(policy);
        assert!(client.submit(JobClass::Repair, Request::Ping));
        assert!(client.submit(JobClass::Page, Request::Ping));
        // Queue full. A page push evicts the queued repair…
        assert!(client.submit(JobClass::Page, Request::Ping));
        assert_eq!(client.stats.shed_repairs, 1);
        // …but an incoming repair is refused when nothing cheaper waits.
        assert!(!client.submit(JobClass::Repair, Request::Ping));
        assert_eq!(client.stats.shed_repairs, 2);
        assert_eq!(client.queued(), 2, "bounded");
    }

    #[test]
    fn outstanding_window_is_bounded() {
        let policy = RpcPolicy {
            max_outstanding: 4,
            max_queued: 64,
            ..RpcPolicy::default()
        };
        let mut link = SimLink::symmetric(LinkFaultPlan::clean(9));
        let mut client = RpcClient::new(policy);
        for _ in 0..30 {
            client.submit(JobClass::Page, Request::Ping);
        }
        client.tick(0.0, &mut link.a_to_b, &mut link.b_to_a);
        assert_eq!(client.outstanding.len(), 4);
        assert_eq!(client.stats.peak_outstanding, 4);
        assert_eq!(client.queued(), 26);
    }
}
