//! Length-prefixed wire framing: `[len: u32][crc: u32][payload]`.
//!
//! `len` counts payload bytes only; `crc` is the CRC-32 of the payload.
//! Both prefix words are big-endian. The decoder treats its input as an
//! untrusted byte *stream*: arbitrary splits, truncations and bit flips
//! must never produce a panic or a phantom frame — a damaged prefix is
//! walked off one byte at a time until the stream re-locks on a valid
//! frame (`resyncs` counts the events, `skipped_bytes` the cost).

use sonic_fec::crc32;

/// Bytes of framing prefix per wire frame (`len` + `crc`).
pub const WIRE_HEADER: usize = 8;

/// Upper bound on a single wire payload. Anything larger than this in a
/// length prefix is treated as stream damage, not a frame to wait for —
/// the bound is what keeps a corrupted length word from stalling the
/// decoder (and its buffer) forever.
pub const MAX_WIRE_PAYLOAD: usize = 1 << 20;

/// Appends one encoded wire frame for `payload` to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    // lint: checked-cast — payloads are bounded by MAX_WIRE_PAYLOAD (1 MiB), far below u32::MAX
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
}

/// One encoded wire frame as an owned buffer.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(WIRE_HEADER + payload.len());
    encode_frame(payload, &mut out);
    out
}

/// Decoder counters (soak assertions and link diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecoderStats {
    /// CRC-valid frames emitted.
    pub frames: u64,
    /// Times the decoder lost lock and began scanning byte-by-byte.
    pub resyncs: u64,
    /// Bytes discarded while scanning for the next valid frame.
    pub skipped_bytes: u64,
    /// Candidate frames dropped on CRC mismatch.
    pub crc_failures: u64,
}

/// Incremental decoder over an adversarial byte stream.
///
/// Feed arbitrary chunks with [`feed`](Self::feed); pull frames with
/// [`next_frame`](Self::next_frame). Buffered bytes are bounded by
/// `MAX_WIRE_PAYLOAD + WIRE_HEADER` plus the largest single `feed` chunk:
/// the decoder either consumes, emits or skips — it never waits on more
/// than one plausible frame.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted periodically, not per byte).
    head: usize,
    /// Counters.
    pub stats: DecoderStats,
    /// Whether the scan position is mid-resync (so a run of skipped bytes
    /// counts as one resync event, not one per byte).
    scanning: bool,
}

impl FrameDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes to the stream buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Drops the consumed prefix once it dominates the buffer.
    fn compact(&mut self) {
        if self.head > 4096 && self.head * 2 >= self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }

    /// Skips one byte of damaged stream.
    fn skip_byte(&mut self) {
        if !self.scanning {
            self.scanning = true;
            self.stats.resyncs += 1;
        }
        self.head += 1;
        self.stats.skipped_bytes += 1;
    }

    /// Abandons the current in-sync wait and begins scanning from the next
    /// byte. Endpoint watchdogs call this when bytes have sat undecoded
    /// past a stall horizon: the pending length prefix then belongs to a
    /// frame whose tail was torn in flight and will never arrive, and
    /// waiting on it would swallow every later frame (a decoder livelock).
    /// A no-op on an empty buffer; if the suspect frame's bytes do arrive
    /// later after all, only that one frame is lost to the scan.
    pub fn force_resync(&mut self) {
        if self.buffered() > 0 {
            self.skip_byte();
        }
    }

    /// Decodes the next CRC-valid frame, or `None` when the buffered
    /// stream holds no complete frame (more bytes may still arrive).
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        loop {
            let avail = self.buf.len() - self.head;
            if avail < WIRE_HEADER {
                return None;
            }
            let at = self.head;
            let len = u32::from_be_bytes([
                self.buf[at],
                self.buf[at + 1],
                self.buf[at + 2],
                self.buf[at + 3],
            ]) as usize;
            if len > MAX_WIRE_PAYLOAD {
                // Implausible length: a damaged prefix, not a frame.
                self.skip_byte();
                continue;
            }
            if avail < WIRE_HEADER + len {
                if self.scanning {
                    // Mid-resync a "plausible" length word is just damage
                    // that happens to read small; waiting on it could stall
                    // behind bytes that never come while valid frames sit
                    // deeper in the buffer. Keep scanning.
                    self.skip_byte();
                    continue;
                }
                return None; // in sync: the frame's bytes are still in flight
            }
            let want = u32::from_be_bytes([
                self.buf[at + 4],
                self.buf[at + 5],
                self.buf[at + 6],
                self.buf[at + 7],
            ]);
            let payload = &self.buf[at + WIRE_HEADER..at + WIRE_HEADER + len];
            if crc32(payload) != want {
                self.stats.crc_failures += 1;
                self.skip_byte();
                continue;
            }
            let frame = payload.to_vec();
            self.head += WIRE_HEADER + len;
            self.scanning = false;
            self.stats.frames += 1;
            self.compact();
            return Some(frame);
        }
    }

    /// Drains every decodable frame currently buffered.
    pub fn drain_frames(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(f) = self.next_frame() {
            out.push(f);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(payloads: &[&[u8]]) -> Vec<u8> {
        let mut s = Vec::new();
        for p in payloads {
            encode_frame(p, &mut s);
        }
        s
    }

    #[test]
    fn round_trips_frames_across_arbitrary_splits() {
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 1 + i as usize * 7]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let bytes = stream(&refs);
        for split in 1..bytes.len().min(64) {
            let mut d = FrameDecoder::new();
            let mut got = Vec::new();
            for chunk in bytes.chunks(split) {
                d.feed(chunk);
                got.extend(d.drain_frames());
            }
            assert_eq!(got, payloads, "split={split}");
            assert_eq!(d.stats.resyncs, 0);
            assert_eq!(d.buffered(), 0);
        }
    }

    #[test]
    fn empty_payload_frames_are_legal() {
        let bytes = stream(&[b"", b"x", b""]);
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        assert_eq!(d.drain_frames(), vec![b"".to_vec(), b"x".to_vec(), b"".to_vec()]);
    }

    #[test]
    fn bit_flip_in_payload_resyncs_to_next_frame() {
        let bytes = {
            let mut b = stream(&[b"victim-frame-payload", b"survivor"]);
            b[WIRE_HEADER + 3] ^= 0x40; // damage frame 1's payload
            b
        };
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        let got = d.drain_frames();
        assert_eq!(got, vec![b"survivor".to_vec()]);
        assert_eq!(d.stats.resyncs, 1);
        assert!(d.stats.crc_failures >= 1);
        assert!(d.stats.skipped_bytes > 0);
    }

    #[test]
    fn truncated_tail_yields_the_valid_prefix() {
        let bytes = stream(&[b"one", b"two", b"three"]);
        for cut in 0..bytes.len() {
            let mut d = FrameDecoder::new();
            d.feed(&bytes[..cut]);
            let got = d.drain_frames();
            let whole: Vec<Vec<u8>> =
                [b"one".to_vec(), b"two".to_vec(), b"three".to_vec()].to_vec();
            assert!(got.len() <= whole.len());
            assert_eq!(got, whole[..got.len()].to_vec(), "cut={cut}");
        }
    }

    #[test]
    fn implausible_length_prefix_does_not_stall() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes()); // absurd len
        bytes.extend_from_slice(&[0u8; 4]);
        encode_frame(b"after-garbage", &mut bytes);
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        assert_eq!(d.drain_frames(), vec![b"after-garbage".to_vec()]);
        assert!(d.stats.skipped_bytes >= 8);
    }

    #[test]
    fn pure_garbage_is_skipped_without_frames() {
        let mut d = FrameDecoder::new();
        let junk: Vec<u8> = (0..997u32).map(|i| (i * 31 % 251) as u8).collect();
        d.feed(&junk);
        assert!(d.drain_frames().is_empty());
        assert_eq!(d.stats.frames, 0);
    }

    #[test]
    fn buffer_compacts_after_consuming_large_prefix() {
        let big = vec![7u8; 9000];
        let mut d = FrameDecoder::new();
        d.feed(&frame_bytes(&big));
        assert_eq!(d.next_frame().map(|f| f.len()), Some(9000));
        d.feed(&frame_bytes(b"tiny"));
        assert_eq!(d.next_frame(), Some(b"tiny".to_vec()));
        assert!(d.buf.len() < 9000, "consumed prefix must be dropped");
    }
}
