//! Control-plane messages between the coordinator and its sites.
//!
//! Hand-rolled big-endian serialization over the [`super::codec`] wire
//! framing: one encoded `Msg` per wire frame. Decoding is *total* — any
//! byte sequence either parses or returns `None`; a truncated or
//! tag-corrupted message can never panic (the outer CRC makes this rare,
//! but the decoder does not rely on it).
//!
//! Link [`Frame`]s ride inside [`Request::PushFrames`] in their on-air
//! 100-byte encoding, so payload integrity is double-checked: the wire
//! frame's CRC-32 first, each link frame's own CRC-32 after.

use crate::frame::{Frame, FRAME_SIZE};
use crate::server::scheduler::SlotKind;

/// Most link frames allowed in one `PushFrames` message. A full page at
/// paper scales is a few hundred frames; the bound only rejects damaged
/// or adversarial length words.
pub const MAX_FRAMES_PER_MSG: usize = 4096;

/// Most carousel jobs allowed in one `Resume` message.
pub const MAX_JOBS_PER_MSG: usize = 65_536;

/// Why a site refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefuseCode {
    /// The referenced artifact is not in the site's store tier.
    StoreMiss,
    /// The site's scheduler backlog is full (load shed).
    Overloaded,
    /// The request could not be interpreted.
    BadRequest,
}

impl RefuseCode {
    fn to_byte(self) -> u8 {
        match self {
            RefuseCode::StoreMiss => 1,
            RefuseCode::Overloaded => 2,
            RefuseCode::BadRequest => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(RefuseCode::StoreMiss),
            2 => Some(RefuseCode::Overloaded),
            3 => Some(RefuseCode::BadRequest),
            _ => None,
        }
    }
}

/// A coordinator→site request body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Health probe; also the backlog poll.
    Ping,
    /// Enqueue a carousel page the site can load from the shared artifact
    /// store (the cheap path: ~26 bytes on the wire, frames re-derived
    /// site-side from the disk tier).
    PushStored {
        /// Corpus site index of the artifact key.
        corpus_site: u32,
        /// Corpus page index of the artifact key.
        corpus_page: u32,
        /// Hour the artifact was refreshed for.
        hour: u64,
    },
    /// Enqueue pre-chunked link frames (query-result pages and repair
    /// bursts, which never touch the artifact store).
    PushFrames {
        /// On-air page id the frames belong to.
        page_id: u32,
        /// Carousel slot class the frames occupy.
        kind: SlotKind,
        /// The link frames, each individually CRC-protected.
        frames: Vec<Frame>,
    },
    /// Warm-restart instruction: reload the hour's carousel from the
    /// store, skipping the first `slot` jobs (already aired before the
    /// crash).
    Resume {
        /// Hour whose carousel to resume.
        hour: u64,
        /// Jobs already completed — resume after them.
        slot: u32,
        /// The hour's carousel as (corpus site, corpus page) keys.
        jobs: Vec<(u32, u32)>,
    },
}

/// A site→coordinator response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Health + backlog snapshot.
    Pong {
        /// Responding transmitter site id.
        site_id: u32,
        /// Scheduler backlog in bytes.
        backlog_bytes: u64,
        /// Scheduler backlog in pages.
        backlog_pages: u32,
        /// Queue entries fully aired since the site (re)started.
        pages_completed: u64,
    },
    /// Request accepted; `eta_ms` estimates broadcast completion.
    Done {
        /// Milliseconds until the pushed content finishes airing.
        eta_ms: u64,
    },
    /// Request refused.
    Refused {
        /// Why.
        code: RefuseCode,
    },
}

/// One framed control-plane message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// A request with its RPC correlation id.
    Req {
        /// Correlation id echoed by the response.
        id: u64,
        /// Body.
        req: Request,
    },
    /// A response correlated to a request id.
    Resp {
        /// The request's correlation id.
        id: u64,
        /// Body.
        resp: Response,
    },
}

fn slot_kind_byte(kind: SlotKind) -> u8 {
    match kind {
        SlotKind::Full => 0,
        SlotKind::Delta => 1,
        SlotKind::Repair => 2,
    }
}

fn slot_kind_from(b: u8) -> Option<SlotKind> {
    match b {
        0 => Some(SlotKind::Full),
        1 => Some(SlotKind::Delta),
        2 => Some(SlotKind::Repair),
        _ => None,
    }
}

/// Serializes `msg` into `out` (append-only).
pub fn encode_msg(msg: &Msg, out: &mut Vec<u8>) {
    match msg {
        Msg::Req { id, req } => {
            out.push(0x01);
            out.extend_from_slice(&id.to_be_bytes());
            match req {
                Request::Ping => out.push(0x10),
                Request::PushStored {
                    corpus_site,
                    corpus_page,
                    hour,
                } => {
                    out.push(0x11);
                    out.extend_from_slice(&corpus_site.to_be_bytes());
                    out.extend_from_slice(&corpus_page.to_be_bytes());
                    out.extend_from_slice(&hour.to_be_bytes());
                }
                Request::PushFrames {
                    page_id,
                    kind,
                    frames,
                } => {
                    out.push(0x12);
                    out.extend_from_slice(&page_id.to_be_bytes());
                    out.push(slot_kind_byte(*kind));
                    // lint: checked-cast — a page is at most a few thousand frames, far below u32::MAX
                    out.extend_from_slice(&(frames.len() as u32).to_be_bytes());
                    for f in frames {
                        out.extend_from_slice(&f.encode());
                    }
                }
                Request::Resume { hour, slot, jobs } => {
                    out.push(0x13);
                    out.extend_from_slice(&hour.to_be_bytes());
                    out.extend_from_slice(&slot.to_be_bytes());
                    // lint: checked-cast — resume job lists are small (one entry per in-flight page)
                    out.extend_from_slice(&(jobs.len() as u32).to_be_bytes());
                    for &(s, p) in jobs {
                        out.extend_from_slice(&s.to_be_bytes());
                        out.extend_from_slice(&p.to_be_bytes());
                    }
                }
            }
        }
        Msg::Resp { id, resp } => {
            out.push(0x02);
            out.extend_from_slice(&id.to_be_bytes());
            match resp {
                Response::Pong {
                    site_id,
                    backlog_bytes,
                    backlog_pages,
                    pages_completed,
                } => {
                    out.push(0x20);
                    out.extend_from_slice(&site_id.to_be_bytes());
                    out.extend_from_slice(&backlog_bytes.to_be_bytes());
                    out.extend_from_slice(&backlog_pages.to_be_bytes());
                    out.extend_from_slice(&pages_completed.to_be_bytes());
                }
                Response::Done { eta_ms } => {
                    out.push(0x21);
                    out.extend_from_slice(&eta_ms.to_be_bytes());
                }
                Response::Refused { code } => {
                    out.push(0x22);
                    out.push(code.to_byte());
                }
            }
        }
    }
}

/// A bounds-checked big-endian cursor.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| {
            u64::from_be_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
        })
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

/// Deserializes one message. Total: returns `None` on any malformed,
/// truncated or trailing-garbage input.
pub fn decode_msg(buf: &[u8]) -> Option<Msg> {
    let mut c = Cursor { buf, at: 0 };
    let msg = match c.u8()? {
        0x01 => {
            let id = c.u64()?;
            let req = match c.u8()? {
                0x10 => Request::Ping,
                0x11 => Request::PushStored {
                    corpus_site: c.u32()?,
                    corpus_page: c.u32()?,
                    hour: c.u64()?,
                },
                0x12 => {
                    let page_id = c.u32()?;
                    let kind = slot_kind_from(c.u8()?)?;
                    let n = c.u32()? as usize;
                    if n > MAX_FRAMES_PER_MSG {
                        return None;
                    }
                    let mut frames = Vec::with_capacity(n);
                    for _ in 0..n {
                        let raw = c.take(FRAME_SIZE)?;
                        frames.push(Frame::decode(raw).ok()?);
                    }
                    Request::PushFrames {
                        page_id,
                        kind,
                        frames,
                    }
                }
                0x13 => {
                    let hour = c.u64()?;
                    let slot = c.u32()?;
                    let n = c.u32()? as usize;
                    if n > MAX_JOBS_PER_MSG {
                        return None;
                    }
                    let mut jobs = Vec::with_capacity(n);
                    for _ in 0..n {
                        jobs.push((c.u32()?, c.u32()?));
                    }
                    Request::Resume { hour, slot, jobs }
                }
                _ => return None,
            };
            Msg::Req { id, req }
        }
        0x02 => {
            let id = c.u64()?;
            let resp = match c.u8()? {
                0x20 => Response::Pong {
                    site_id: c.u32()?,
                    backlog_bytes: c.u64()?,
                    backlog_pages: c.u32()?,
                    pages_completed: c.u64()?,
                },
                0x21 => Response::Done { eta_ms: c.u64()? },
                0x22 => Response::Refused {
                    code: RefuseCode::from_byte(c.u8()?)?,
                },
                _ => return None,
            };
            Msg::Resp { id, resp }
        }
        _ => return None,
    };
    if !c.done() {
        return None; // trailing bytes: not a clean message
    }
    Some(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::page_to_frames;
    use crate::page::SimplifiedPage;
    use sonic_image::clickmap::ClickMap;
    use sonic_image::raster::{Raster, Rgb};

    fn round_trip(msg: Msg) {
        let mut bytes = Vec::new();
        encode_msg(&msg, &mut bytes);
        assert_eq!(decode_msg(&bytes), Some(msg));
    }

    #[test]
    fn all_message_kinds_round_trip() {
        round_trip(Msg::Req { id: 1, req: Request::Ping });
        round_trip(Msg::Req {
            id: u64::MAX,
            req: Request::PushStored {
                corpus_site: 3,
                corpus_page: 9,
                hour: 17,
            },
        });
        round_trip(Msg::Req {
            id: 2,
            req: Request::Resume {
                hour: 5,
                slot: 3,
                jobs: vec![(0, 0), (1, 4), (9, 2)],
            },
        });
        round_trip(Msg::Resp {
            id: 7,
            resp: Response::Pong {
                site_id: 4,
                backlog_bytes: 123_456,
                backlog_pages: 17,
                pages_completed: 99,
            },
        });
        round_trip(Msg::Resp { id: 8, resp: Response::Done { eta_ms: 65_000 } });
        round_trip(Msg::Resp {
            id: 9,
            resp: Response::Refused { code: RefuseCode::StoreMiss },
        });
        round_trip(Msg::Resp {
            id: 10,
            resp: Response::Refused { code: RefuseCode::Overloaded },
        });
        round_trip(Msg::Resp {
            id: 11,
            resp: Response::Refused { code: RefuseCode::BadRequest },
        });
    }

    #[test]
    fn push_frames_round_trips_link_frames() {
        let img = Raster::filled(6, 30, Rgb::new(10, 40, 90));
        let page = SimplifiedPage::from_raster("https://w.pk/", &img, ClickMap::default(), 1, 2);
        let frames = page_to_frames(&page);
        let msg = Msg::Req {
            id: 41,
            req: Request::PushFrames {
                page_id: page.page_id,
                kind: crate::server::scheduler::SlotKind::Repair,
                frames: frames.clone(),
            },
        };
        let mut bytes = Vec::new();
        encode_msg(&msg, &mut bytes);
        match decode_msg(&bytes) {
            Some(Msg::Req {
                req: Request::PushFrames { frames: got, .. },
                ..
            }) => assert_eq!(got, frames),
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn truncations_and_flips_never_panic() {
        let msg = Msg::Req {
            id: 3,
            req: Request::Resume {
                hour: 1,
                slot: 0,
                jobs: vec![(1, 2), (3, 4)],
            },
        };
        let mut bytes = Vec::new();
        encode_msg(&msg, &mut bytes);
        for cut in 0..bytes.len() {
            let _ = decode_msg(&bytes[..cut]); // must not panic
        }
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            let _ = decode_msg(&b); // must not panic
        }
    }

    #[test]
    fn absurd_length_words_are_rejected_not_allocated() {
        // A Resume claiming u32::MAX jobs must fail fast.
        let mut bytes = Vec::new();
        bytes.push(0x01);
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.push(0x13);
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(decode_msg(&bytes), None);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Vec::new();
        encode_msg(&Msg::Req { id: 1, req: Request::Ping }, &mut bytes);
        assert!(decode_msg(&bytes).is_some());
        bytes.push(0);
        assert_eq!(decode_msg(&bytes), None);
    }
}
