//! Persistent tiered artifact store: the disk tier under the RAM
//! [`ArtifactCache`](crate::server::cache::ArtifactCache).
//!
//! Two append-only files live in the store directory:
//!
//! * `blobs.dat` — write-once blob data. A blob is one serialized artifact
//!   (page metadata, per-column strip bytes, click map, column hashes,
//!   modulated audio, burst spans). Blobs are content-addressed by an
//!   FNV-64 of their bytes: a `put` whose blob already exists reuses the
//!   existing span and writes nothing to the data file.
//! * `index.log` — fixed-size CRC-framed records, one per mutation
//!   (insert or evict). The in-memory entry map is a pure fold over the
//!   record sequence, so reopening replays the log.
//!
//! **Crash safety** is scan-and-truncate: on open the log is read
//! sequentially and stops at the first record that is short, has a bad
//! magic, fails its CRC, or points past the end of the data file (a torn
//! blob tail). Everything before that point — exactly the CRC-valid
//! prefix — is recovered; the torn tail of both files is truncated so the
//! next append starts clean.
//!
//! **Determinism**: entries live in a `BTreeMap`, eviction order is the
//! replayed LRU clock, and nothing reads a wall clock — versions are keyed
//! by the logical broadcast hour the caller passes in. Two same-seed runs
//! produce byte-identical `blobs.dat` + `index.log`.
//!
//! Frames are *not* stored: `page_to_frames` is a pure function of the
//! page, so [`load`](ArtifactStore::load) recomputes them — cheaper than
//! the disk bytes they would cost.

use crate::chunker::page_to_frames;
use crate::link::{BurstSpan, BurstTable};
use crate::page::SimplifiedPage;
use crate::server::cache::Artifact;
use sonic_fec::crc32;
use sonic_image::clickmap::ClickMap;
use sonic_image::hash::Fnv64;
use sonic_image::strip::StripImage;
use sonic_pagegen::PageId;
use std::collections::BTreeMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Index record framing: `"SIDX"` little-endian.
const RECORD_MAGIC: u32 = 0x5844_4953;
/// Blob framing magic (first field of every serialized artifact).
const BLOB_MAGIC: u32 = 0x424C_4F53;
/// Fixed index record size in bytes (magic..record CRC inclusive).
pub const RECORD_LEN: usize = 69;

/// Record kinds.
const KIND_INSERT: u8 = 1;
const KIND_EVICT: u8 = 2;

/// One live entry of the store's index.
#[derive(Debug, Clone, Copy)]
struct StoreEntry {
    layout_hash: u64,
    raster_hash: u64,
    hour: u64,
    offset: u64,
    len: u64,
    blob_key: u64,
    blob_crc: u32,
    last_used: u64,
}

/// An artifact loaded from the disk tier, with the content addresses the
/// RAM tier needs to re-index it.
#[derive(Debug)]
pub struct StoredArtifact {
    /// The reconstructed artifact (frames recomputed, audio as stored).
    pub artifact: Artifact,
    /// Per-column raster hashes (the delta-diff index).
    pub column_hashes: Arc<Vec<u64>>,
    /// Layout hash the entry was stored under.
    pub layout_hash: u64,
    /// Raster hash the entry was stored under.
    pub raster_hash: u64,
    /// Logical hour the artifact was built.
    pub hour: u64,
}

/// Store counters (bench + soak diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `put` calls that appended a new blob.
    pub inserts: u64,
    /// `put` calls whose blob already existed (write-once dedupe).
    pub blob_reuses: u64,
    /// Entries evicted to hold the byte budget.
    pub evictions: u64,
    /// Successful `load`s.
    pub loads: u64,
    /// Blobs dropped on load because their bytes failed the stored CRC.
    pub corrupt_blobs: u64,
    /// I/O errors swallowed by the tiered fast path (entry kept in RAM).
    pub io_errors: u64,
    /// Entries recovered by the rebuild-on-open scan.
    pub recovered_entries: u64,
    /// Torn index-log bytes truncated on open.
    pub truncated_index_bytes: u64,
    /// Torn blob bytes truncated on open.
    pub truncated_blob_bytes: u64,
}

/// Disk-backed write-once artifact store. See the module docs for the file
/// formats and crash-safety rules.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    data: std::fs::File,
    index: std::fs::File,
    entries: BTreeMap<PageId, StoreEntry>,
    /// blob key → (offset, len, crc, live refcount). Write-once dedupe and
    /// live-byte accounting over distinct blobs.
    blobs: BTreeMap<u64, (u64, u64, u32, u32)>,
    /// Next append offset in `blobs.dat`.
    append_off: u64,
    byte_budget: u64,
    clock: u64,
    /// Counters.
    pub stats: StoreStats,
}

impl ArtifactStore {
    /// Opens (creating if absent) the store in `dir`, bounded to
    /// `byte_budget` live blob bytes, replaying and crash-repairing the
    /// index log.
    pub fn open(dir: impl AsRef<Path>, byte_budget: u64) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let data = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join("blobs.dat"))?;
        let index = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join("index.log"))?;
        let mut store = ArtifactStore {
            dir,
            data,
            index,
            entries: BTreeMap::new(),
            blobs: BTreeMap::new(),
            append_off: 0,
            byte_budget,
            clock: 0,
            stats: StoreStats::default(),
        };
        store.rebuild()?;
        Ok(store)
    }

    /// Scan + CRC-validate the index log, fold the valid prefix into the
    /// entry map, truncate both torn tails.
    fn rebuild(&mut self) -> io::Result<()> {
        let data_len = self.data.seek(SeekFrom::End(0))?;
        self.index.seek(SeekFrom::Start(0))?;
        let mut log = Vec::new();
        self.index.read_to_end(&mut log)?;

        let mut valid = 0usize;
        while valid + RECORD_LEN <= log.len() {
            let rec = &log[valid..valid + RECORD_LEN];
            if read_u32(rec, 0) != RECORD_MAGIC {
                break;
            }
            if crc32(&rec[..RECORD_LEN - 4]) != read_u32(rec, RECORD_LEN - 4) {
                break;
            }
            let kind = rec[4];
            let id = PageId {
                site: read_u32(rec, 5) as usize,
                page: read_u32(rec, 9) as usize,
            };
            match kind {
                KIND_INSERT => {
                    let offset = read_u64(rec, 37);
                    let len = read_u64(rec, 45);
                    if offset.saturating_add(len) > data_len {
                        break; // record outlived its torn blob
                    }
                    let entry = StoreEntry {
                        layout_hash: read_u64(rec, 13),
                        raster_hash: read_u64(rec, 21),
                        hour: read_u64(rec, 29),
                        offset,
                        len,
                        blob_key: read_u64(rec, 53),
                        blob_crc: read_u32(rec, 61),
                        last_used: self.clock,
                    };
                    self.clock += 1;
                    self.apply_insert(id, entry);
                    self.append_off = self.append_off.max(offset + len);
                }
                KIND_EVICT => {
                    self.remove_entry(id);
                }
                _ => break,
            }
            valid += RECORD_LEN;
        }
        self.stats.recovered_entries = self.entries.len() as u64;
        self.stats.truncated_index_bytes = (log.len() - valid) as u64;
        if valid < log.len() {
            self.index.set_len(valid as u64)?;
        }
        if self.append_off < data_len {
            self.stats.truncated_blob_bytes = data_len - self.append_off;
            self.data.set_len(self.append_off)?;
        }
        self.index.seek(SeekFrom::End(0))?;
        Ok(())
    }

    fn apply_insert(&mut self, id: PageId, entry: StoreEntry) {
        if let Some(old) = self.entries.insert(id, entry) {
            self.deref_blob(old.blob_key);
        }
        let slot = self
            .blobs
            .entry(entry.blob_key)
            .or_insert((entry.offset, entry.len, entry.blob_crc, 0));
        slot.3 += 1;
    }

    fn remove_entry(&mut self, id: PageId) -> bool {
        match self.entries.remove(&id) {
            Some(e) => {
                self.deref_blob(e.blob_key);
                true
            }
            None => false,
        }
    }

    fn deref_blob(&mut self, key: u64) {
        if let Some(slot) = self.blobs.get_mut(&key) {
            slot.3 = slot.3.saturating_sub(1);
            if slot.3 == 0 {
                // Dead blob: its file bytes stay (write-once), but it no
                // longer counts against the live budget and a future put of
                // the same content may still reuse the span.
                // Keep the map entry so dedupe survives.
            }
        }
    }

    /// Store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entry is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of blobs referenced by at least one live entry.
    pub fn live_bytes(&self) -> u64 {
        self.blobs
            .values()
            .filter(|(_, _, _, refs)| *refs > 0)
            .map(|(_, len, _, _)| *len)
            .sum()
    }

    /// Total bytes appended to `blobs.dat` (live + dead).
    pub fn blob_file_bytes(&self) -> u64 {
        self.append_off
    }

    /// Configured live-byte budget.
    pub fn byte_budget(&self) -> u64 {
        self.byte_budget
    }

    /// The content addresses of a live entry, without touching the data
    /// file: `(layout_hash, raster_hash, hour)`.
    pub fn entry_meta(&self, id: PageId) -> Option<(u64, u64, u64)> {
        self.entries
            .get(&id)
            .map(|e| (e.layout_hash, e.raster_hash, e.hour))
    }

    /// Inserts (or refreshes) an artifact. Content-identical blobs are
    /// written once: a `put` whose serialized bytes already live in the
    /// data file appends only a 69-byte index record. Returns whether new
    /// blob bytes hit the disk.
    pub fn put(
        &mut self,
        id: PageId,
        layout_hash: u64,
        raster_hash: u64,
        column_hashes: &[u64],
        artifact: &Artifact,
        hour: u64,
    ) -> io::Result<bool> {
        let blob = encode_blob(artifact, column_hashes);
        let blob_key = {
            let mut h = Fnv64::new();
            h.write(&blob).write_u64(blob.len() as u64);
            h.finish()
        };
        let blob_crc = crc32(&blob);

        // No-op fast path: the same content is already indexed under the
        // same addresses — do not grow the log.
        if let Some(e) = self.entries.get(&id) {
            if e.blob_key == blob_key && e.layout_hash == layout_hash && e.raster_hash == raster_hash
            {
                return Ok(false);
            }
        }

        let (offset, len, wrote) = match self.blobs.get(&blob_key) {
            Some(&(off, len, _, _)) => {
                self.stats.blob_reuses += 1;
                (off, len, false)
            }
            None => {
                let off = self.append_off;
                self.data.seek(SeekFrom::Start(off))?;
                self.data.write_all(&blob)?;
                self.append_off = off + blob.len() as u64;
                self.stats.inserts += 1;
                (off, blob.len() as u64, true)
            }
        };

        let entry = StoreEntry {
            layout_hash,
            raster_hash,
            hour,
            offset,
            len,
            blob_key,
            blob_crc,
            last_used: self.clock,
        };
        self.clock += 1;
        self.write_record(KIND_INSERT, id, &entry)?;
        self.apply_insert(id, entry);
        self.evict_to_budget(Some(id))?;
        Ok(wrote)
    }

    /// Loads a live entry's artifact, validating the blob CRC. A corrupt
    /// blob drops the entry (counted in `corrupt_blobs`) and returns
    /// `None` — the caller rebuilds cold.
    pub fn load(&mut self, id: PageId) -> Option<StoredArtifact> {
        let entry = *self.entries.get(&id)?;
        let mut blob = vec![0u8; entry.len as usize];
        let read_ok = self
            .data
            .seek(SeekFrom::Start(entry.offset))
            .and_then(|_| self.data.read_exact(&mut blob))
            .is_ok();
        if !read_ok || crc32(&blob) != entry.blob_crc {
            self.stats.corrupt_blobs += 1;
            self.remove_entry(id);
            return None;
        }
        let (artifact, column_hashes) = decode_blob(&blob)?;
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&id) {
            e.last_used = self.clock;
        }
        self.stats.loads += 1;
        Some(StoredArtifact {
            artifact,
            column_hashes: Arc::new(column_hashes),
            layout_hash: entry.layout_hash,
            raster_hash: entry.raster_hash,
            hour: entry.hour,
        })
    }

    fn write_record(&mut self, kind: u8, id: PageId, entry: &StoreEntry) -> io::Result<()> {
        let mut rec = [0u8; RECORD_LEN];
        write_u32(&mut rec, 0, RECORD_MAGIC);
        rec[4] = kind;
        write_u32(&mut rec, 5, id.site as u32);
        write_u32(&mut rec, 9, id.page as u32);
        write_u64(&mut rec, 13, entry.layout_hash);
        write_u64(&mut rec, 21, entry.raster_hash);
        write_u64(&mut rec, 29, entry.hour);
        write_u64(&mut rec, 37, entry.offset);
        write_u64(&mut rec, 45, entry.len);
        write_u64(&mut rec, 53, entry.blob_key);
        write_u32(&mut rec, 61, entry.blob_crc);
        let crc = crc32(&rec[..RECORD_LEN - 4]);
        write_u32(&mut rec, RECORD_LEN - 4, crc);
        self.index.write_all(&rec)
    }

    /// Evicts LRU entries (appending evict records) until the live-byte
    /// budget holds, sparing `keep`.
    fn evict_to_budget(&mut self, keep: Option<PageId>) -> io::Result<()> {
        while self.live_bytes() > self.byte_budget && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| Some(**k) != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, e)| (*k, *e));
            let Some((vid, ventry)) = victim else { break };
            self.write_record(KIND_EVICT, vid, &ventry)?;
            self.remove_entry(vid);
            self.stats.evictions += 1;
        }
        Ok(())
    }
}

// --- little-endian field helpers -----------------------------------------

fn read_u32(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(b)
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

fn write_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn write_u64(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

// --- blob codec -----------------------------------------------------------

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes an artifact (everything except its frames, which are a pure
/// function of the page) plus its per-column hash index.
fn encode_blob(artifact: &Artifact, column_hashes: &[u64]) -> Vec<u8> {
    let p = &artifact.page;
    let clickmap = p.clickmap.encode();
    let mut out = Vec::with_capacity(
        64 + p.url.len()
            + p.strips.total_bytes()
            + p.strips.width * 4
            + clickmap.len()
            + column_hashes.len() * 8
            + artifact.audio.len() * 4
            + artifact.bursts.spans.len() * 24,
    );
    push_u32(&mut out, BLOB_MAGIC);
    push_u16(&mut out, p.version);
    push_u16(&mut out, p.ttl_hours);
    push_u16(&mut out, p.url.len() as u16);
    out.extend_from_slice(p.url.as_bytes());
    push_u32(&mut out, p.strips.width as u32);
    push_u32(&mut out, p.strips.height as u32);
    for strip in &p.strips.strips {
        push_u32(&mut out, strip.len() as u32);
        out.extend_from_slice(strip);
    }
    push_u32(&mut out, clickmap.len() as u32);
    out.extend_from_slice(&clickmap);
    push_u32(&mut out, column_hashes.len() as u32);
    for &h in column_hashes {
        push_u64(&mut out, h);
    }
    push_u32(&mut out, artifact.audio.len() as u32);
    // Bulk-convert the audio (the dominant blob section): one resize and a
    // chunked store instead of 4-byte extends per sample.
    let audio_at = out.len();
    out.resize(audio_at + artifact.audio.len() * 4, 0);
    for (dst, &s) in out[audio_at..]
        .chunks_exact_mut(4)
        .zip(artifact.audio.iter())
    {
        dst.copy_from_slice(&s.to_bits().to_le_bytes());
    }
    push_u32(&mut out, artifact.bursts.spans.len() as u32);
    for span in &artifact.bursts.spans {
        push_u64(&mut out, span.payload_hash);
        push_u64(&mut out, span.start as u64);
        push_u64(&mut out, span.len as u64);
    }
    out
}

/// Bounds-checked little-endian reader over a blob.
struct BlobReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> BlobReader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let slice = &self.buf[self.at..end];
        self.at = end;
        Some(slice)
    }

    fn u16(&mut self) -> Option<u16> {
        let b = self.take(2)?;
        Some(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Some(u64::from_le_bytes(a))
    }
}

/// Deserializes a blob back into an artifact (frames recomputed) and its
/// column-hash index. Total: any malformed blob yields `None`.
fn decode_blob(blob: &[u8]) -> Option<(Artifact, Vec<u64>)> {
    let mut r = BlobReader { buf: blob, at: 0 };
    if r.u32()? != BLOB_MAGIC {
        return None;
    }
    let version = r.u16()?;
    let ttl_hours = r.u16()?;
    let url_len = r.u16()? as usize;
    let url = std::str::from_utf8(r.take(url_len)?).ok()?.to_string();
    let width = r.u32()? as usize;
    let height = r.u32()? as usize;
    let mut strips = Vec::with_capacity(width);
    for _ in 0..width {
        let len = r.u32()? as usize;
        strips.push(r.take(len)?.to_vec());
    }
    let cm_len = r.u32()? as usize;
    let clickmap = ClickMap::decode(r.take(cm_len)?)?;
    let n_hashes = r.u32()? as usize;
    let mut column_hashes = Vec::with_capacity(n_hashes);
    for _ in 0..n_hashes {
        column_hashes.push(r.u64()?);
    }
    let n_audio = r.u32()? as usize;
    let audio_bytes = r.take(n_audio.checked_mul(4)?)?;
    let audio: Vec<f32> = audio_bytes
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect();
    let n_spans = r.u32()? as usize;
    let mut spans = Vec::with_capacity(n_spans);
    for _ in 0..n_spans {
        spans.push(BurstSpan {
            payload_hash: r.u64()?,
            start: r.u64()? as usize,
            len: r.u64()? as usize,
        });
    }
    let page = Arc::new(SimplifiedPage::from_parts(
        &url,
        StripImage {
            width,
            height,
            strips,
        },
        clickmap,
        version,
        ttl_hours,
    ));
    let frames = Arc::new(page_to_frames(&page));
    Some((
        Artifact {
            page,
            frames,
            audio: Arc::new(audio),
            bursts: BurstTable { spans },
        },
        column_hashes,
    ))
}
