//! Multi-threaded broadcast pipeline: render → SWP encode → chunk → OFDM.
//!
//! The serial broadcast path costs hundreds of milliseconds per page (raster
//! render, strip/SWP encoding, chunking, OFDM modulation), which caps how
//! fast a transmitter fleet can be fed. This module runs those four stages
//! as a pipeline of worker pools connected by **bounded** crossbeam
//! channels: every stage can run concurrently on different pages, the
//! bounded queues give back-pressure (a slow consumer stalls producers
//! instead of buffering unboundedly), and a sequence-tagged reorder buffer
//! at the sink makes the output order — and therefore everything fed into a
//! [`BroadcastScheduler`] — deterministic and identical to the serial path.
//!
//! Stage outputs are bit-identical to [`run_serial`]: every stage is a pure
//! function of its input (modulation goes through `sonic-modem`'s cached
//! `FrameCodec`, which is bit-exact versus its reference path), so the only
//! difference parallelism could introduce is ordering, and the reorder
//! buffer removes it.

use crate::chunker::page_to_frames;
use crate::frame::Frame;
use crate::link::{self, BurstTable};
use crate::page::SimplifiedPage;
use crate::server::cache::{Artifact, ArtifactTier};
use crate::server::render::Renderer;
use crate::server::scheduler::BroadcastScheduler;
use crossbeam::channel::{bounded, Receiver, Sender};
use sonic_image::clickmap::ClickMap;
use sonic_image::hash::Fnv64;
use sonic_image::raster::Raster;
use sonic_image::strip;
use sonic_modem::profile::Profile;
use sonic_pagegen::{PageId, RenderedPage};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One render request: a corpus page at an hour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageJob {
    /// Corpus page to render.
    pub id: PageId,
    /// Render hour (drives versioning).
    pub hour: u64,
}

/// Everything the broadcast chain produces for one page, in job order.
#[derive(Debug, Clone)]
pub struct BroadcastArtifact {
    /// Index of the originating job in the input slice.
    pub seq: usize,
    /// The simplified page (strip/SWP-encoded screenshot + metadata).
    pub page: SimplifiedPage,
    /// The page's link-frame sequence.
    pub frames: Vec<Frame>,
    /// OFDM audio for the whole frame sequence.
    pub audio: Vec<f32>,
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Worker threads for each of the two heavy pools (render+encode and
    /// modulate). Clamped to at least 1.
    pub workers: usize,
    /// Capacity of every inter-stage channel; this bounds in-flight pages
    /// and is what back-pressure is made of. Clamped to at least 1.
    pub queue_depth: usize,
    /// Modem profile for the modulation stage.
    pub profile: Profile,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_depth: 4,
            profile: Profile::sonic_10k(),
        }
    }
}

/// Stage 1: raster render (the "headless browser").
fn stage_render(renderer: &Renderer, job: PageJob) -> (RenderedPage, u16, u16) {
    let rendered = renderer
        .corpus()
        .render(job.id, job.hour, renderer.scale());
    let site = &renderer.corpus().sites[job.id.site];
    let ttl = site.category.landing_churn_hours().max(1) as u16;
    let version = (job.hour % u16::MAX as u64) as u16;
    (rendered, version, ttl)
}

/// Stage 2: SWP/strip image encoding into a broadcastable page.
fn stage_encode(rendered: &RenderedPage, version: u16, ttl: u16) -> SimplifiedPage {
    SimplifiedPage::from_raster(
        &rendered.url,
        &rendered.raster,
        rendered.clickmap.clone(),
        version,
        ttl,
    )
}

/// Stage 3: page → link frames.
fn stage_chunk(page: &SimplifiedPage) -> Vec<Frame> {
    page_to_frames(page)
}

/// Stage 4: link frames → OFDM audio.
fn stage_modulate(profile: &Profile, frames: &[Frame]) -> Vec<f32> {
    link::modulate(profile, frames)
}

/// Single-threaded reference: runs the four stages back-to-back per job.
/// The parallel pipeline must produce bit-identical artifacts.
pub fn run_serial(renderer: &Renderer, profile: &Profile, jobs: &[PageJob]) -> Vec<BroadcastArtifact> {
    jobs.iter()
        .enumerate()
        .map(|(seq, &job)| {
            let (rendered, version, ttl) = stage_render(renderer, job);
            let page = stage_encode(&rendered, version, ttl);
            let frames = stage_chunk(&page);
            let audio = stage_modulate(profile, &frames);
            BroadcastArtifact {
                seq,
                page,
                frames,
                audio,
            }
        })
        .collect()
}

/// Pulls final-stage results and yields them in `seq` order via a reorder
/// buffer, applying `emit` to each as soon as its turn arrives.
fn reorder_sink(
    rx: Receiver<BroadcastArtifact>,
    total: usize,
    mut emit: impl FnMut(&BroadcastArtifact),
) -> Vec<BroadcastArtifact> {
    let mut pending: BTreeMap<usize, BroadcastArtifact> = BTreeMap::new();
    let mut out = Vec::with_capacity(total);
    let mut next = 0usize;
    for artifact in rx {
        pending.insert(artifact.seq, artifact);
        while let Some(a) = pending.remove(&next) {
            emit(&a);
            out.push(a);
            next += 1;
        }
    }
    // Channel closed: all workers exited, everything must have drained.
    assert!(pending.is_empty(), "pipeline lost artifacts");
    out
}

/// Runs the broadcast pipeline over `jobs`, returning artifacts in job
/// order. `on_ready` fires on the caller thread for each artifact as it
/// clears the reorder buffer (still in job order) — this is where
/// [`run_pipeline_into_scheduler`] hooks the scheduler in.
pub fn run_pipeline_with(
    renderer: &Renderer,
    jobs: &[PageJob],
    opts: &PipelineOptions,
    on_ready: impl FnMut(&BroadcastArtifact),
) -> Vec<BroadcastArtifact> {
    let workers = opts.workers.max(1);
    let depth = opts.queue_depth.max(1);
    let profile = &opts.profile;

    // Stage channels. Bounded: a full queue blocks the upstream stage, so
    // memory stays at O(queue_depth) pages regardless of job count.
    let (job_tx, job_rx) = bounded::<(usize, PageJob)>(depth);
    let (page_tx, page_rx) = bounded::<(usize, SimplifiedPage)>(depth);
    let (frame_tx, frame_rx) = bounded::<(usize, SimplifiedPage, Vec<Frame>)>(depth);
    let (out_tx, out_rx) = bounded::<BroadcastArtifact>(depth);

    std::thread::scope(|scope| {
        // Render + SWP-encode pool (stages 1–2 share a worker: the encode
        // input is the render output and both are per-page pure functions).
        for _ in 0..workers {
            let job_rx: Receiver<(usize, PageJob)> = job_rx.clone();
            let page_tx: Sender<(usize, SimplifiedPage)> = page_tx.clone();
            scope.spawn(move || {
                for (seq, job) in job_rx {
                    let (rendered, version, ttl) = stage_render(renderer, job);
                    let page = stage_encode(&rendered, version, ttl);
                    if page_tx.send((seq, page)).is_err() {
                        return;
                    }
                }
            });
        }
        // Chunking stage (cheap; one worker keeps it a distinct stage
        // without burning threads).
        {
            let page_rx = page_rx.clone();
            let frame_tx = frame_tx.clone();
            scope.spawn(move || {
                for (seq, page) in page_rx {
                    let frames = stage_chunk(&page);
                    if frame_tx.send((seq, page, frames)).is_err() {
                        return;
                    }
                }
            });
        }
        // Modulation pool. Each worker thread keeps its own cached
        // `FrameCodec` (thread-local inside sonic-modem), so the OFDM plan
        // and scratch buffers are built once per thread, not per page.
        for _ in 0..workers {
            let frame_rx = frame_rx.clone();
            let out_tx = out_tx.clone();
            scope.spawn(move || {
                for (seq, page, frames) in frame_rx {
                    let audio = stage_modulate(profile, &frames);
                    if out_tx
                        .send(BroadcastArtifact {
                            seq,
                            page,
                            frames,
                            audio,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
            });
        }
        // The scope owns the original senders/receivers; drop our copies so
        // the chain closes stage by stage once the feeder finishes.
        drop(page_tx);
        drop(page_rx);
        drop(frame_tx);
        drop(frame_rx);
        drop(out_tx);

        // Feed jobs from a scoped thread so the caller thread can sink.
        scope.spawn(move || {
            for (seq, &job) in jobs.iter().enumerate() {
                if job_tx.send((seq, job)).is_err() {
                    return;
                }
            }
        });
        drop(job_rx);

        reorder_sink(out_rx, jobs.len(), on_ready)
    })
}

/// Per-call accounting from [`refresh_pages`] (the cumulative counters,
/// including strip/burst reuse, live in `ArtifactCache::stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Pages refreshed.
    pub pages: usize,
    /// Pages served verbatim from the cache (unchanged content).
    pub full_hits: usize,
    /// Pages rebuilt by strip-delta + burst-splice against a cached basis.
    pub delta_hits: usize,
    /// Pages built cold.
    pub misses: usize,
}

/// Render-input content address: the layout hash folded with the device
/// scaling factor (the raster is a pure function of both).
fn layout_hash_scaled(renderer: &Renderer, id: PageId, hour: u64) -> u64 {
    let lh = renderer.corpus().layout(id, hour).content_hash();
    let mut h = Fnv64::new();
    h.write_u64(lh).write_u64(renderer.scale().to_bits());
    h.finish()
}

/// Rendered page content handed to [`refresh_page_with`] by a page source —
/// everything the encode → chunk → modulate stages need. The corpus
/// renderer is one producer ([`refresh_pages`] wraps it); benches and a
/// live fetcher can feed arbitrary rasters through the same cache.
#[derive(Debug, Clone)]
pub struct RenderedContent {
    /// Canonical URL (rides in the meta frames).
    pub url: String,
    /// Rendered screenshot.
    pub raster: Raster,
    /// Interactivity map.
    pub clickmap: ClickMap,
    /// Content version (page-id component; the hour on the corpus path).
    pub version: u16,
    /// Client cache TTL in hours.
    pub ttl_hours: u16,
}

/// Which path one page took through [`refresh_page_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshPath {
    /// Cached artifact reused verbatim (layout or raster hash hit).
    FullHit,
    /// Rebuilt against a cached basis: only dirty strips re-encoded, only
    /// unrecognized bursts re-modulated.
    Delta,
    /// Built cold through the full pipeline.
    Cold,
}

/// Runs one page through the artifact cache, rendering lazily.
///
/// `layout_hash` is the content address of the *render input*: if it equals
/// the cached entry's, the raster is known to be bit-identical without
/// rendering and `render` is never called. Otherwise `render` produces the
/// content and the raster hash decides between verbatim reuse, strip-delta
/// rebuild and a cold build (see [`refresh_pages`] for the path rules).
pub fn refresh_page_with(
    cache: &mut impl ArtifactTier,
    key: PageId,
    layout_hash: u64,
    hour: u64,
    profile: Option<&Profile>,
    render: impl FnOnce() -> RenderedContent,
) -> (Artifact, RefreshPath) {
    let want_audio = profile.is_some();
    if let Some(a) = cache.lookup_layout(key, layout_hash, want_audio) {
        return (a, RefreshPath::FullHit);
    }
    let content = render();
    // The pixels are hashed exactly once: the per-column index serves the
    // whole-raster address, the dirty-strip diff, and the next refresh's
    // delta basis.
    let new_hashes = strip::column_hashes(&content.raster);
    let rh = strip::raster_hash_from(
        content.raster.width(),
        content.raster.height(),
        &new_hashes,
    );
    if let Some(a) = cache.lookup_raster(
        key,
        rh,
        layout_hash,
        &content.url,
        &content.clickmap,
        content.ttl_hours,
        want_audio,
    ) {
        return (a, RefreshPath::FullHit);
    }

    let basis = cache.delta_basis_mut(key);
    let (strips, col_hashes, delta) = match &basis {
        Some((prev, prev_hashes))
            if prev.page.strips.width == content.raster.width()
                && prev.page.strips.height == content.raster.height() =>
        {
            let d = strip::encode_delta_prehashed(
                &content.raster,
                &prev.page.strips,
                prev_hashes,
                new_hashes,
            );
            cache.stats_mut().strips_reused += d.reused as u64;
            cache.stats_mut().strips_reencoded += d.reencoded as u64;
            (d.strips, d.hashes, true)
        }
        _ => (strip::encode(&content.raster), new_hashes, false),
    };
    let page = Arc::new(SimplifiedPage::from_parts(
        &content.url,
        strips,
        content.clickmap,
        content.version,
        content.ttl_hours,
    ));
    let frames = Arc::new(page_to_frames(&page));
    let (audio, bursts) = match profile {
        Some(p) => match &basis {
            Some((prev, _)) if delta && prev.has_audio() => {
                let s = link::modulate_spliced(p, &frames, &prev.audio, &prev.bursts);
                cache.stats_mut().bursts_reused += s.reused as u64;
                cache.stats_mut().bursts_modulated += s.modulated as u64;
                (s.audio, s.table)
            }
            _ => link::modulate_with_table(p, &frames),
        },
        None => (Vec::new(), BurstTable::default()),
    };
    let path = if delta {
        cache.stats_mut().delta_hits += 1;
        RefreshPath::Delta
    } else {
        cache.stats_mut().misses += 1;
        RefreshPath::Cold
    };
    let artifact = Artifact {
        page,
        frames,
        audio: Arc::new(audio),
        bursts,
    };
    cache.store(
        key,
        layout_hash,
        rh,
        Arc::new(col_hashes),
        artifact.clone(),
        hour,
    );
    (artifact, path)
}

/// Runs one carousel refresh through the artifact cache.
///
/// For every job the driver picks the cheapest sound path:
///
/// 1. **Layout hit** — the layout hash (render input) is unchanged, so the
///    raster would be bit-identical: the cached artifact is reused verbatim,
///    keeping its original version (and therefore page id, frames, audio).
///    The render, encode, chunk and modulate stages all get skipped.
/// 2. **Raster hit** — the layout hash moved but the rendered pixels (and
///    the click map / TTL / URL that ride in the meta frames) did not:
///    reuse as above, after refreshing the stored layout hash.
/// 3. **Delta** — same dimensions but some columns changed: re-encode only
///    dirty strips ([`strip::encode_delta`]) and re-modulate only bursts
///    whose payload is not in the cached burst table
///    ([`link::modulate_spliced`]). The page takes the hour-derived version
///    exactly like the cold path, so the result is bit-identical to a cold
///    build of the same inputs.
/// 4. **Cold** — no usable basis: the full pipeline runs, identical to
///    [`run_serial`]'s stages.
///
/// `profile: None` runs frames-only (no audio is produced or cached) — the
/// SMS push path uses this since its product is scheduler frames, not FM
/// audio. Cached frames-only artifacts are never served to a refresh that
/// wants audio; they are rebuilt (still reusing strips via the delta path).
pub fn refresh_pages(
    renderer: &Renderer,
    cache: &mut impl ArtifactTier,
    jobs: &[PageJob],
    profile: Option<&Profile>,
) -> (Vec<Artifact>, RefreshStats) {
    let mut out = Vec::with_capacity(jobs.len());
    let mut stats = RefreshStats {
        pages: jobs.len(),
        ..RefreshStats::default()
    };
    for &job in jobs {
        let lh = layout_hash_scaled(renderer, job.id, job.hour);
        let (artifact, path) = refresh_page_with(cache, job.id, lh, job.hour, profile, || {
            let rendered = renderer.corpus().render(job.id, job.hour, renderer.scale());
            let site = &renderer.corpus().sites[job.id.site];
            RenderedContent {
                url: rendered.url,
                raster: rendered.raster,
                clickmap: rendered.clickmap,
                version: (job.hour % u16::MAX as u64) as u16,
                ttl_hours: site.category.landing_churn_hours().max(1) as u16,
            }
        });
        match path {
            RefreshPath::FullHit => stats.full_hits += 1,
            RefreshPath::Delta => stats.delta_hits += 1,
            RefreshPath::Cold => stats.misses += 1,
        }
        out.push(artifact);
    }
    (out, stats)
}

/// [`refresh_pages`] that also enqueues every artifact into `scheduler`,
/// zero-copy: the scheduler holds the cache's `Arc`s, not copies.
pub fn refresh_into_scheduler(
    renderer: &Renderer,
    cache: &mut impl ArtifactTier,
    jobs: &[PageJob],
    profile: Option<&Profile>,
    scheduler: &mut BroadcastScheduler,
    now_s: f64,
) -> (Vec<Artifact>, RefreshStats) {
    let (artifacts, stats) = refresh_pages(renderer, cache, jobs, profile);
    for a in &artifacts {
        scheduler.enqueue_prechunked(a.page.clone(), a.frames.clone(), now_s);
    }
    (artifacts, stats)
}

/// How one page rides the current carousel revolution.
#[derive(Debug, Clone)]
pub enum CarouselSlot {
    /// The page's layout or raster is unchanged since the cached build —
    /// nothing is broadcast this revolution.
    Unchanged,
    /// Genuinely new content (no usable delta basis): the page gets a
    /// full-page slot with its complete frame sequence and audio.
    Full,
    /// The page changed but a prior version is cached: only the meta
    /// bracket plus the changed columns' chunks are broadcast.
    Delta {
        /// The delta frame subset (meta frames + changed columns' chunks),
        /// each bit-identical to its counterpart in the full sequence.
        frames: Arc<Vec<Frame>>,
        /// OFDM audio for exactly `frames` — bit-identical to
        /// `link::modulate(profile, frames)`.
        audio: Arc<Vec<f32>>,
        /// How many columns changed (0 is valid: meta-only version bump).
        changed_columns: usize,
    },
}

/// One page's outcome from [`refresh_carousel`].
#[derive(Debug, Clone)]
pub struct CarouselItem {
    /// The page's corpus key.
    pub id: PageId,
    /// The up-to-date artifact (full frames and audio — the next
    /// revolution's delta basis and the repair path's source).
    pub artifact: Artifact,
    /// What, if anything, goes on air for this page.
    pub slot: CarouselSlot,
}

/// Aggregate accounting for one carousel revolution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CarouselStats {
    /// Jobs processed.
    pub pages: usize,
    /// Pages that were byte-identical to the cached build.
    pub unchanged: usize,
    /// Pages given a full-page slot.
    pub full_slots: usize,
    /// Pages given a delta slot.
    pub delta_slots: usize,
    /// Frames across all full slots.
    pub full_frames: usize,
    /// Frames across all delta slots.
    pub delta_frames: usize,
    /// Columns re-broadcast across all delta slots.
    pub columns_changed: usize,
    /// Total columns across all delta-slotted pages.
    pub columns_total: usize,
}

/// Selects the delta frame subset: the full meta bracket plus every chunk
/// of a changed column. Chunk sequences stay intact per column (a column is
/// rebroadcast whole, from seq 0), so the receiver's longest-prefix
/// reassembly accepts them without a new wire format.
fn delta_frame_subset(frames: &[Frame], changed: &[u16]) -> Vec<Frame> {
    let mut is_changed = Vec::new();
    for &c in changed {
        let c = c as usize;
        if c >= is_changed.len() {
            is_changed.resize(c + 1, false);
        }
        is_changed[c] = true;
    }
    frames
        .iter()
        .filter(|f| match f {
            Frame::Meta { .. } => true,
            Frame::Strip { column, .. } => {
                is_changed.get(*column as usize).copied().unwrap_or(false)
            }
        })
        .cloned()
        .collect()
}

/// Incremental carousel refresh: like [`refresh_pages`], but instead of
/// always producing full-page artifacts for the scheduler, each page is
/// classified into a [`CarouselSlot`]:
///
/// - **Unchanged** (layout or raster hash hit) — nothing airs.
/// - **Delta** (changed, cached prior with matching dimensions) — the page
///   is rebuilt (dirty strips only, via the delta basis), and the slot
///   carries just the meta bracket plus changed columns' chunks, modulated
///   directly. Because every frame is a pure function of the page and
///   modulation a pure function of (profile, frames), the delta frames and
///   audio are bit-identical to the corresponding subset of a cold build.
/// - **Full** (no usable basis) — the complete frame sequence and audio,
///   exactly the cold path.
///
/// Cached artifacts on the Delta path store the **full** frame sequence
/// and full audio (spliced against the prior burst table): they are next
/// hour's delta basis and serve repair requests. The slot's delta audio is
/// the spliced audio itself when every column changed, else a direct
/// modulation of the delta subset.
pub fn refresh_carousel(
    renderer: &Renderer,
    cache: &mut impl ArtifactTier,
    jobs: &[PageJob],
    profile: &Profile,
) -> (Vec<CarouselItem>, CarouselStats) {
    let mut out = Vec::with_capacity(jobs.len());
    for &job in jobs {
        let lh = layout_hash_scaled(renderer, job.id, job.hour);
        let item = carousel_page_with(cache, job.id, lh, job.hour, profile, || {
            let rendered = renderer.corpus().render(job.id, job.hour, renderer.scale());
            let site = &renderer.corpus().sites[job.id.site];
            RenderedContent {
                url: rendered.url,
                raster: rendered.raster,
                clickmap: rendered.clickmap,
                version: (job.hour % u16::MAX as u64) as u16,
                ttl_hours: site.category.landing_churn_hours().max(1) as u16,
            }
        });
        out.push(item);
    }
    let stats = carousel_stats(&out);
    (out, stats)
}

/// Folds a revolution's [`CarouselItem`]s into its [`CarouselStats`].
pub fn carousel_stats(items: &[CarouselItem]) -> CarouselStats {
    let mut stats = CarouselStats {
        pages: items.len(),
        ..CarouselStats::default()
    };
    for item in items {
        match &item.slot {
            CarouselSlot::Unchanged => stats.unchanged += 1,
            CarouselSlot::Full => {
                stats.full_slots += 1;
                stats.full_frames += item.artifact.frames.len();
            }
            CarouselSlot::Delta {
                frames,
                changed_columns,
                ..
            } => {
                stats.delta_slots += 1;
                stats.delta_frames += frames.len();
                stats.columns_changed += changed_columns;
                stats.columns_total += item.artifact.page.strips.width;
            }
        }
    }
    stats
}

/// One page through the incremental carousel — the render-agnostic core of
/// [`refresh_carousel`], mirroring [`refresh_page_with`]. `render` is only
/// invoked when the layout hash misses.
pub fn carousel_page_with(
    cache: &mut impl ArtifactTier,
    key: PageId,
    layout_hash: u64,
    hour: u64,
    profile: &Profile,
    render: impl FnOnce() -> RenderedContent,
) -> CarouselItem {
    // Audio is not required for the unchanged check: a delta-built
    // artifact (cached without audio) still means "nothing new to air".
    if let Some(a) = cache.lookup_layout(key, layout_hash, false) {
        return CarouselItem {
            id: key,
            artifact: a,
            slot: CarouselSlot::Unchanged,
        };
    }
    let content = render();
    let new_hashes = strip::column_hashes(&content.raster);
    let rh = strip::raster_hash_from(
        content.raster.width(),
        content.raster.height(),
        &new_hashes,
    );
    if let Some(a) = cache.lookup_raster(
        key,
        rh,
        layout_hash,
        &content.url,
        &content.clickmap,
        content.ttl_hours,
        false,
    ) {
        return CarouselItem {
            id: key,
            artifact: a,
            slot: CarouselSlot::Unchanged,
        };
    }
    let basis = cache.delta_basis_mut(key);
    let delta_basis = match &basis {
        Some((prev, prev_hashes))
            if prev.page.strips.width == content.raster.width()
                && prev.page.strips.height == content.raster.height() =>
        {
            Some((prev, prev_hashes))
        }
        _ => None,
    };
    match delta_basis {
        Some((prev, prev_hashes)) => {
            let d = strip::encode_delta_prehashed(
                &content.raster,
                &prev.page.strips,
                prev_hashes,
                new_hashes,
            );
            cache.stats_mut().strips_reused += d.reused as u64;
            cache.stats_mut().strips_reencoded += d.reencoded as u64;
            let changed = strip::diff_columns(prev_hashes, &d.hashes);
            let all_changed = changed.len() == d.hashes.len();
            let page = Arc::new(SimplifiedPage::from_parts(
                &content.url,
                d.strips,
                content.clickmap,
                content.version,
                content.ttl_hours,
            ));
            let frames_full = Arc::new(page_to_frames(&page));
            // The cached artifact keeps full audio (next hour's splice
            // basis and the repair path's source), built the cheap way:
            // splice against the prior burst table where it exists.
            let (audio, bursts) = if prev.has_audio() {
                let s = link::modulate_spliced(profile, &frames_full, &prev.audio, &prev.bursts);
                cache.stats_mut().bursts_reused += s.reused as u64;
                cache.stats_mut().bursts_modulated += s.modulated as u64;
                (s.audio, s.table)
            } else {
                link::modulate_with_table(profile, &frames_full)
            };
            cache.stats_mut().delta_hits += 1;
            let artifact = Artifact {
                page,
                frames: frames_full,
                audio: Arc::new(audio),
                bursts,
            };
            // Slot audio: when every column changed the delta IS the full
            // sequence, so the spliced audio serves verbatim; otherwise the
            // (small) delta subset regroups into its own bursts and is
            // modulated directly — still bit-identical to
            // `link::modulate(profile, delta_frames)` by purity.
            let (delta_frames, delta_audio) = if all_changed {
                (artifact.frames.clone(), artifact.audio.clone())
            } else {
                let df = Arc::new(delta_frame_subset(&artifact.frames, &changed));
                let (da, _) = link::modulate_with_table(profile, &df);
                cache.stats_mut().bursts_modulated +=
                    df.len().div_ceil(crate::link::FRAMES_PER_BURST) as u64;
                (df, Arc::new(da))
            };
            cache.store(key, layout_hash, rh, Arc::new(d.hashes), artifact.clone(), hour);
            CarouselItem {
                id: key,
                artifact,
                slot: CarouselSlot::Delta {
                    frames: delta_frames,
                    audio: delta_audio,
                    changed_columns: changed.len(),
                },
            }
        }
        None => {
            let page = Arc::new(SimplifiedPage::from_parts(
                &content.url,
                strip::encode(&content.raster),
                content.clickmap,
                content.version,
                content.ttl_hours,
            ));
            let frames = Arc::new(page_to_frames(&page));
            let (audio, bursts) = link::modulate_with_table(profile, &frames);
            cache.stats_mut().misses += 1;
            let artifact = Artifact {
                page,
                frames,
                audio: Arc::new(audio),
                bursts,
            };
            cache.store(key, layout_hash, rh, Arc::new(new_hashes), artifact.clone(), hour);
            CarouselItem {
                id: key,
                artifact,
                slot: CarouselSlot::Full,
            }
        }
    }
}

/// [`refresh_carousel`] that feeds the scheduler: Full slots take a
/// full-page entry, Delta slots take a delta entry (which a queued full
/// page supersedes, and which never serves repair requests), and Unchanged
/// pages enqueue nothing.
pub fn refresh_carousel_into_scheduler(
    renderer: &Renderer,
    cache: &mut impl ArtifactTier,
    jobs: &[PageJob],
    profile: &Profile,
    scheduler: &mut BroadcastScheduler,
    now_s: f64,
) -> (Vec<CarouselItem>, CarouselStats) {
    let (items, stats) = refresh_carousel(renderer, cache, jobs, profile);
    for item in &items {
        match &item.slot {
            CarouselSlot::Unchanged => {}
            CarouselSlot::Full => {
                scheduler.enqueue_prechunked(
                    item.artifact.page.clone(),
                    item.artifact.frames.clone(),
                    now_s,
                );
            }
            CarouselSlot::Delta { frames, .. } => {
                scheduler.enqueue_delta(item.artifact.page.clone(), frames.clone(), now_s);
            }
        }
    }
    (items, stats)
}

/// [`run_pipeline_with`] without a sink callback.
pub fn run_pipeline(
    renderer: &Renderer,
    jobs: &[PageJob],
    opts: &PipelineOptions,
) -> Vec<BroadcastArtifact> {
    run_pipeline_with(renderer, jobs, opts, |_| {})
}

/// Runs the pipeline and enqueues every page into `scheduler` as it clears
/// the reorder buffer, in job order. The bounded stage queues mean a
/// transmitter that stops draining its scheduler does not cause unbounded
/// pipeline buffering — at most `queue_depth` pages per stage are in
/// flight. Returns the artifacts (audio included) in job order.
pub fn run_pipeline_into_scheduler(
    renderer: &Renderer,
    jobs: &[PageJob],
    opts: &PipelineOptions,
    scheduler: &mut BroadcastScheduler,
    now_s: f64,
) -> Vec<BroadcastArtifact> {
    run_pipeline_with(renderer, jobs, opts, |artifact| {
        scheduler.enqueue(artifact.page.clone(), now_s);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::cache::ArtifactCache;
    use sonic_pagegen::Corpus;

    fn renderer() -> Renderer {
        Renderer::new(Corpus::small(3), 0.05)
    }

    fn jobs() -> Vec<PageJob> {
        // Mix sites, pages and hours so artifacts differ.
        vec![
            PageJob {
                id: PageId { site: 0, page: 0 },
                hour: 1,
            },
            PageJob {
                id: PageId { site: 1, page: 1 },
                hour: 2,
            },
            PageJob {
                id: PageId { site: 2, page: 0 },
                hour: 3,
            },
            PageJob {
                id: PageId { site: 0, page: 2 },
                hour: 1,
            },
            PageJob {
                id: PageId { site: 1, page: 0 },
                hour: 7,
            },
            PageJob {
                id: PageId { site: 2, page: 3 },
                hour: 9,
            },
        ]
    }

    fn assert_artifacts_identical(a: &[BroadcastArtifact], b: &[BroadcastArtifact]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.page.page_id, y.page.page_id);
            assert_eq!(x.page.url, y.page.url);
            assert_eq!(x.page.meta_blob(), y.page.meta_blob());
            assert_eq!(x.page.strips.strips, y.page.strips.strips);
            assert_eq!(x.frames, y.frames);
            assert_eq!(x.audio.len(), y.audio.len(), "seq {}", x.seq);
            for (i, (s, t)) in x.audio.iter().zip(&y.audio).enumerate() {
                assert_eq!(s.to_bits(), t.to_bits(), "seq {} sample {i}", x.seq);
            }
        }
    }

    #[test]
    fn parallel_output_is_bit_identical_to_serial() {
        let r = renderer();
        let jobs = jobs();
        let opts = PipelineOptions {
            workers: 4,
            queue_depth: 2,
            ..PipelineOptions::default()
        };
        let serial = run_serial(&r, &opts.profile, &jobs);
        let parallel = run_pipeline(&r, &jobs, &opts);
        assert_artifacts_identical(&serial, &parallel);
    }

    #[test]
    fn single_worker_and_tiny_queue_still_complete() {
        let r = renderer();
        let jobs = jobs();
        let opts = PipelineOptions {
            workers: 1,
            queue_depth: 1,
            ..PipelineOptions::default()
        };
        let out = run_pipeline(&r, &jobs, &opts);
        assert_eq!(out.len(), jobs.len());
        for (i, a) in out.iter().enumerate() {
            assert_eq!(a.seq, i, "artifacts must arrive in job order");
            assert!(!a.audio.is_empty());
        }
    }

    #[test]
    fn zero_workers_clamps_instead_of_hanging() {
        let r = renderer();
        let jobs = &jobs()[..2];
        let opts = PipelineOptions {
            workers: 0,
            queue_depth: 0,
            ..PipelineOptions::default()
        };
        assert_eq!(run_pipeline(&r, jobs, &opts).len(), 2);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let r = renderer();
        assert!(run_pipeline(&r, &[], &PipelineOptions::default()).is_empty());
    }

    #[test]
    fn cold_refresh_is_bit_identical_to_serial_pipeline() {
        let r = renderer();
        let jobs = jobs();
        let profile = Profile::sonic_10k();
        let mut cache = ArtifactCache::unbounded();
        let (warm, stats) = refresh_pages(&r, &mut cache, &jobs, Some(&profile));
        assert_eq!(stats.misses, jobs.len(), "cold cache: every page is a miss");
        let serial = run_serial(&r, &profile, &jobs);
        assert_eq!(warm.len(), serial.len());
        for (a, s) in warm.iter().zip(&serial) {
            assert_eq!(a.page.page_id, s.page.page_id);
            assert_eq!(a.page.meta_blob(), s.page.meta_blob());
            assert_eq!(a.page.strips.strips, s.page.strips.strips);
            assert_eq!(*a.frames, s.frames);
            assert_eq!(a.audio.len(), s.audio.len());
            for (x, y) in a.audio.iter().zip(&s.audio) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn repeat_refresh_reuses_artifacts_verbatim() {
        let r = renderer();
        let jobs = jobs();
        let mut cache = ArtifactCache::unbounded();
        let (first, _) = refresh_pages(&r, &mut cache, &jobs, Some(&Profile::sonic_10k()));
        let (second, stats) = refresh_pages(&r, &mut cache, &jobs, Some(&Profile::sonic_10k()));
        assert_eq!(stats.full_hits, jobs.len());
        assert_eq!(stats.misses + stats.delta_hits, 0);
        for (a, b) in first.iter().zip(&second) {
            assert!(std::sync::Arc::ptr_eq(&a.audio, &b.audio), "audio shared, not copied");
            assert!(std::sync::Arc::ptr_eq(&a.frames, &b.frames));
        }
    }

    #[test]
    fn hourly_refresh_reuses_unchanged_pages_and_rebuilds_changed() {
        let r = renderer();
        let corpus = r.corpus();
        let jobs_h: Vec<PageJob> = corpus
            .pages()
            .into_iter()
            .map(|id| PageJob { id, hour: 12 })
            .collect();
        let jobs_h1: Vec<PageJob> = jobs_h.iter().map(|j| PageJob { hour: 13, ..*j }).collect();
        let mut cache = ArtifactCache::unbounded();
        let profile = Profile::sonic_10k();
        let (first, _) = refresh_pages(&r, &mut cache, &jobs_h, Some(&profile));
        let (second, stats) = refresh_pages(&r, &mut cache, &jobs_h1, Some(&profile));
        let changed: Vec<bool> = jobs_h
            .iter()
            .map(|j| corpus.changed(j.id, 12, 13))
            .collect();
        let n_changed = changed.iter().filter(|&&c| c).count();
        assert!(n_changed > 0, "hour 12→13 must change something");
        assert_eq!(stats.full_hits, jobs_h.len() - n_changed);
        assert_eq!(stats.delta_hits + stats.misses, n_changed);
        for ((a, b), &ch) in first.iter().zip(&second).zip(&changed) {
            if ch {
                // Rebuilt at the new hour: bit-identical to a cold build.
                let serial = run_serial(
                    &r,
                    &profile,
                    &[PageJob {
                        id: corpus.find_url(&b.page.url, 13).expect("corpus url"),
                        hour: 13,
                    }],
                );
                assert_eq!(b.page.strips.strips, serial[0].page.strips.strips);
                assert_eq!(*b.frames, serial[0].frames);
                assert_eq!(b.audio.len(), serial[0].audio.len());
                for (x, y) in b.audio.iter().zip(&serial[0].audio) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            } else {
                // Unchanged: the very same artifact, old version included.
                assert!(std::sync::Arc::ptr_eq(&a.page, &b.page));
                assert!(std::sync::Arc::ptr_eq(&a.audio, &b.audio));
            }
        }
    }

    #[test]
    fn frames_only_refresh_skips_audio_then_audio_refresh_rebuilds() {
        let r = renderer();
        let jobs = &jobs()[..2];
        let mut cache = ArtifactCache::unbounded();
        let (no_audio, _) = refresh_pages(&r, &mut cache, jobs, None);
        assert!(no_audio.iter().all(|a| !a.has_audio()));
        // Frames-only again: full hits are fine without audio.
        let (_, s2) = refresh_pages(&r, &mut cache, jobs, None);
        assert_eq!(s2.full_hits, 2);
        // Now audio is wanted: the cached frames-only artifacts are not
        // served verbatim; strips are still reused via the delta basis.
        let profile = Profile::sonic_10k();
        let (with_audio, s3) = refresh_pages(&r, &mut cache, jobs, Some(&profile));
        assert_eq!(s3.full_hits, 0);
        assert!(with_audio.iter().all(|a| a.has_audio()));
        let serial = run_serial(&r, &profile, jobs);
        for (a, s) in with_audio.iter().zip(&serial) {
            assert_eq!(a.audio.len(), s.audio.len());
            for (x, y) in a.audio.iter().zip(&s.audio) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn refresh_into_scheduler_enqueues_shared_frames() {
        let r = renderer();
        let jobs = jobs();
        let mut cache = ArtifactCache::unbounded();
        let mut sched = BroadcastScheduler::new(10_000.0);
        let (artifacts, _) =
            refresh_into_scheduler(&r, &mut cache, &jobs, None, &mut sched, 0.0);
        assert_eq!(sched.backlog_pages(), jobs.len());
        let total: usize = artifacts
            .iter()
            .map(|a| a.frames.len() * crate::frame::FRAME_SIZE)
            .sum();
        assert_eq!(sched.backlog_bytes(), total);
        // Re-push the same refresh: dedupe keeps the backlog flat.
        let _ = refresh_into_scheduler(&r, &mut cache, &jobs, None, &mut sched, 1.0);
        assert_eq!(sched.backlog_pages(), jobs.len());
        assert_eq!(sched.backlog_bytes(), total);
    }

    #[test]
    fn scheduler_sink_enqueues_in_job_order() {
        let r = renderer();
        let jobs = jobs();
        let opts = PipelineOptions {
            workers: 3,
            queue_depth: 2,
            ..PipelineOptions::default()
        };
        let mut sched = BroadcastScheduler::new(10_000.0);
        let artifacts = run_pipeline_into_scheduler(&r, &jobs, &opts, &mut sched, 0.0);
        assert_eq!(sched.backlog_pages(), jobs.len(), "all pages queued");
        let total: usize = artifacts
            .iter()
            .map(|a| a.frames.len() * crate::frame::FRAME_SIZE)
            .sum();
        assert_eq!(sched.backlog_bytes(), total);
        // ETAs must reflect job order: later jobs sit deeper in the queue.
        let mut last_eta = 0.0;
        for a in &artifacts {
            let eta = sched.eta_for(a.page.page_id).expect("queued");
            assert!(eta > last_eta, "eta must grow with queue position");
            last_eta = eta;
        }
    }
}
