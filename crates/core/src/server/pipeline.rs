//! Multi-threaded broadcast pipeline: render → SWP encode → chunk → OFDM.
//!
//! The serial broadcast path costs hundreds of milliseconds per page (raster
//! render, strip/SWP encoding, chunking, OFDM modulation), which caps how
//! fast a transmitter fleet can be fed. This module runs those four stages
//! as a pipeline of worker pools connected by **bounded** crossbeam
//! channels: every stage can run concurrently on different pages, the
//! bounded queues give back-pressure (a slow consumer stalls producers
//! instead of buffering unboundedly), and a sequence-tagged reorder buffer
//! at the sink makes the output order — and therefore everything fed into a
//! [`BroadcastScheduler`] — deterministic and identical to the serial path.
//!
//! Stage outputs are bit-identical to [`run_serial`]: every stage is a pure
//! function of its input (modulation goes through `sonic-modem`'s cached
//! `FrameCodec`, which is bit-exact versus its reference path), so the only
//! difference parallelism could introduce is ordering, and the reorder
//! buffer removes it.

use crate::chunker::page_to_frames;
use crate::frame::Frame;
use crate::link;
use crate::page::SimplifiedPage;
use crate::server::render::Renderer;
use crate::server::scheduler::BroadcastScheduler;
use crossbeam::channel::{bounded, Receiver, Sender};
use sonic_modem::profile::Profile;
use sonic_pagegen::{PageId, RenderedPage};
use std::collections::BTreeMap;

/// One render request: a corpus page at an hour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageJob {
    /// Corpus page to render.
    pub id: PageId,
    /// Render hour (drives versioning).
    pub hour: u64,
}

/// Everything the broadcast chain produces for one page, in job order.
#[derive(Debug, Clone)]
pub struct BroadcastArtifact {
    /// Index of the originating job in the input slice.
    pub seq: usize,
    /// The simplified page (strip/SWP-encoded screenshot + metadata).
    pub page: SimplifiedPage,
    /// The page's link-frame sequence.
    pub frames: Vec<Frame>,
    /// OFDM audio for the whole frame sequence.
    pub audio: Vec<f32>,
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Worker threads for each of the two heavy pools (render+encode and
    /// modulate). Clamped to at least 1.
    pub workers: usize,
    /// Capacity of every inter-stage channel; this bounds in-flight pages
    /// and is what back-pressure is made of. Clamped to at least 1.
    pub queue_depth: usize,
    /// Modem profile for the modulation stage.
    pub profile: Profile,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_depth: 4,
            profile: Profile::sonic_10k(),
        }
    }
}

/// Stage 1: raster render (the "headless browser").
fn stage_render(renderer: &Renderer, job: PageJob) -> (RenderedPage, u16, u16) {
    let rendered = renderer
        .corpus()
        .render(job.id, job.hour, renderer.scale());
    let site = &renderer.corpus().sites[job.id.site];
    let ttl = site.category.landing_churn_hours().max(1) as u16;
    let version = (job.hour % u16::MAX as u64) as u16;
    (rendered, version, ttl)
}

/// Stage 2: SWP/strip image encoding into a broadcastable page.
fn stage_encode(rendered: &RenderedPage, version: u16, ttl: u16) -> SimplifiedPage {
    SimplifiedPage::from_raster(
        &rendered.url,
        &rendered.raster,
        rendered.clickmap.clone(),
        version,
        ttl,
    )
}

/// Stage 3: page → link frames.
fn stage_chunk(page: &SimplifiedPage) -> Vec<Frame> {
    page_to_frames(page)
}

/// Stage 4: link frames → OFDM audio.
fn stage_modulate(profile: &Profile, frames: &[Frame]) -> Vec<f32> {
    link::modulate(profile, frames)
}

/// Single-threaded reference: runs the four stages back-to-back per job.
/// The parallel pipeline must produce bit-identical artifacts.
pub fn run_serial(renderer: &Renderer, profile: &Profile, jobs: &[PageJob]) -> Vec<BroadcastArtifact> {
    jobs.iter()
        .enumerate()
        .map(|(seq, &job)| {
            let (rendered, version, ttl) = stage_render(renderer, job);
            let page = stage_encode(&rendered, version, ttl);
            let frames = stage_chunk(&page);
            let audio = stage_modulate(profile, &frames);
            BroadcastArtifact {
                seq,
                page,
                frames,
                audio,
            }
        })
        .collect()
}

/// Pulls final-stage results and yields them in `seq` order via a reorder
/// buffer, applying `emit` to each as soon as its turn arrives.
fn reorder_sink(
    rx: Receiver<BroadcastArtifact>,
    total: usize,
    mut emit: impl FnMut(&BroadcastArtifact),
) -> Vec<BroadcastArtifact> {
    let mut pending: BTreeMap<usize, BroadcastArtifact> = BTreeMap::new();
    let mut out = Vec::with_capacity(total);
    let mut next = 0usize;
    for artifact in rx {
        pending.insert(artifact.seq, artifact);
        while let Some(a) = pending.remove(&next) {
            emit(&a);
            out.push(a);
            next += 1;
        }
    }
    // Channel closed: all workers exited, everything must have drained.
    assert!(pending.is_empty(), "pipeline lost artifacts");
    out
}

/// Runs the broadcast pipeline over `jobs`, returning artifacts in job
/// order. `on_ready` fires on the caller thread for each artifact as it
/// clears the reorder buffer (still in job order) — this is where
/// [`run_pipeline_into_scheduler`] hooks the scheduler in.
pub fn run_pipeline_with(
    renderer: &Renderer,
    jobs: &[PageJob],
    opts: &PipelineOptions,
    on_ready: impl FnMut(&BroadcastArtifact),
) -> Vec<BroadcastArtifact> {
    let workers = opts.workers.max(1);
    let depth = opts.queue_depth.max(1);
    let profile = &opts.profile;

    // Stage channels. Bounded: a full queue blocks the upstream stage, so
    // memory stays at O(queue_depth) pages regardless of job count.
    let (job_tx, job_rx) = bounded::<(usize, PageJob)>(depth);
    let (page_tx, page_rx) = bounded::<(usize, SimplifiedPage)>(depth);
    let (frame_tx, frame_rx) = bounded::<(usize, SimplifiedPage, Vec<Frame>)>(depth);
    let (out_tx, out_rx) = bounded::<BroadcastArtifact>(depth);

    std::thread::scope(|scope| {
        // Render + SWP-encode pool (stages 1–2 share a worker: the encode
        // input is the render output and both are per-page pure functions).
        for _ in 0..workers {
            let job_rx: Receiver<(usize, PageJob)> = job_rx.clone();
            let page_tx: Sender<(usize, SimplifiedPage)> = page_tx.clone();
            scope.spawn(move || {
                for (seq, job) in job_rx {
                    let (rendered, version, ttl) = stage_render(renderer, job);
                    let page = stage_encode(&rendered, version, ttl);
                    if page_tx.send((seq, page)).is_err() {
                        return;
                    }
                }
            });
        }
        // Chunking stage (cheap; one worker keeps it a distinct stage
        // without burning threads).
        {
            let page_rx = page_rx.clone();
            let frame_tx = frame_tx.clone();
            scope.spawn(move || {
                for (seq, page) in page_rx {
                    let frames = stage_chunk(&page);
                    if frame_tx.send((seq, page, frames)).is_err() {
                        return;
                    }
                }
            });
        }
        // Modulation pool. Each worker thread keeps its own cached
        // `FrameCodec` (thread-local inside sonic-modem), so the OFDM plan
        // and scratch buffers are built once per thread, not per page.
        for _ in 0..workers {
            let frame_rx = frame_rx.clone();
            let out_tx = out_tx.clone();
            scope.spawn(move || {
                for (seq, page, frames) in frame_rx {
                    let audio = stage_modulate(profile, &frames);
                    if out_tx
                        .send(BroadcastArtifact {
                            seq,
                            page,
                            frames,
                            audio,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
            });
        }
        // The scope owns the original senders/receivers; drop our copies so
        // the chain closes stage by stage once the feeder finishes.
        drop(page_tx);
        drop(page_rx);
        drop(frame_tx);
        drop(frame_rx);
        drop(out_tx);

        // Feed jobs from a scoped thread so the caller thread can sink.
        scope.spawn(move || {
            for (seq, &job) in jobs.iter().enumerate() {
                if job_tx.send((seq, job)).is_err() {
                    return;
                }
            }
        });
        drop(job_rx);

        reorder_sink(out_rx, jobs.len(), on_ready)
    })
}

/// [`run_pipeline_with`] without a sink callback.
pub fn run_pipeline(
    renderer: &Renderer,
    jobs: &[PageJob],
    opts: &PipelineOptions,
) -> Vec<BroadcastArtifact> {
    run_pipeline_with(renderer, jobs, opts, |_| {})
}

/// Runs the pipeline and enqueues every page into `scheduler` as it clears
/// the reorder buffer, in job order. The bounded stage queues mean a
/// transmitter that stops draining its scheduler does not cause unbounded
/// pipeline buffering — at most `queue_depth` pages per stage are in
/// flight. Returns the artifacts (audio included) in job order.
pub fn run_pipeline_into_scheduler(
    renderer: &Renderer,
    jobs: &[PageJob],
    opts: &PipelineOptions,
    scheduler: &mut BroadcastScheduler,
    now_s: f64,
) -> Vec<BroadcastArtifact> {
    run_pipeline_with(renderer, jobs, opts, |artifact| {
        scheduler.enqueue(artifact.page.clone(), now_s);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonic_pagegen::Corpus;

    fn renderer() -> Renderer {
        Renderer::new(Corpus::small(3), 0.05)
    }

    fn jobs() -> Vec<PageJob> {
        // Mix sites, pages and hours so artifacts differ.
        vec![
            PageJob {
                id: PageId { site: 0, page: 0 },
                hour: 1,
            },
            PageJob {
                id: PageId { site: 1, page: 1 },
                hour: 2,
            },
            PageJob {
                id: PageId { site: 2, page: 0 },
                hour: 3,
            },
            PageJob {
                id: PageId { site: 0, page: 2 },
                hour: 1,
            },
            PageJob {
                id: PageId { site: 1, page: 0 },
                hour: 7,
            },
            PageJob {
                id: PageId { site: 2, page: 3 },
                hour: 9,
            },
        ]
    }

    fn assert_artifacts_identical(a: &[BroadcastArtifact], b: &[BroadcastArtifact]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.page.page_id, y.page.page_id);
            assert_eq!(x.page.url, y.page.url);
            assert_eq!(x.page.meta_blob(), y.page.meta_blob());
            assert_eq!(x.page.strips.strips, y.page.strips.strips);
            assert_eq!(x.frames, y.frames);
            assert_eq!(x.audio.len(), y.audio.len(), "seq {}", x.seq);
            for (i, (s, t)) in x.audio.iter().zip(&y.audio).enumerate() {
                assert_eq!(s.to_bits(), t.to_bits(), "seq {} sample {i}", x.seq);
            }
        }
    }

    #[test]
    fn parallel_output_is_bit_identical_to_serial() {
        let r = renderer();
        let jobs = jobs();
        let opts = PipelineOptions {
            workers: 4,
            queue_depth: 2,
            ..PipelineOptions::default()
        };
        let serial = run_serial(&r, &opts.profile, &jobs);
        let parallel = run_pipeline(&r, &jobs, &opts);
        assert_artifacts_identical(&serial, &parallel);
    }

    #[test]
    fn single_worker_and_tiny_queue_still_complete() {
        let r = renderer();
        let jobs = jobs();
        let opts = PipelineOptions {
            workers: 1,
            queue_depth: 1,
            ..PipelineOptions::default()
        };
        let out = run_pipeline(&r, &jobs, &opts);
        assert_eq!(out.len(), jobs.len());
        for (i, a) in out.iter().enumerate() {
            assert_eq!(a.seq, i, "artifacts must arrive in job order");
            assert!(!a.audio.is_empty());
        }
    }

    #[test]
    fn zero_workers_clamps_instead_of_hanging() {
        let r = renderer();
        let jobs = &jobs()[..2];
        let opts = PipelineOptions {
            workers: 0,
            queue_depth: 0,
            ..PipelineOptions::default()
        };
        assert_eq!(run_pipeline(&r, jobs, &opts).len(), 2);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let r = renderer();
        assert!(run_pipeline(&r, &[], &PipelineOptions::default()).is_empty());
    }

    #[test]
    fn scheduler_sink_enqueues_in_job_order() {
        let r = renderer();
        let jobs = jobs();
        let opts = PipelineOptions {
            workers: 3,
            queue_depth: 2,
            ..PipelineOptions::default()
        };
        let mut sched = BroadcastScheduler::new(10_000.0);
        let artifacts = run_pipeline_into_scheduler(&r, &jobs, &opts, &mut sched, 0.0);
        assert_eq!(sched.backlog_pages(), jobs.len(), "all pages queued");
        let total: usize = artifacts
            .iter()
            .map(|a| a.frames.len() * crate::frame::FRAME_SIZE)
            .sum();
        assert_eq!(sched.backlog_bytes(), total);
        // ETAs must reflect job order: later jobs sit deeper in the queue.
        let mut last_eta = 0.0;
        for a in &artifacts {
            let eta = sched.eta_for(a.page.page_id).expect("queued");
            assert!(eta > last_eta, "eta must grow with queue position");
            last_eta = eta;
        }
    }
}
