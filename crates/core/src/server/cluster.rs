//! Sharded multi-site control plane over the framed transport.
//!
//! A country-scale SONIC deployment splits §3.1's monolithic server: one
//! central **coordinator** owns rendering, the shared artifact store, the
//! SMS gateway's bounded ingress queue and the repair planner, and N
//! **site nodes** — one per FM transmitter — each own their broadcast
//! scheduler. Coordinator and sites talk only through
//! [`crate::net`]'s length-prefixed frames over fault-injected links, so
//! every control-plane interaction survives torn frames, partitions and
//! crash/restart cycles (the distributed chaos soak in `sonic-sim`
//! exercises exactly that).
//!
//! Two push paths keep the wire thin:
//!
//! * **`PushStored`** — carousel pages travel as a ~26-byte store key; the
//!   site reloads frames from the shared disk tier ([`ArtifactStore`]'s
//!   warm-restart property doing double duty as a content distribution
//!   network). A cold site answers `StoreMiss` and the coordinator falls
//!   back to…
//! * **`PushFrames`** — inline 100-byte link frames (query-result pages
//!   and repair bursts, which never enter the store).
//!
//! Failure handling, in order of escalation:
//!
//! * every RPC carries a deadline; expiries retry under exponential
//!   backoff within a bounded attempt budget ([`RpcClient`]);
//! * consecutive expiries mark a site **Down**; its repair traffic fails
//!   over to the next live site in ring order while page pushes wait in
//!   the client's bounded queue;
//! * when a downed site answers a probe, the coordinator sends `Resume`:
//!   the site reloads the hour's carousel from the disk tier, skipping
//!   the slots it had already aired before the crash;
//! * under overload everything sheds in class order — repair bursts
//!   before deltas before full pages, control traffic never — at three
//!   independent bounded queues (SMS ingress, RPC client, site backlog).
//!
//! [`ArtifactStore`]: crate::server::store::ArtifactStore
//! [`RpcClient`]: crate::net::rpc::RpcClient

use crate::chunker::page_to_frames;
use crate::frame::Frame;
use crate::net::codec::{frame_bytes, FrameDecoder};
use crate::net::proto::{decode_msg, encode_msg, Msg, RefuseCode, Request, Response};
use crate::net::rpc::{JobClass, RpcClient, RpcPolicy};
use crate::net::transport::SimLink;
use crate::page::SimplifiedPage;
use crate::server::cache::{ArtifactCache, RenderCache, SharedArtifactStore, TieredCache};
use crate::server::pipeline::{self, PageJob};
use crate::server::render::Renderer;
use crate::server::repair::RepairPlanner;
use crate::server::scheduler::{BroadcastScheduler, SlotKind};
use sonic_pagegen::PageId;
use sonic_sms::gateway;
use sonic_sms::geo::Coverage;
use sonic_sms::ingress::IngressQueue;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Coordinator-side RAM tier for refreshed artifacts. Small relative to
/// the monolithic server's: the cluster's durable tier is the shared
/// store, and sites hold their own frames.
const CLUSTER_CACHE_BYTES: usize = 64 << 20;

/// Entries the per-page chunked-frames memo may hold before it is cleared
/// (a full clear is simpler than LRU and the memo rebuilds in one pass).
const FRAMES_MEMO_CAP: usize = 512;

/// A ready-to-push carousel artifact: the page plus its chunked frames.
type PageArtifact = (Arc<SimplifiedPage>, Arc<Vec<Frame>>);

/// Per-site service policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteConfig {
    /// The transmitter site id this node serves.
    pub site_id: u32,
    /// Broadcast payload rate.
    pub rate_bps: f64,
    /// Hard cap on queued pages: every push is refused above it.
    pub max_backlog_pages: usize,
    /// Backlog bytes above which repair pushes are shed (first to go).
    pub shed_repair_bytes: usize,
    /// Backlog bytes above which delta pushes are shed (second to go;
    /// must be ≥ the repair threshold for the class order to hold).
    pub shed_delta_bytes: usize,
    /// Seconds received bytes may sit undecoded before the request decoder
    /// abandons its pending frame and re-scans (torn-frame livelock guard).
    pub stall_resync_s: f64,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig {
            site_id: 0,
            rate_bps: 80_000.0,
            max_backlog_pages: 512,
            shed_repair_bytes: 256 << 10,
            shed_delta_bytes: 512 << 10,
            stall_resync_s: 10.0,
        }
    }
}

/// Site-node counters (soak assertions and diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Requests decoded and handled.
    pub requests: u64,
    /// Wire frames that did not decode to a request message.
    pub bad_msgs: u64,
    /// `PushStored` keys served from the store tier.
    pub store_hits: u64,
    /// `PushStored` keys missing from the store tier.
    pub store_misses: u64,
    /// `PushFrames` bodies enqueued.
    pub frames_pushes: u64,
    /// Pushes refused under load shed.
    pub refused_overload: u64,
    /// Carousel jobs reloaded from the store on `Resume`.
    pub resumed_jobs: u64,
    /// Responses the severed uplink refused to carry.
    pub responses_lost: u64,
}

/// One transmitter-site shard: a broadcast scheduler behind the framed
/// transport, optionally backed by the shared artifact store.
#[derive(Debug)]
pub struct SiteNode {
    /// Service policy.
    pub config: SiteConfig,
    /// The site's broadcast scheduler (airs via [`advance`](Self::advance)).
    pub scheduler: BroadcastScheduler,
    store: Option<SharedArtifactStore>,
    decoder: FrameDecoder,
    /// Last time the request decoder made progress (or sat empty).
    last_rx_progress_s: f64,
    /// Counters.
    pub stats: SiteStats,
}

impl SiteNode {
    /// A fresh site node. Pass the shared store for the warm `PushStored` /
    /// `Resume` paths; without one every stored push answers `StoreMiss`.
    pub fn new(config: SiteConfig, store: Option<SharedArtifactStore>) -> Self {
        let rate = config.rate_bps;
        SiteNode {
            config,
            scheduler: BroadcastScheduler::new(rate),
            store,
            decoder: FrameDecoder::new(),
            last_rx_progress_s: 0.0,
            stats: SiteStats::default(),
        }
    }

    /// Loads a carousel artifact from the shared store tier.
    fn load_stored(
        &mut self,
        corpus_site: u32,
        corpus_page: u32,
    ) -> Option<(Arc<SimplifiedPage>, Arc<Vec<Frame>>)> {
        let store = self.store.as_ref()?;
        let loaded = store.lock().load(PageId {
            site: corpus_site as usize,
            page: corpus_page as usize,
        })?;
        Some((loaded.artifact.page, loaded.artifact.frames))
    }

    /// Handles one decoded request (the transport-free core; `service`
    /// wraps it behind the wire).
    pub fn handle(&mut self, req: Request, now_s: f64) -> Response {
        self.stats.requests += 1;
        match req {
            Request::Ping => Response::Pong {
                site_id: self.config.site_id,
                backlog_bytes: self.scheduler.backlog_bytes() as u64,
                backlog_pages: self.scheduler.backlog_pages() as u32,
                pages_completed: self.scheduler.completed_pages,
            },
            Request::PushStored {
                corpus_site,
                corpus_page,
                ..
            } => {
                if self.scheduler.backlog_pages() >= self.config.max_backlog_pages {
                    self.stats.refused_overload += 1;
                    return Response::Refused {
                        code: RefuseCode::Overloaded,
                    };
                }
                match self.load_stored(corpus_site, corpus_page) {
                    Some((page, frames)) => {
                        self.stats.store_hits += 1;
                        let eta = self.scheduler.enqueue_prechunked(page, frames, now_s);
                        Response::Done {
                            eta_ms: (eta * 1000.0) as u64,
                        }
                    }
                    None => {
                        self.stats.store_misses += 1;
                        Response::Refused {
                            code: RefuseCode::StoreMiss,
                        }
                    }
                }
            }
            Request::PushFrames {
                page_id,
                kind,
                frames,
            } => {
                let backlog = self.scheduler.backlog_bytes();
                let shed = self.scheduler.backlog_pages() >= self.config.max_backlog_pages
                    || (kind == SlotKind::Repair && backlog > self.config.shed_repair_bytes)
                    || (kind == SlotKind::Delta && backlog > self.config.shed_delta_bytes);
                if shed {
                    self.stats.refused_overload += 1;
                    return Response::Refused {
                        code: RefuseCode::Overloaded,
                    };
                }
                self.stats.frames_pushes += 1;
                let eta = self
                    .scheduler
                    .enqueue_frames(page_id, kind, Arc::new(frames), now_s);
                Response::Done {
                    eta_ms: (eta * 1000.0) as u64,
                }
            }
            Request::Resume { slot, jobs, .. } => {
                // Warm restart: reload the hour's carousel from the disk
                // tier, skipping slots aired before the crash. Jobs whose
                // artifacts are missing are skipped — the coordinator's
                // next carousel push re-seeds them.
                let mut eta = 0.0f64;
                for &(cs, cp) in jobs.iter().skip(slot as usize) {
                    if let Some((page, frames)) = self.load_stored(cs, cp) {
                        eta = self.scheduler.enqueue_prechunked(page, frames, now_s);
                        self.stats.resumed_jobs += 1;
                    }
                }
                Response::Done {
                    eta_ms: (eta * 1000.0) as u64,
                }
            }
        }
    }

    /// Services the coordinator link: drains received bytes through the
    /// frame decoder, handles each request and sends its response back.
    /// Returns the number of requests handled this call.
    pub fn service(&mut self, now_s: f64, link: &mut SimLink) -> usize {
        let mut rx = Vec::new();
        link.a_to_b.recv_into(now_s, &mut rx);
        let frames_before = self.decoder.stats.frames;
        self.decoder.feed(&rx);
        let mut handled = 0usize;
        while let Some(payload) = self.decoder.next_frame() {
            let Some(Msg::Req { id, req }) = decode_msg(&payload) else {
                self.stats.bad_msgs += 1;
                continue;
            };
            let resp = self.handle(req, now_s);
            let mut body = Vec::new();
            encode_msg(&Msg::Resp { id, resp }, &mut body);
            if !link.b_to_a.send(&frame_bytes(&body), now_s) {
                self.stats.responses_lost += 1;
            }
            handled += 1;
        }
        // Stall watchdog: bytes buffered with no decode progress for the
        // configured horizon means the decoder is waiting on a torn
        // frame's tail — abandon it and re-scan rather than livelock
        // (later requests would otherwise be swallowed forever).
        if self.decoder.buffered() == 0 || self.decoder.stats.frames > frames_before {
            self.last_rx_progress_s = now_s;
        } else if now_s - self.last_rx_progress_s > self.config.stall_resync_s {
            self.decoder.force_resync();
            self.last_rx_progress_s = now_s;
        }
        handled
    }

    /// Airs frames for `dt` seconds of broadcast time.
    pub fn advance(&mut self, dt: f64) -> Vec<Frame> {
        self.scheduler.advance(dt)
    }
}

/// Coordinator policy.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinatorConfig {
    /// Per-site RPC deadlines, budgets and health thresholds.
    pub rpc: RpcPolicy,
    /// Seconds between health pings to an `Up` site.
    pub ping_interval_s: f64,
    /// Bound on the SMS ingress queue.
    pub ingress_capacity: usize,
    /// Most ingress messages processed per [`Coordinator::pump`] call
    /// (keeps one pump's work bounded during floods).
    pub ingress_drain_per_pump: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            rpc: RpcPolicy::default(),
            ping_interval_s: 30.0,
            ingress_capacity: 256,
            ingress_drain_per_pump: 32,
        }
    }
}

/// The coordinator's last-reported view of one site (from `Pong`s).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteView {
    /// Scheduler backlog in bytes.
    pub backlog_bytes: u64,
    /// Scheduler backlog in pages.
    pub backlog_pages: u32,
    /// Queue entries the site reports fully aired since (re)start.
    pub completed: u64,
    /// `completed` as of the latest carousel push — the baseline the
    /// resume slot is measured against.
    pub completed_at_push: u64,
    /// Pongs folded into this view.
    pub pongs: u64,
}

/// Coordinator counters (soak assertions and diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordStats {
    /// Page requests parsed off the ingress queue.
    pub sms_requests: u64,
    /// Search/chat queries parsed off the ingress queue.
    pub sms_queries: u64,
    /// Repair NACKs parsed off the ingress queue.
    pub sms_nacks: u64,
    /// Ingress messages dropped: malformed, uncovered or NACK-refused.
    pub sms_rejected: u64,
    /// `PushStored` submissions accepted by RPC clients.
    pub pushes_stored: u64,
    /// `PushFrames` submissions accepted by RPC clients.
    pub pushes_frames: u64,
    /// Page pushes skipped because an identical push was already pending
    /// on the site's client (request coalescing).
    pub pushes_coalesced: u64,
    /// `StoreMiss` answers converted to inline frame pushes.
    pub inline_fallbacks: u64,
    /// Site-side `Overloaded` refusals observed.
    pub refused_overloaded: u64,
    /// Submissions shed by a full RPC client queue.
    pub submit_shed: u64,
    /// Repair bursts rerouted to a neighbor of a down site.
    pub failovers: u64,
    /// Bursts dropped because no site in the ring was up.
    pub unroutable: u64,
    /// `Resume` instructions sent on recovery edges.
    pub resumes: u64,
    /// Health pings submitted.
    pub pings: u64,
}

/// Central control plane: renders content, feeds N [`SiteNode`]s over
/// fault-injected links, and owns the gateway ingress + repair planning.
#[derive(Debug)]
pub struct Coordinator {
    /// Policy.
    pub config: CoordinatorConfig,
    renderer: Renderer,
    cache: RenderCache,
    artifacts: TieredCache,
    coverage: Coverage,
    /// Site ids in ring order (failover walks this).
    ring: Vec<u32>,
    clients: BTreeMap<u32, RpcClient>,
    views: BTreeMap<u32, SiteView>,
    next_ping_s: BTreeMap<u32, f64>,
    carousel_jobs: Vec<(u32, u32)>,
    carousel_hour: u64,
    /// Latest carousel artifacts, for the `StoreMiss` inline fallback.
    recent: BTreeMap<(u32, u32), PageArtifact>,
    /// `(site, page id) → suppress-until`: a `Done { eta_ms }` means the
    /// site's queue covers the page until that ETA, so re-pushing it
    /// before then would only re-send bytes the broadcast already owes
    /// every listener. Pruned each pump; cleared per site on recovery
    /// (a restarted scheduler starts empty).
    pushed: BTreeMap<(u32, u32), f64>,
    /// Chunked frames per page id (bounded; cleared when full).
    frames_memo: BTreeMap<u32, Arc<Vec<Frame>>>,
    /// NACK validation/coalescing and repair budgeting.
    pub repair: RepairPlanner,
    /// The gateway's bounded accept buffer.
    pub ingress: IngressQueue,
    /// Counters.
    pub stats: CoordStats,
}

impl Coordinator {
    /// Builds a coordinator over a renderer, a transmitter fleet and the
    /// store shared with every site.
    pub fn new(
        renderer: Renderer,
        coverage: Coverage,
        store: SharedArtifactStore,
        config: CoordinatorConfig,
    ) -> Self {
        let ring: Vec<u32> = coverage.sites.iter().map(|s| s.id).collect();
        let clients = ring
            .iter()
            .map(|&id| (id, RpcClient::new(config.rpc.clone())))
            .collect();
        let ingress = IngressQueue::new(config.ingress_capacity);
        Coordinator {
            config,
            renderer,
            cache: RenderCache::new(),
            artifacts: TieredCache::with_store(ArtifactCache::new(CLUSTER_CACHE_BYTES), store),
            coverage,
            ring,
            clients,
            views: BTreeMap::new(),
            next_ping_s: BTreeMap::new(),
            carousel_jobs: Vec::new(),
            carousel_hour: 0,
            recent: BTreeMap::new(),
            frames_memo: BTreeMap::new(),
            pushed: BTreeMap::new(),
            repair: RepairPlanner::new(),
            ingress,
            stats: CoordStats::default(),
        }
    }

    /// Whether `site`'s RPC client currently considers it up.
    pub fn site_up(&self, site: u32) -> bool {
        self.clients.get(&site).is_some_and(RpcClient::is_up)
    }

    /// Last-reported per-site views.
    pub fn views(&self) -> &BTreeMap<u32, SiteView> {
        &self.views
    }

    /// The per-site RPC clients (stats, queue depths).
    pub fn clients(&self) -> &BTreeMap<u32, RpcClient> {
        &self.clients
    }

    /// Access to the renderer (examples/benches).
    pub fn renderer(&self) -> &Renderer {
        &self.renderer
    }

    /// Offers one uplink SMS to the bounded ingress queue. Returns `false`
    /// when the gateway shed it (queue full; see [`IngressQueue`]).
    pub fn accept_sms(&mut self, msg: &str) -> bool {
        self.ingress.push(msg)
    }

    /// Renders the hour's top-`top_n` landing pages through the shared
    /// store and pushes them to every site as `PushStored` keys. The jobs
    /// are remembered as the hour's carousel for `Resume`.
    pub fn push_carousel(&mut self, hour: u64, top_n: usize, _now_s: f64) {
        let n = top_n.min(self.renderer.corpus().sites.len());
        let jobs: Vec<PageJob> = (0..n)
            .map(|s| PageJob {
                id: PageId { site: s, page: 0 },
                hour,
            })
            .collect();
        let (artifacts, _) =
            pipeline::refresh_pages(&self.renderer, &mut self.artifacts, &jobs, None);
        self.carousel_hour = hour;
        self.carousel_jobs = jobs
            .iter()
            .map(|j| (j.id.site as u32, j.id.page as u32))
            .collect();
        self.recent.clear();
        for (key, a) in self.carousel_jobs.iter().zip(&artifacts) {
            self.repair.register_page(a.page.clone());
            self.recent.insert(*key, (a.page.clone(), a.frames.clone()));
        }
        let sites = self.ring.clone();
        let carousel = self.carousel_jobs.clone();
        for site in sites {
            if let Some(v) = self.views.get_mut(&site) {
                v.completed_at_push = v.completed;
            }
            for &(cs, cp) in &carousel {
                let ok = self.clients.get_mut(&site).is_some_and(|c| {
                    c.submit(
                        JobClass::Page,
                        Request::PushStored {
                            corpus_site: cs,
                            corpus_page: cp,
                            hour,
                        },
                    )
                });
                if ok {
                    self.stats.pushes_stored += 1;
                } else {
                    self.stats.submit_shed += 1;
                }
            }
        }
    }

    /// The site a repair burst for `preferred` should go to: the site
    /// itself while up, else the next up site in ring order (the neighbor
    /// absorbing the down site's repair traffic).
    fn route_repair(&mut self, preferred: u32) -> Option<u32> {
        if self.site_up(preferred) {
            return Some(preferred);
        }
        let pos = self.ring.iter().position(|&s| s == preferred)?;
        for off in 1..self.ring.len() {
            let cand = self.ring[(pos + off) % self.ring.len()];
            if self.site_up(cand) {
                self.stats.failovers += 1;
                return Some(cand);
            }
        }
        None
    }

    /// Submits a full-page frame push toward `site_id` (page requests ride
    /// the covering site's queue even while it is down — the client holds
    /// them and resends on recovery, so the user's radio still gets them).
    fn submit_page(&mut self, site_id: u32, page: Arc<SimplifiedPage>, now_s: f64) {
        self.repair.register_page(page.clone());
        // Coalesce: a flood of requests for the same hot page needs one
        // push per site, not one per request — a duplicate would only
        // displace other work from the bounded queue and re-send bytes
        // the site's carousel already owes every listener. A push is a
        // duplicate while an identical RPC is still pending *or* while
        // the site's acknowledged broadcast ETA has not passed.
        let pid = page.page_id;
        let covered = self
            .pushed
            .get(&(site_id, pid))
            .is_some_and(|&until| now_s < until)
            || self.clients.get(&site_id).is_some_and(|c| {
                c.has_pending(|r| {
                    matches!(r, Request::PushFrames { page_id, kind: SlotKind::Full, .. }
                        if *page_id == pid)
                })
            });
        if covered {
            self.stats.pushes_coalesced += 1;
            return;
        }
        // Chunking a page into frames is pure per page-id; memoize it so a
        // flood of requests for the same hot page costs one chunking pass.
        let frames = match self.frames_memo.get(&page.page_id) {
            Some(f) => f.clone(),
            None => {
                if self.frames_memo.len() >= FRAMES_MEMO_CAP {
                    self.frames_memo.clear();
                }
                let f = Arc::new(page_to_frames(&page));
                self.frames_memo.insert(page.page_id, f.clone());
                f
            }
        };
        let ok = self.clients.get_mut(&site_id).is_some_and(|c| {
            c.submit(
                JobClass::Page,
                Request::PushFrames {
                    page_id: page.page_id,
                    kind: SlotKind::Full,
                    frames: (*frames).clone(),
                },
            )
        });
        if ok {
            self.stats.pushes_frames += 1;
        } else {
            self.stats.submit_shed += 1;
        }
    }

    /// Parses and routes one ingress message.
    fn process_sms(&mut self, msg: &str, now_s: f64) {
        let hour = (now_s / 3600.0) as u64;
        if let Some(nack) = sonic_sms::queries::parse_nack(msg) {
            self.stats.sms_nacks += 1;
            let Some(site_id) = self.coverage.best_for(&nack.location).map(|s| s.id) else {
                self.stats.sms_rejected += 1;
                return;
            };
            if self.repair.accept_nack(site_id, &nack, now_s).is_err() {
                self.stats.sms_rejected += 1;
            }
            return;
        }
        if let Some(q) = sonic_sms::queries::parse_query(msg) {
            self.stats.sms_queries += 1;
            let Some(site_id) = self.coverage.best_for(&q.location).map(|s| s.id) else {
                self.stats.sms_rejected += 1;
                return;
            };
            let url = q.result_url();
            let page = match self.cache.get(&url, hour) {
                Some(p) => p,
                None => {
                    let scale = self.renderer.scale();
                    let rendered = match q.engine {
                        sonic_sms::queries::Engine::Search => {
                            sonic_pagegen::results::render_search_results(&q.text, 8, scale)
                        }
                        sonic_sms::queries::Engine::Chat => {
                            sonic_pagegen::results::render_chat_answer(&q.text, scale)
                        }
                    };
                    let page = Arc::new(SimplifiedPage::from_raster(
                        &rendered.url,
                        &rendered.raster,
                        rendered.clickmap,
                        (hour % u16::MAX as u64) as u16,
                        6,
                    ));
                    self.cache.put(page.clone(), hour);
                    page
                }
            };
            self.submit_page(site_id, page, now_s);
            return;
        }
        if let Some(req) = gateway::parse_request(msg) {
            self.stats.sms_requests += 1;
            let Some(site_id) = self.coverage.best_for(&req.location).map(|s| s.id) else {
                self.stats.sms_rejected += 1;
                return;
            };
            let page = match self.cache.get(&req.url, hour) {
                Some(p) => p,
                None => match self.renderer.fetch(&req.url, hour) {
                    Some(p) => {
                        let p = Arc::new(p);
                        self.cache.put(p.clone(), hour);
                        p
                    }
                    None => {
                        self.stats.sms_rejected += 1;
                        return;
                    }
                },
            };
            self.submit_page(site_id, page, now_s);
            return;
        }
        self.stats.sms_rejected += 1;
    }

    /// Folds one completed RPC (request, response) pair into state.
    fn fold(&mut self, site: u32, req: Request, resp: Response, now_s: f64) {
        match (req, resp) {
            (
                Request::PushFrames {
                    page_id,
                    kind: SlotKind::Full,
                    ..
                },
                Response::Done { eta_ms },
            ) => {
                // The site's queue now covers this page until the acked
                // broadcast ETA: suppress re-pushes until then.
                self.pushed
                    .insert((site, page_id), now_s + eta_ms as f64 / 1000.0);
            }
            (
                _,
                Response::Pong {
                    backlog_bytes,
                    backlog_pages,
                    pages_completed,
                    ..
                },
            ) => {
                let v = self.views.entry(site).or_default();
                v.backlog_bytes = backlog_bytes;
                v.backlog_pages = backlog_pages;
                v.completed = pages_completed;
                v.pongs += 1;
            }
            (
                Request::PushStored {
                    corpus_site,
                    corpus_page,
                    ..
                },
                Response::Refused {
                    code: RefuseCode::StoreMiss,
                },
            ) => {
                // The site's store tier is cold (fresh disk or eviction):
                // resend the page as inline frames.
                if let Some((page, frames)) =
                    self.recent.get(&(corpus_site, corpus_page)).cloned()
                {
                    let ok = self.clients.get_mut(&site).is_some_and(|c| {
                        c.submit(
                            JobClass::Page,
                            Request::PushFrames {
                                page_id: page.page_id,
                                kind: SlotKind::Full,
                                frames: (*frames).clone(),
                            },
                        )
                    });
                    if ok {
                        self.stats.inline_fallbacks += 1;
                    } else {
                        self.stats.submit_shed += 1;
                    }
                }
            }
            (
                _,
                Response::Refused {
                    code: RefuseCode::Overloaded,
                },
            ) => {
                self.stats.refused_overloaded += 1;
            }
            _ => {}
        }
    }

    /// One control-plane turn: drains bounded ingress work, routes due
    /// repair bursts (with failover), submits periodic health pings, ticks
    /// every site's RPC client over its link, folds completions, and sends
    /// `Resume` on recovery edges. Deterministic given `now_s` and the
    /// links' state; call it each scheduler tick.
    pub fn pump(&mut self, now_s: f64, links: &mut BTreeMap<u32, SimLink>) {
        // Expired broadcast ETAs no longer suppress anything; drop them.
        self.pushed.retain(|_, &mut until| until > now_s);
        for _ in 0..self.config.ingress_drain_per_pump {
            let Some(msg) = self.ingress.pop() else { break };
            self.process_sms(&msg, now_s);
        }

        // Repair bursts whose coalescing window / backoff elapsed. The
        // coordinator cannot see remote queues, so nothing is "covered"
        // here — the site-side scheduler dedupe absorbs overlaps.
        let bursts = self.repair.due_bursts(now_s, |_, _| false);
        for b in bursts {
            let Some(target) = self.route_repair(b.site_id) else {
                self.stats.unroutable += 1;
                continue;
            };
            let ok = self.clients.get_mut(&target).is_some_and(|c| {
                c.submit(
                    JobClass::Repair,
                    Request::PushFrames {
                        page_id: b.page.page_id,
                        kind: SlotKind::Repair,
                        frames: (*b.frames).clone(),
                    },
                )
            });
            if ok {
                self.stats.pushes_frames += 1;
            } else {
                self.stats.submit_shed += 1;
            }
        }

        let sites = self.ring.clone();
        for &site in &sites {
            let due = self.next_ping_s.get(&site).copied().unwrap_or(0.0);
            if now_s >= due {
                if self
                    .clients
                    .get_mut(&site)
                    .is_some_and(|c| c.submit(JobClass::Control, Request::Ping))
                {
                    self.stats.pings += 1;
                }
                self.next_ping_s
                    .insert(site, now_s + self.config.ping_interval_s);
            }
        }

        for &site in &sites {
            let Some(link) = links.get_mut(&site) else {
                continue;
            };
            let completed = match self.clients.get_mut(&site) {
                Some(c) => c.tick(now_s, &mut link.a_to_b, &mut link.b_to_a),
                None => Vec::new(),
            };
            for (req, resp) in completed {
                self.fold(site, req, resp, now_s);
            }
            let recovered = self
                .clients
                .get_mut(&site)
                .is_some_and(RpcClient::take_recovered);
            if recovered {
                // A recovered site may have restarted with an empty
                // scheduler: every pre-crash broadcast ETA is void.
                self.pushed.retain(|&(s, _), _| s != site);
            }
            if recovered && !self.carousel_jobs.is_empty() {
                // The site restarted (or the partition healed): resume the
                // hour's carousel after the slots it already aired. The
                // carousel batch heads the FIFO queue each hour, so the
                // completed-count delta since the push is the slot index.
                let slot = self.views.get(&site).map_or(0, |v| {
                    v.completed
                        .saturating_sub(v.completed_at_push)
                        .min(self.carousel_jobs.len() as u64) as u32
                });
                let req = Request::Resume {
                    hour: self.carousel_hour,
                    slot,
                    jobs: self.carousel_jobs.clone(),
                };
                if self
                    .clients
                    .get_mut(&site)
                    .is_some_and(|c| c.submit(JobClass::Control, req))
                {
                    self.stats.resumes += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::transport::LinkFaultPlan;
    use crate::server::store::ArtifactStore;
    use sonic_pagegen::Corpus;

    fn store(dir: &std::path::Path) -> SharedArtifactStore {
        crate::server::cache::share_store(
            ArtifactStore::open(dir, 64 << 20).expect("open store"),
        )
    }

    fn coordinator_with(st: &SharedArtifactStore) -> Coordinator {
        let corpus = Corpus::small(6);
        let renderer = Renderer::new(corpus, 0.1);
        Coordinator::new(
            renderer,
            Coverage::pakistan_demo(),
            st.clone(),
            CoordinatorConfig::default(),
        )
    }

    fn links_for(coverage: &Coverage, seed: u64) -> BTreeMap<u32, SimLink> {
        coverage
            .sites
            .iter()
            .map(|s| {
                (
                    s.id,
                    SimLink::symmetric(LinkFaultPlan::clean(seed ^ u64::from(s.id))),
                )
            })
            .collect()
    }

    fn site_for(id: u32, st: &SharedArtifactStore) -> SiteNode {
        SiteNode::new(
            SiteConfig {
                site_id: id,
                ..SiteConfig::default()
            },
            Some(st.clone()),
        )
    }

    /// Runs `steps` half-second turns of the full loop.
    fn run(
        coord: &mut Coordinator,
        sites: &mut BTreeMap<u32, SiteNode>,
        links: &mut BTreeMap<u32, SimLink>,
        t0: f64,
        steps: usize,
    ) -> f64 {
        let mut t = t0;
        for _ in 0..steps {
            coord.pump(t, links);
            for (id, node) in sites.iter_mut() {
                if let Some(link) = links.get_mut(id) {
                    node.service(t, link);
                }
                node.advance(0.5);
            }
            t += 0.5;
        }
        t
    }

    #[test]
    fn carousel_flows_through_store_keys_to_site_schedulers() {
        let dir = tempdir("cluster-carousel");
        let st = store(&dir);
        let mut coord = coordinator_with(&st);
        let coverage = Coverage::pakistan_demo();
        let mut sites: BTreeMap<u32, SiteNode> = coverage
            .sites
            .iter()
            .map(|s| (s.id, site_for(s.id, &st)))
            .collect();
        let mut links = links_for(&coverage, 7);
        coord.push_carousel(0, 4, 0.0);
        run(&mut coord, &mut sites, &mut links, 0.0, 40);
        for node in sites.values() {
            assert!(
                node.stats.store_hits >= 4,
                "site {} loaded carousel from the shared store: {:?}",
                node.config.site_id,
                node.stats
            );
            assert_eq!(node.stats.store_misses, 0);
        }
        assert!(coord.stats.pushes_stored >= 4 * sites.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_miss_falls_back_to_inline_frames() {
        let dir = tempdir("cluster-miss");
        let st = store(&dir);
        let mut coord = coordinator_with(&st);
        let coverage = Coverage::pakistan_demo();
        // Sites WITHOUT a store: every PushStored answers StoreMiss.
        let mut sites: BTreeMap<u32, SiteNode> = coverage
            .sites
            .iter()
            .map(|s| {
                (
                    s.id,
                    SiteNode::new(
                        SiteConfig {
                            site_id: s.id,
                            ..SiteConfig::default()
                        },
                        None,
                    ),
                )
            })
            .collect();
        let mut links = links_for(&coverage, 9);
        coord.push_carousel(0, 3, 0.0);
        run(&mut coord, &mut sites, &mut links, 0.0, 80);
        assert!(coord.stats.inline_fallbacks >= 3, "{:?}", coord.stats);
        for node in sites.values() {
            assert!(node.stats.frames_pushes >= 3, "{:?}", node.stats);
            assert_eq!(node.scheduler.backlog_bytes() % 100, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_site_is_detected_and_recovery_triggers_resume() {
        let dir = tempdir("cluster-failover");
        let st = store(&dir);
        let mut coord = coordinator_with(&st);
        let coverage = Coverage::pakistan_demo();
        let victim = coverage.sites[0].id;
        let mut sites: BTreeMap<u32, SiteNode> = coverage
            .sites
            .iter()
            .map(|s| (s.id, site_for(s.id, &st)))
            .collect();
        let mut links = links_for(&coverage, 11);
        coord.push_carousel(0, 4, 0.0);
        let t = run(&mut coord, &mut sites, &mut links, 0.0, 30);
        assert!(coord.site_up(victim));

        // Kill the victim: stop servicing it and flush its link buffers.
        let crashed = sites.remove(&victim).expect("victim exists");
        let aired_before_crash = crashed.stats.resumed_jobs; // 0, by construction
        assert_eq!(aired_before_crash, 0);
        if let Some(l) = links.get_mut(&victim) {
            l.a_to_b.flush_inflight();
            l.b_to_a.flush_inflight();
        }
        let t = run(&mut coord, &mut sites, &mut links, t, 80);
        assert!(!coord.site_up(victim), "deadline expiries tripped Down");

        // Restart from the shared disk tier; probes bring it back Up and
        // the coordinator sends Resume.
        sites.insert(victim, site_for(victim, &st));
        let _ = run(&mut coord, &mut sites, &mut links, t, 120);
        assert!(coord.site_up(victim), "probe answered, site back Up");
        assert!(coord.stats.resumes >= 1, "{:?}", coord.stats);
        let node = sites.get(&victim).expect("restarted");
        assert!(
            node.stats.resumed_jobs > 0,
            "carousel reloaded from the disk tier: {:?}",
            node.stats
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overloaded_site_sheds_repairs_before_pages() {
        let mut node = SiteNode::new(
            SiteConfig {
                site_id: 3,
                rate_bps: 8_000.0,
                max_backlog_pages: 1_000,
                shed_repair_bytes: 2_000,
                shed_delta_bytes: 100_000,
                ..SiteConfig::default()
            },
            None,
        );
        // Fill past the repair threshold with a full-page push.
        let frames: Vec<Frame> = {
            let mut img = sonic_image::raster::Raster::new(6, 300);
            let mut x = 3u32;
            for yy in 0..300 {
                for xx in 0..6 {
                    x = x.wrapping_mul(1103515245).wrapping_add(12345);
                    img.set(
                        xx,
                        yy,
                        sonic_image::raster::Rgb::new((x >> 16) as u8, (x >> 8) as u8, x as u8),
                    );
                }
            }
            let p = SimplifiedPage::from_raster(
                "https://x.pk/",
                &img,
                sonic_image::clickmap::ClickMap::default(),
                0,
                1,
            );
            page_to_frames(&p)
        };
        let resp = node.handle(
            Request::PushFrames {
                page_id: 1,
                kind: SlotKind::Full,
                frames: frames.clone(),
            },
            0.0,
        );
        assert!(matches!(resp, Response::Done { .. }));
        assert!(node.scheduler.backlog_bytes() > 2_000);
        // Repairs now shed...
        let resp = node.handle(
            Request::PushFrames {
                page_id: 2,
                kind: SlotKind::Repair,
                frames: frames.iter().take(3).cloned().collect(),
            },
            0.0,
        );
        assert_eq!(
            resp,
            Response::Refused {
                code: RefuseCode::Overloaded
            }
        );
        // ...while full pages still land.
        let resp = node.handle(
            Request::PushFrames {
                page_id: 3,
                kind: SlotKind::Full,
                frames,
            },
            0.0,
        );
        assert!(matches!(resp, Response::Done { .. }));
        assert_eq!(node.stats.refused_overload, 1);
    }

    #[test]
    fn sms_get_flows_to_covering_site_as_inline_frames() {
        let dir = tempdir("cluster-sms");
        let st = store(&dir);
        let mut coord = coordinator_with(&st);
        let coverage = Coverage::pakistan_demo();
        let mut sites: BTreeMap<u32, SiteNode> = coverage
            .sites
            .iter()
            .map(|s| (s.id, site_for(s.id, &st)))
            .collect();
        let mut links = links_for(&coverage, 13);
        let url = coord
            .renderer()
            .corpus()
            .layout(PageId { site: 0, page: 0 }, 0)
            .url;
        let lahore = &coverage.sites[0];
        let msg = gateway::format_request(&url, &lahore.location);
        assert!(coord.accept_sms(&msg));
        run(&mut coord, &mut sites, &mut links, 0.0, 40);
        assert_eq!(coord.stats.sms_requests, 1);
        let covering = sites.get(&lahore.id).expect("covering site");
        assert!(covering.stats.frames_pushes >= 1, "{:?}", covering.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("sonic-{tag}-{pid}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk tempdir");
        dir
    }
}
