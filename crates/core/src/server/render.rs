//! Server-side rendering: URL → simplified page.
//!
//! In the paper the server drives a headless Chrome; here the "web browser"
//! is the deterministic `sonic-pagegen` renderer over the synthetic corpus
//! (see DESIGN.md substitutions). TTLs follow the site's churn period —
//! exactly the "expiration date set according to a time indicated by the
//! server" of §3.1.

use crate::page::SimplifiedPage;
use sonic_pagegen::{Corpus, PageId};

/// Renders corpus pages into broadcastable [`SimplifiedPage`]s.
#[derive(Debug)]
pub struct Renderer {
    corpus: Corpus,
    /// Render scale (1.0 = full 1080-wide pages; experiments use less).
    scale: f64,
}

impl Renderer {
    /// Creates a renderer over a corpus.
    ///
    /// # Panics
    /// Panics unless `0 < scale <= 1`.
    pub fn new(corpus: Corpus, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale in (0,1]");
        Renderer { corpus, scale }
    }

    /// The corpus behind this renderer.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Render scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Fetches + renders + strip-encodes a URL at `hour`; `None` for URLs
    /// outside the corpus (the real system would fetch the live web here).
    pub fn fetch(&self, url: &str, hour: u64) -> Option<SimplifiedPage> {
        let id = self.corpus.find_url(url, hour)?;
        Some(self.render_id(id, hour))
    }

    /// Renders a known corpus page.
    pub fn render_id(&self, id: PageId, hour: u64) -> SimplifiedPage {
        let rendered = self.corpus.render(id, hour, self.scale);
        let site = &self.corpus.sites[id.site];
        let ttl = site.category.landing_churn_hours().max(1) as u16;
        SimplifiedPage::from_raster(
            &rendered.url,
            &rendered.raster,
            rendered.clickmap,
            (hour % u16::MAX as u64) as u16,
            ttl,
        )
    }

    /// The `top_n` most popular landing page URLs at `hour`.
    pub fn popular_landing_urls(&self, top_n: usize, hour: u64) -> Vec<String> {
        (0..top_n.min(self.corpus.sites.len()))
            .map(|s| self.corpus.layout(PageId { site: s, page: 0 }, hour).url)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn renderer() -> Renderer {
        Renderer::new(Corpus::small(3), 0.1)
    }

    #[test]
    fn fetch_known_url() {
        let r = renderer();
        let url = r.corpus().layout(PageId { site: 0, page: 0 }, 5).url;
        let page = r.fetch(&url, 5).expect("known url");
        assert_eq!(page.url, url);
        assert!(page.strips.width > 0);
        assert!(page.ttl_hours >= 1);
    }

    #[test]
    fn fetch_unknown_url_is_none() {
        assert!(renderer().fetch("https://unknown.pk/", 0).is_none());
    }

    #[test]
    fn version_changes_with_hour_for_news() {
        let r = renderer();
        let id = PageId { site: 0, page: 0 }; // rank 1 = news
        let a = r.render_id(id, 1);
        let b = r.render_id(id, 2);
        assert_ne!(a.page_id, b.page_id, "news pages re-version hourly");
    }

    #[test]
    fn popular_urls_are_landing_pages() {
        let r = renderer();
        let urls = r.popular_landing_urls(3, 0);
        assert_eq!(urls.len(), 3);
        for u in urls {
            assert!(u.ends_with('/'), "{u} must be a landing page");
        }
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let _ = Renderer::new(Corpus::small(1), 0.0);
    }
}
