//! The SONIC server (§3.1): renders simplified webpages, answers SMS
//! requests, and feeds per-transmitter broadcast schedulers.

pub mod cache;
pub mod cluster;
pub mod pipeline;
pub mod render;
pub mod repair;
pub mod scheduler;
pub mod store;

use crate::page::SimplifiedPage;
use cache::{ArtifactCache, RenderCache, SharedArtifactStore, TieredCache};
use render::Renderer;
use scheduler::BroadcastScheduler;
use sonic_sms::gateway;
use sonic_sms::geo::Coverage;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default artifact-cache byte budget: enough for a full standard corpus of
/// frames-only artifacts at experiment scales, small enough to bound a
/// long-running server (audio-carrying refreshes size their own caches).
const ARTIFACT_CACHE_BYTES: usize = 256 << 20;

/// The central SONIC server plus its transmitter fleet.
#[derive(Debug)]
pub struct SonicServer {
    renderer: Renderer,
    cache: RenderCache,
    artifacts: TieredCache,
    coverage: Coverage,
    /// One broadcast scheduler per transmitter site id.
    pub schedulers: BTreeMap<u32, BroadcastScheduler>,
    /// NACK validation/coalescing and repair-burst scheduling.
    pub repair: repair::RepairPlanner,
}

impl SonicServer {
    /// Builds a server over a corpus-backed renderer and a transmitter fleet,
    /// each transmitter broadcasting at `rate_bps`.
    pub fn new(renderer: Renderer, coverage: Coverage, rate_bps: f64) -> Self {
        let schedulers = coverage
            .sites
            .iter()
            .map(|s| (s.id, BroadcastScheduler::new(rate_bps)))
            .collect();
        SonicServer {
            renderer,
            cache: RenderCache::new(),
            artifacts: TieredCache::ram_only(ArtifactCache::new(ARTIFACT_CACHE_BYTES)),
            coverage,
            schedulers,
            repair: repair::RepairPlanner::new(),
        }
    }

    /// Renders (or serves from cache) the simplified page for `url` at
    /// `hour`. The page is `Arc`-shared with the cache — no deep clone.
    pub fn get_page(&mut self, url: &str, hour: u64) -> Option<Arc<SimplifiedPage>> {
        if let Some(p) = self.cache.get(url, hour) {
            return Some(p);
        }
        let page = Arc::new(self.renderer.fetch(url, hour)?);
        self.cache.put(page.clone(), hour);
        Some(page)
    }

    /// Handles one uplink SMS at absolute time `now_s` (hour derived).
    ///
    /// Two request forms are understood (§3.1): `GET <url> AT <lat>,<lon>`
    /// for webpages, and `ASK SEARCH|CHAT <query> AT <lat>,<lon>` for
    /// search-engine / chatbot queries, whose answers are rendered into
    /// pages and broadcast like any other content. On success the page is
    /// enqueued on the transmitter covering the user and an ACK with the
    /// ETA and frequency is returned.
    pub fn handle_sms(&mut self, msg: &str, now_s: f64) -> String {
        let hour = (now_s / 3600.0) as u64;
        // Repair NACKs (all three grammars are disjoint): validate against
        // the repair registry, coalesce with other clients' ranges, and ACK
        // with an ETA covering the coalescing window plus the backlog.
        if let Some(nack) = sonic_sms::queries::parse_nack(msg) {
            let Some(site) = self.coverage.best_for(&nack.location) else {
                return gateway::format_err("no coverage at your location");
            };
            let (site_id, freq) = (site.id, site.freq_mhz);
            return match self.repair.accept_nack(site_id, &nack, now_s) {
                Ok(wait_s) => {
                    let backlog = self
                        .schedulers
                        .get(&site_id)
                        .map(|s| s.backlog_bytes() as f64 * 8.0 / s.rate_bps())
                        .unwrap_or(0.0);
                    let url = format!("{:X}", nack.page_id);
                    gateway::format_ack(&url, (wait_s + backlog).ceil() as u64 + 1, freq)
                }
                Err(repair::NackRejection::UnknownPage) => {
                    gateway::format_err("unknown page; re-request it")
                }
                Err(repair::NackRejection::InvalidRange) => gateway::format_err("bad repair range"),
                Err(repair::NackRejection::BudgetExhausted) => {
                    gateway::format_err("repair budget spent; wait for the next carousel")
                }
            };
        }
        // Queries next: the grammars are disjoint.
        if let Some(q) = sonic_sms::queries::parse_query(msg) {
            let Some(site) = self.coverage.best_for(&q.location) else {
                return gateway::format_err("no coverage at your location");
            };
            let (site_id, freq) = (site.id, site.freq_mhz);
            let url = q.result_url();
            let page = match self.cache.get(&url, hour) {
                Some(p) => p,
                None => {
                    let scale = self.renderer.scale();
                    let rendered = match q.engine {
                        sonic_sms::queries::Engine::Search => {
                            sonic_pagegen::results::render_search_results(&q.text, 8, scale)
                        }
                        sonic_sms::queries::Engine::Chat => {
                            sonic_pagegen::results::render_chat_answer(&q.text, scale)
                        }
                    };
                    let page = Arc::new(crate::page::SimplifiedPage::from_raster(
                        &rendered.url,
                        &rendered.raster,
                        rendered.clickmap,
                        (hour % u16::MAX as u64) as u16,
                        6,
                    ));
                    self.cache.put(page.clone(), hour);
                    page
                }
            };
            let sched = self
                .schedulers
                .get_mut(&site_id)
                .expect("scheduler per site");
            self.repair.register_page(page.clone());
            let eta = sched.enqueue(page, now_s);
            return gateway::format_ack(&url, eta as u64, freq);
        }

        let Some(req) = gateway::parse_request(msg) else {
            return gateway::format_err("malformed request");
        };
        let Some(site) = self.coverage.best_for(&req.location) else {
            return gateway::format_err("no coverage at your location");
        };
        let site_id = site.id;
        let freq = site.freq_mhz;
        let Some(page) = self.get_page(&req.url, hour) else {
            return gateway::format_err("page unavailable");
        };
        let sched = self
            .schedulers
            .get_mut(&site_id)
            .expect("scheduler per site");
        self.repair.register_page(page.clone());
        let eta = sched.enqueue(page, now_s);
        gateway::format_ack(&req.url, eta as u64, freq)
    }

    /// Schedules any repair bursts whose coalescing window or backoff has
    /// elapsed. Call periodically (server loop / simulation tick). Returns
    /// the number of bursts scheduled.
    pub fn pump_repairs(&mut self, now_s: f64) -> usize {
        self.repair.schedule_due(now_s, &mut self.schedulers)
    }

    /// Preemptively pushes the `top_n` most popular landing pages to every
    /// transmitter ("popular news sites can be pushed early in the
    /// morning").
    ///
    /// Runs through the content-addressed artifact cache: pages whose
    /// content is unchanged since the last push reuse their cached
    /// `SimplifiedPage`/frames verbatim (skipping render, encode and
    /// chunk), and every scheduler receives the same `Arc`-shared frames —
    /// a second push of an unchanged carousel costs hash lookups, and the
    /// schedulers' page-id dedupe keeps the backlog flat.
    pub fn push_popular(&mut self, hour: u64, top_n: usize, now_s: f64) {
        let n = top_n.min(self.renderer.corpus().sites.len());
        let jobs: Vec<pipeline::PageJob> = (0..n)
            .map(|s| pipeline::PageJob {
                id: sonic_pagegen::PageId { site: s, page: 0 },
                hour,
            })
            .collect();
        let (artifacts, _) =
            pipeline::refresh_pages(&self.renderer, &mut self.artifacts, &jobs, None);
        for a in &artifacts {
            self.repair.register_page(a.page.clone());
            for sched in self.schedulers.values_mut() {
                sched.enqueue_prechunked(a.page.clone(), a.frames.clone(), now_s);
            }
        }
    }

    /// Attaches a shared persistent artifact store under the RAM tier:
    /// every later refresh probes (and feeds) the disk store, so restarts
    /// and sibling servers start warm from the same files.
    pub fn attach_store(&mut self, store: SharedArtifactStore) {
        let ram = std::mem::replace(&mut self.artifacts, TieredCache::ram_only(ArtifactCache::new(0)));
        self.artifacts = TieredCache::with_store(ram.ram, store);
    }

    /// The shared artifact store, if one is attached.
    pub fn artifact_store(&self) -> Option<&SharedArtifactStore> {
        self.artifacts.store()
    }

    /// Access to the renderer (for examples/benches).
    pub fn renderer(&self) -> &Renderer {
        &self.renderer
    }

    /// The broadcast artifact cache (reuse stats, byte budget).
    pub fn artifact_cache(&self) -> &ArtifactCache {
        &self.artifacts.ram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonic_pagegen::Corpus;

    fn server() -> SonicServer {
        let corpus = Corpus::small(4);
        let renderer = Renderer::new(corpus, 0.1);
        SonicServer::new(renderer, Coverage::pakistan_demo(), 10_000.0)
    }

    #[test]
    fn sms_request_gets_ack_with_frequency() {
        let mut srv = server();
        let url = srv.renderer().corpus().layout(
            sonic_pagegen::PageId { site: 0, page: 0 },
            0,
        ).url;
        let msg = gateway::format_request(&url, &sonic_sms::GeoPoint::new(31.52, 74.35));
        let reply = srv.handle_sms(&msg, 10.0);
        let ack = gateway::parse_ack(&reply).unwrap_or_else(|| panic!("ACK expected, got {reply}"));
        assert_eq!(ack.url, url);
        assert!((ack.freq_mhz - 93.7).abs() < 1e-9, "Lahore transmitter");
        assert!(ack.eta_s > 0);
    }

    #[test]
    fn uncovered_location_gets_err() {
        let mut srv = server();
        let msg = gateway::format_request("x.pk", &sonic_sms::GeoPoint::new(0.0, 0.0));
        let reply = srv.handle_sms(&msg, 0.0);
        assert!(reply.starts_with("ERR"), "{reply}");
    }

    #[test]
    fn unknown_url_gets_err() {
        let mut srv = server();
        let msg =
            gateway::format_request("https://nonexistent.pk/", &sonic_sms::GeoPoint::new(31.52, 74.35));
        let reply = srv.handle_sms(&msg, 0.0);
        assert!(reply.starts_with("ERR"), "{reply}");
    }

    #[test]
    fn garbage_sms_gets_err() {
        let mut srv = server();
        assert!(srv.handle_sms("hello?", 0.0).starts_with("ERR"));
    }

    #[test]
    fn search_query_is_rendered_and_acked() {
        let mut srv = server();
        let loc = sonic_sms::GeoPoint::new(31.52, 74.35);
        let msg = sonic_sms::queries::format_query(
            sonic_sms::queries::Engine::Search,
            "cricket score",
            &loc,
        );
        let reply = srv.handle_sms(&msg, 100.0);
        let ack = gateway::parse_ack(&reply).unwrap_or_else(|| panic!("ACK expected: {reply}"));
        assert_eq!(ack.url, "sonic://search/cricket-score");
        assert!(ack.eta_s > 0);
        // Second identical query hits the cache and re-uses the queue entry.
        let reply2 = srv.handle_sms(&msg, 101.0);
        assert!(reply2.starts_with("ACK"), "{reply2}");
    }

    #[test]
    fn chat_query_is_rendered_and_acked() {
        let mut srv = server();
        let loc = sonic_sms::GeoPoint::new(24.86, 67.00);
        let msg = sonic_sms::queries::format_query(
            sonic_sms::queries::Engine::Chat,
            "when does the exam registration close",
            &loc,
        );
        let reply = srv.handle_sms(&msg, 5.0);
        let ack = gateway::parse_ack(&reply).expect("ACK");
        assert!(ack.url.starts_with("sonic://chat/"));
        // Karachi transmitter (id 2) got the page.
        assert!(srv.schedulers.get(&2).expect("karachi").backlog_bytes() > 0);
    }

    #[test]
    fn push_popular_fills_all_schedulers() {
        let mut srv = server();
        srv.push_popular(0, 2, 0.0);
        for sched in srv.schedulers.values() {
            assert!(sched.backlog_bytes() > 0, "scheduler must have work");
            assert_eq!(sched.queue_len(), 2);
        }
    }

    #[test]
    fn repeated_push_popular_hits_artifact_cache_and_keeps_backlog_flat() {
        let mut srv = server();
        srv.push_popular(9, 3, 0.0);
        assert_eq!(srv.artifact_cache().stats.misses, 3, "cold push builds all");
        let backlog: Vec<usize> = srv.schedulers.values().map(|s| s.backlog_bytes()).collect();
        // Same hour again: pure cache hits, schedulers dedupe by page id.
        srv.push_popular(9, 3, 10.0);
        assert_eq!(srv.artifact_cache().stats.full_hits, 3);
        let backlog2: Vec<usize> = srv.schedulers.values().map(|s| s.backlog_bytes()).collect();
        assert_eq!(backlog, backlog2, "re-push must not double the backlog");
        for sched in srv.schedulers.values() {
            assert_eq!(sched.queue_len(), 3);
        }
    }

    #[test]
    fn nack_round_trip_schedules_targeted_repair() {
        let mut srv = server();
        srv.repair.config.coalesce_s = 5.0;
        let loc = sonic_sms::GeoPoint::new(31.52, 74.35); // Lahore, site 0
        let url = srv
            .renderer()
            .corpus()
            .layout(sonic_pagegen::PageId { site: 0, page: 0 }, 0)
            .url;
        // Request the page so it is broadcast (and registered repairable).
        let reply = srv.handle_sms(&gateway::format_request(&url, &loc), 0.0);
        let ack = gateway::parse_ack(&reply).expect("ACK");
        let page = srv.get_page(&url, 0).expect("cached");
        let page_id = page.page_id;
        // Drain the Lahore scheduler: the broadcast happened (lossily).
        let site = srv
            .schedulers
            .iter()
            .find(|(_, s)| s.backlog_bytes() > 0)
            .map(|(&id, _)| id)
            .expect("queued somewhere");
        while !srv.schedulers.get_mut(&site).expect("site").advance(10.0).is_empty() {}
        let _ = ack;
        // Client NACKs two damaged columns.
        let nack = sonic_sms::queries::format_nack(&sonic_sms::queries::Nack {
            page_id,
            meta: false,
            columns: vec![(0, 1), (2, 0)],
            location: loc,
        });
        let reply = srv.handle_sms(&nack, 100.0);
        assert!(reply.starts_with("ACK"), "{reply}");
        // Before the coalescing window: nothing scheduled.
        assert_eq!(srv.pump_repairs(101.0), 0);
        assert_eq!(srv.pump_repairs(106.0), 1, "repair burst after window");
        assert!(srv.schedulers.get(&site).expect("site").backlog_bytes() > 0);
        assert!(srv.repair.stats.frames_scheduled > 0);
        // A NACK for an unknown page id is refused.
        let bogus = sonic_sms::queries::format_nack(&sonic_sms::queries::Nack {
            page_id: 0xDEAD_BEEF,
            meta: true,
            columns: vec![],
            location: loc,
        });
        assert!(srv.handle_sms(&bogus, 200.0).starts_with("ERR"));
    }

    #[test]
    fn second_request_hits_render_cache() {
        let mut srv = server();
        let url = srv.renderer().corpus().layout(
            sonic_pagegen::PageId { site: 1, page: 0 },
            0,
        ).url;
        let a = srv.get_page(&url, 0).expect("render");
        let b = srv.get_page(&url, 0).expect("cache");
        assert_eq!(a.page_id, b.page_id);
    }
}
